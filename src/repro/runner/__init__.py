"""Parallel campaign runner with a persistent, content-addressed result store.

Four pieces (see ``DESIGN.md`` at the repository root):

* :mod:`repro.runner.executor` — process-parallel task execution with
  deterministic per-task seeding and ordered result reassembly;
* :mod:`repro.runner.cache` — content-addressed on-disk cache keyed by a
  SHA-256 fingerprint of ``(experiment, scale, quick, overrides, version)``;
* :mod:`repro.runner.store` — persistent run directories with verifiable
  ``manifest.json`` files;
* :mod:`repro.runner.grid` — declarative cartesian parameter grids executed
  through the executor and persisted through the store;
* :mod:`repro.runner.chaos` — deterministic fault injection
  (:class:`~repro.runner.chaos.FaultPlan`) for proving the supervisor's
  recovery paths;
* :mod:`repro.runner.journal` — append-only per-run progress journal for
  crash-safe, resumable campaigns.
"""

from repro.runner.cache import ResultCache, fingerprint, fingerprint_payload
from repro.runner.chaos import ChaosError, FaultPlan, FaultSpec, fault_plan
from repro.runner.executor import (
    FaultPolicy,
    ParallelExecutor,
    TaskFailure,
    TaskSpec,
    derive_task_seed,
    resolve_task_kind,
    run_delta_sweep_parallel,
)
from repro.runner.grid import GridResult, ParameterGrid, run_grid
from repro.runner.journal import ProgressJournal
from repro.runner.store import RunStore, load_manifest, verify_manifest, write_run

__all__ = [
    "ParallelExecutor",
    "TaskSpec",
    "FaultPolicy",
    "TaskFailure",
    "ChaosError",
    "FaultPlan",
    "FaultSpec",
    "fault_plan",
    "ProgressJournal",
    "derive_task_seed",
    "run_delta_sweep_parallel",
    "ResultCache",
    "fingerprint",
    "fingerprint_payload",
    "resolve_task_kind",
    "RunStore",
    "write_run",
    "load_manifest",
    "verify_manifest",
    "ParameterGrid",
    "GridResult",
    "run_grid",
]
