"""Process-parallel task execution with deterministic seeding.

The executor fans *tasks* — experiment ids for a campaign, grid points for a
parameter grid, individual Δ-sweep points for the heavy paper-scale runs —
across a :class:`concurrent.futures.ProcessPoolExecutor` and reassembles the
results in submission order, so parallel runs are byte-identical to serial
ones.

Determinism rules:

* every task carries its own seed, derived from ``(master_seed, task_id)``
  through the same :class:`numpy.random.SeedSequence` construction as
  :class:`repro.sim.rng.RandomStreams` — which worker executes a task never
  affects its result;
* results are returned in task order regardless of completion order;
* workers are plain module-level functions returning JSON-serializable
  payloads (``to_dict()`` form), so the same representation feeds the result
  cache, the run store, and cross-process transport.
"""

from __future__ import annotations

import importlib
import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import ExperimentError
from repro.obs.telemetry import get_telemetry

__all__ = [
    "TaskSpec",
    "ParallelExecutor",
    "derive_task_seed",
    "execute_task",
    "execute_cached",
    "resolve_task_kind",
    "run_experiment_task",
    "run_delta_point_task",
    "run_grid_point_task",
    "run_delta_sweep_parallel",
]


def derive_task_seed(master_seed: int, task_id: str) -> int:
    """Deterministic per-task seed from ``(master_seed, task_id)``.

    Uses the same crc32 + :class:`numpy.random.SeedSequence` construction as
    :meth:`repro.sim.rng.RandomStreams.stream`, so task streams are
    statistically independent of each other and of the simulator's own named
    streams.
    """
    name_key = zlib.crc32(task_id.encode("utf-8")) & 0xFFFFFFFF
    seq = np.random.SeedSequence(entropy=int(master_seed), spawn_key=(name_key,))
    return int(seq.generate_state(1, dtype=np.uint64)[0] % (2 ** 63))


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work for the executor.

    ``kind`` selects the worker function; ``payload`` is its (picklable)
    argument mapping; ``seed`` is the task's deterministic RNG seed.
    ``span_category`` labels the telemetry span the executor records for the
    task — ``"task"`` for ordinary work units; bucket work units use
    ``"bucket"`` so per-member accounting (spans stamped by the batcher,
    ``executor.tasks.completed``) is not double-counted.
    """

    task_id: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    span_category: str = "task"


# --------------------------------------------------------------------------- #
# Worker functions (module-level so ProcessPoolExecutor can pickle them)
# --------------------------------------------------------------------------- #


def run_experiment_task(payload: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
    """Run one registered experiment and grade it against the paper.

    Payload keys: ``experiment_id``, ``scale``, ``quick`` and optionally
    ``stepping`` (a serialized
    :class:`~repro.config.control.SteppingPolicy` applied as the process
    default while the experiment runs).  Returns the
    :meth:`~repro.analysis.campaign.ExperimentRecord.to_payload` form, so
    the transported/cached shape and the record class cannot drift apart.
    """
    from repro.analysis.campaign import ExperimentRecord
    from repro.analysis.comparison import check_experiment
    from repro.config.control import SteppingPolicy, stepping_policy
    from repro.experiments.registry import get_experiment

    policy = payload.get("stepping")
    policy = None if policy is None else SteppingPolicy.from_dict(policy)
    entry = get_experiment(payload["experiment_id"])
    start = time.perf_counter()
    with stepping_policy(policy):
        result = entry.run(scale=payload["scale"], quick=payload["quick"])
        checks = check_experiment(result)
    record = ExperimentRecord(
        experiment_id=entry.experiment_id,
        result=result,
        checks=checks,
        wall_time=time.perf_counter() - start,
    )
    return record.to_payload()


def run_delta_point_task(payload: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
    """Simulate one Δ-graph point of a two-application scenario.

    Payload keys: ``scenario`` (a :class:`~repro.config.scenario.ScenarioConfig`)
    and ``delta``.  Returns the serialized :class:`~repro.core.delta.DeltaPoint`.
    """
    from repro.core.delta import DeltaPoint
    from repro.model.simulator import simulate_scenario

    scenario = payload["scenario"]
    delta = float(payload["delta"])
    result = simulate_scenario(scenario.with_delay(delta), seed=seed)
    return DeltaPoint.from_run_result(delta, result).to_dict()


def run_grid_point_task(payload: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
    """Run one parameter-grid point: a full Δ-sweep of one configuration.

    Payload keys: ``scale``, ``params`` (scenario keyword overrides, already
    normalized by :mod:`repro.runner.grid`), ``n_points``.  Returns the
    serialized sweep plus its headline summary.
    """
    from repro.core.delta import jsonify
    from repro.core.experiment import TwoApplicationExperiment

    params = dict(payload["params"])
    if seed is not None:
        params.setdefault("seed", int(seed))
    experiment = TwoApplicationExperiment(payload["scale"], **params)
    sweep = experiment.run_sweep(n_points=int(payload["n_points"]))
    return {
        "sweep": sweep.to_dict(),
        "summary": jsonify(sweep.summary()),
        "alone_time": float(experiment.alone_time()),
    }


_Worker = Callable[[Dict[str, Any], Optional[int]], Dict[str, Any]]

#: Task kind -> worker.  A worker is either the function itself or a lazy
#: ``"module:function"`` reference.  Lazy references let higher layers (the
#: scenario fleet in :mod:`repro.scenarios.matrix`) plug their own task kinds
#: in without this module importing them at load time — crucially, the
#: reference also resolves inside pool *worker processes*, which import this
#: module but not necessarily the layer that registered the kind.
_TASK_KINDS: Dict[str, Union[str, _Worker]] = {
    "experiment": run_experiment_task,
    "delta-point": run_delta_point_task,
    "grid-point": run_grid_point_task,
    "matrix-alone": "repro.scenarios.matrix:run_matrix_alone_task",
    "matrix-pair": "repro.scenarios.matrix:run_matrix_pair_task",
    "matrix-bucket": "repro.scenarios.matrix:run_matrix_bucket_task",
}


def resolve_task_kind(kind: str) -> _Worker:
    """The worker function for ``kind``, importing lazy references on demand."""
    try:
        worker = _TASK_KINDS[kind]
    except KeyError:
        raise ExperimentError(
            f"unknown task kind {kind!r}; known: {sorted(_TASK_KINDS)}"
        ) from None
    if isinstance(worker, str):
        module_name, _, attr = worker.partition(":")
        worker = getattr(importlib.import_module(module_name), attr)
        _TASK_KINDS[kind] = worker  # memoize for the life of the process
    return worker


def execute_task(task: TaskSpec) -> Dict[str, Any]:
    """Dispatch one task to its worker function (runs inside the pool)."""
    return resolve_task_kind(task.kind)(task.payload, task.seed)


def _execute_task_observed(task: TaskSpec, collect: bool) -> Dict[str, Any]:
    """Pool-side wrapper: time the task and (optionally) collect telemetry.

    Runs inside a worker process, where the parent's registry does not
    exist.  When ``collect`` is true a fresh worker-local
    :class:`~repro.obs.telemetry.Telemetry` is installed for the duration of
    the task; its snapshot ships back with the payload and the parent merges
    it (re-anchoring span times via the wall-clock epoch) under the task's
    span.  The wall-clock ``started`` stamp lets the parent compute how long
    the task waited in the pool queue.
    """
    from repro.obs.telemetry import NULL, Telemetry, set_telemetry

    started = time.time()
    t0 = time.perf_counter()
    if not collect:
        payload = execute_task(task)
        return {
            "payload": payload,
            "obs": {"started": started, "wall_s": time.perf_counter() - t0,
                    "snapshot": None},
        }
    local = Telemetry(label=task.task_id)
    set_telemetry(local)
    try:
        payload = execute_task(task)
    finally:
        set_telemetry(NULL)
    return {
        "payload": payload,
        "obs": {"started": started, "wall_s": time.perf_counter() - t0,
                "snapshot": local.snapshot()},
    }


# --------------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------------- #


class ParallelExecutor:
    """Fan tasks across worker processes; reassemble results in task order.

    ``jobs=1`` (the default) runs everything in-process with no pool, so the
    serial path has zero multiprocessing overhead and identical semantics.
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)

    def map(
        self,
        tasks: Sequence[TaskSpec],
        progress: Optional[Callable[[TaskSpec, Dict[str, Any]], None]] = None,
        task_records: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> List[Dict[str, Any]]:
        """Execute every task; results come back in ``tasks`` order.

        ``progress`` is invoked as ``progress(task, result)`` as tasks
        *complete* (completion order under parallelism).  A failing task
        aborts the whole map: remaining futures are cancelled and the
        worker's exception is re-raised with the task id attached.

        ``task_records``, when given, is filled with per-task provenance
        ``{task_id: {"wall_time_s", "queue_wait_s"}}`` (a record exists
        before that task's ``progress`` call fires).  With telemetry enabled
        each task additionally gets a ``task`` span — and, under
        parallelism, the worker's own telemetry snapshot merged beneath it.
        Without telemetry and without ``task_records`` the execution path is
        unchanged from the uninstrumented executor.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ExperimentError("task ids must be unique within one map() call")

        telemetry = get_telemetry()
        observe = telemetry.enabled or task_records is not None
        if telemetry.enabled:
            telemetry.gauge("executor.jobs", float(self.jobs))

        if self.jobs == 1 or len(tasks) == 1:
            results = []
            for task in tasks:
                if observe:
                    # In-process tasks run under the ambient registry, so
                    # simulation spans nest directly beneath the task span.
                    start = time.perf_counter()
                    with telemetry.span(
                        task.task_id, category=task.span_category,
                        track="tasks", kind=task.kind,
                    ):
                        result = execute_task(task)
                    wall = time.perf_counter() - start
                    if task.span_category == "task":
                        telemetry.count("executor.tasks.completed")
                    if task_records is not None:
                        task_records[task.task_id] = {
                            "wall_time_s": wall, "queue_wait_s": 0.0,
                        }
                else:
                    result = execute_task(task)
                results.append(result)
                if progress is not None:
                    progress(task, result)
            return results

        results_by_index: Dict[int, Dict[str, Any]] = {}
        submit_epoch: Dict[int, float] = {}
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(tasks))) as pool:
            future_to_index = {}
            for i, task in enumerate(tasks):
                if observe:
                    submit_epoch[i] = time.time()
                    future = pool.submit(
                        _execute_task_observed, task, telemetry.enabled
                    )
                else:
                    future = pool.submit(execute_task, task)
                future_to_index[future] = i
            pending = set(future_to_index)
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = future_to_index[future]
                        task = tasks[index]
                        try:
                            result = future.result()
                        except Exception as exc:
                            raise ExperimentError(
                                f"task {task.task_id!r} failed in worker: {exc}"
                            ) from exc
                        if observe:
                            result = _unwrap_observed(
                                telemetry, task, result,
                                submit_epoch[index], task_records,
                            )
                        results_by_index[index] = result
                        if progress is not None:
                            progress(task, result)
            finally:
                for future in pending:
                    future.cancel()
        return [results_by_index[i] for i in range(len(tasks))]


def _unwrap_observed(
    telemetry,
    task: TaskSpec,
    wrapped: Dict[str, Any],
    submitted: float,
    task_records: Optional[Dict[str, Dict[str, Any]]],
) -> Dict[str, Any]:
    """Parent-side unwrap of one :func:`_execute_task_observed` result.

    Records the task span (anchored at the worker's wall-clock start, so
    queue wait shows as the gap after submission), merges the worker's
    telemetry snapshot beneath it, and fills the task's provenance record.
    Returns the bare payload.
    """
    obs = wrapped["obs"]
    payload = wrapped["payload"]
    queue_wait = max(0.0, obs["started"] - submitted)
    if telemetry.enabled:
        start_us = (obs["started"] - telemetry.epoch) * 1e6
        dur_us = obs["wall_s"] * 1e6
        span_id = telemetry.add_span(
            task.task_id,
            task.span_category,
            start_us,
            dur_us,
            track="tasks",
            args={"kind": task.kind, "queue_wait_s": round(queue_wait, 6)},
        )
        if obs.get("snapshot"):
            telemetry.merge_snapshot(
                obs["snapshot"], parent=span_id, track="workers"
            )
        if task.span_category == "task":
            telemetry.count("executor.tasks.completed")
    if task_records is not None:
        task_records[task.task_id] = {
            "wall_time_s": obs["wall_s"], "queue_wait_s": queue_wait,
        }
    return payload


def execute_cached(
    tasks: Sequence[TaskSpec],
    *,
    jobs: int = 1,
    cache=None,
    fingerprint_for: Optional[Callable[[TaskSpec], str]] = None,
    key_material_for: Optional[Callable[[TaskSpec], Dict[str, Any]]] = None,
    progress: Optional[Callable[[TaskSpec, Dict[str, Any], bool], None]] = None,
    task_records: Optional[Dict[str, Dict[str, Any]]] = None,
    batch_runner: Optional[
        Callable[[List[TaskSpec]], Optional[Dict[str, Dict[str, Any]]]]
    ] = None,
) -> Dict[str, Dict[str, Any]]:
    """Run tasks through the executor, served from / stored into a cache.

    The shared orchestration of every cached campaign (the experiment
    campaign, the interference matrix): probe the cache per task, fan the
    misses across the pool, store completions back.  Returns
    ``{task_id: payload}`` for every task.

    Parameters
    ----------
    tasks:
        The full task list (hits and misses alike).
    jobs:
        Worker processes for the cache misses.
    cache:
        A :class:`repro.runner.cache.ResultCache` (or ``None`` to disable
        caching — fingerprints are then never computed).
    fingerprint_for:
        Callable giving one task's cache fingerprint; required when
        ``cache`` is given.
    key_material_for:
        Optional callable giving the human-readable key material stored
        beside one task's payload.
    progress:
        Optional callback ``progress(task, payload, from_cache)``: cache
        hits fire first (in task order), then completions (in completion
        order under parallelism).
    task_records:
        Optional dict filled with per-task provenance
        ``{task_id: {"origin": "cache"|"computed", "wall_time_s",
        "queue_wait_s", "fingerprint"?}}`` — the material for the
        manifest's task table and the cache-efficiency report.
    batch_runner:
        Optional bulk path for cache misses, tried before the pool.  Called
        once with the full miss list; returns ``{task_id: payload}`` for
        whatever subset it chose to run together (``None`` or ``{}`` to
        decline).  Handled tasks skip the pool but flow through the same
        caching/progress/provenance path as pool completions; the runner is
        responsible for stamping its own timing into ``task_records``.
        Unhandled tasks fall through to the pool unchanged.
    """
    if cache is not None and fingerprint_for is None:
        raise ExperimentError("execute_cached needs fingerprint_for with a cache")

    telemetry = get_telemetry()
    results: Dict[str, Dict[str, Any]] = {}
    fingerprints: Dict[str, str] = {}
    pending: List[TaskSpec] = []
    found: Dict[str, Dict[str, Any]] = {}
    if cache is not None and tasks:
        # One batched multi-probe for the whole campaign (hot-tier backed)
        # instead of one stat+read round-trip per task.
        fingerprints = {task.task_id: fingerprint_for(task) for task in tasks}
        probe = [fingerprints[task.task_id] for task in tasks]
        if hasattr(cache, "get_many"):
            found = cache.get_many(probe)
        else:  # duck-typed caches: per-task probes, same semantics
            found = {
                fp: payload
                for fp in probe
                for payload in (cache.get(fp),)
                if payload is not None
            }
    for task in tasks:
        if cache is not None:
            fp = fingerprints[task.task_id]
            payload = found.get(fp)
            if payload is not None:
                results[task.task_id] = payload
                if telemetry.enabled:
                    telemetry.count("executor.tasks.cached")
                if task_records is not None:
                    task_records[task.task_id] = {
                        "origin": "cache",
                        "wall_time_s": 0.0,
                        "queue_wait_s": 0.0,
                        "fingerprint": fp,
                    }
                if progress is not None:
                    progress(task, payload, True)
                continue
        pending.append(task)

    def on_done(task: TaskSpec, payload: Dict[str, Any]) -> None:
        results[task.task_id] = payload
        if cache is not None:
            cache.put(
                fingerprints[task.task_id],
                payload,
                key_material=(
                    key_material_for(task) if key_material_for is not None else None
                ),
            )
        if task_records is not None:
            # The executor recorded timing before this callback fired;
            # stamp the provenance on top.
            record = task_records.setdefault(
                task.task_id, {"wall_time_s": 0.0, "queue_wait_s": 0.0}
            )
            record["origin"] = "computed"
            if task.task_id in fingerprints:
                record["fingerprint"] = fingerprints[task.task_id]
        if progress is not None:
            progress(task, payload, False)

    if pending and batch_runner is not None:
        batched = batch_runner(list(pending)) or {}
        if batched:
            still_pending = []
            for task in pending:
                if task.task_id in batched:
                    if telemetry.enabled:
                        telemetry.count("executor.tasks.completed")
                    on_done(task, batched[task.task_id])
                else:
                    still_pending.append(task)
            pending = still_pending

    if pending:
        ParallelExecutor(jobs=jobs).map(
            pending, progress=on_done, task_records=task_records
        )
    return results


def run_delta_sweep_parallel(
    scenario,
    deltas: Sequence[float],
    *,
    jobs: int = 1,
    alone_result=None,
    seed: Optional[int] = None,
    label: str = "",
):
    """Parallel analogue of :func:`repro.core.delta.run_delta_sweep`.

    The interference-free baseline runs in the parent (it is one simulation);
    each Δ point becomes its own task.  With the same ``seed`` the result is
    identical to the serial sweep — the common-random-numbers convention of
    the Δ-graph is preserved because every point receives the same seed, as
    in the serial path.
    """
    from repro.core.delta import DeltaPoint, DeltaSweep, alone_times_for
    from repro.model.simulator import simulate_scenario

    if len(scenario.applications) < 2:
        raise ExperimentError("a delta sweep needs a two-application scenario")

    if alone_result is None:
        alone_scenario = scenario.with_applications(scenario.applications[:1])
        alone_result = simulate_scenario(alone_scenario, seed=seed)
    alone_times = alone_times_for(scenario, alone_result)

    tasks = [
        TaskSpec(
            task_id=f"delta[{i}]={float(delta):+.6g}",
            kind="delta-point",
            payload={"scenario": scenario, "delta": float(delta)},
            seed=seed,
        )
        for i, delta in enumerate(deltas)
    ]
    payloads = ParallelExecutor(jobs=jobs).map(tasks)
    points = sorted(
        (DeltaPoint.from_dict(p) for p in payloads), key=lambda p: p.delta
    )
    return DeltaSweep(
        points=list(points), alone_times=alone_times, label=label or scenario.label
    )
