"""Process-parallel task execution with deterministic seeding.

The executor fans *tasks* — experiment ids for a campaign, grid points for a
parameter grid, individual Δ-sweep points for the heavy paper-scale runs —
across a :class:`concurrent.futures.ProcessPoolExecutor` and reassembles the
results in submission order, so parallel runs are byte-identical to serial
ones.

Determinism rules:

* every task carries its own seed, derived from ``(master_seed, task_id)``
  through the same :class:`numpy.random.SeedSequence` construction as
  :class:`repro.sim.rng.RandomStreams` — which worker executes a task never
  affects its result;
* results are returned in task order regardless of completion order;
* workers are plain module-level functions returning JSON-serializable
  payloads (``to_dict()`` form), so the same representation feeds the result
  cache, the run store, and cross-process transport.
"""

from __future__ import annotations

import hashlib
import importlib
import signal
import threading
import time
import zlib
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.errors import ExperimentError, TaskTimeout
from repro.obs.telemetry import get_telemetry
from repro.runner.chaos import get_fault_plan

__all__ = [
    "TaskSpec",
    "FaultPolicy",
    "TaskFailure",
    "ParallelExecutor",
    "derive_task_seed",
    "execute_task",
    "execute_cached",
    "resolve_task_kind",
    "run_experiment_task",
    "run_delta_point_task",
    "run_grid_point_task",
    "run_probe_task",
    "run_delta_sweep_parallel",
]


def derive_task_seed(master_seed: int, task_id: str) -> int:
    """Deterministic per-task seed from ``(master_seed, task_id)``.

    Uses the same crc32 + :class:`numpy.random.SeedSequence` construction as
    :meth:`repro.sim.rng.RandomStreams.stream`, so task streams are
    statistically independent of each other and of the simulator's own named
    streams.
    """
    name_key = zlib.crc32(task_id.encode("utf-8")) & 0xFFFFFFFF
    seq = np.random.SeedSequence(entropy=int(master_seed), spawn_key=(name_key,))
    return int(seq.generate_state(1, dtype=np.uint64)[0] % (2 ** 63))


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work for the executor.

    ``kind`` selects the worker function; ``payload`` is its (picklable)
    argument mapping; ``seed`` is the task's deterministic RNG seed.
    ``span_category`` labels the telemetry span the executor records for the
    task — ``"task"`` for ordinary work units; bucket work units use
    ``"bucket"`` so per-member accounting (spans stamped by the batcher,
    ``executor.tasks.completed``) is not double-counted.
    """

    task_id: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    span_category: str = "task"


# --------------------------------------------------------------------------- #
# Worker functions (module-level so ProcessPoolExecutor can pickle them)
# --------------------------------------------------------------------------- #


def run_experiment_task(payload: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
    """Run one registered experiment and grade it against the paper.

    Payload keys: ``experiment_id``, ``scale``, ``quick`` and optionally
    ``stepping`` (a serialized
    :class:`~repro.config.control.SteppingPolicy` applied as the process
    default while the experiment runs).  Returns the
    :meth:`~repro.analysis.campaign.ExperimentRecord.to_payload` form, so
    the transported/cached shape and the record class cannot drift apart.
    """
    from repro.analysis.campaign import ExperimentRecord
    from repro.analysis.comparison import check_experiment
    from repro.config.control import SteppingPolicy, stepping_policy
    from repro.experiments.registry import get_experiment

    policy = payload.get("stepping")
    policy = None if policy is None else SteppingPolicy.from_dict(policy)
    entry = get_experiment(payload["experiment_id"])
    start = time.perf_counter()
    with stepping_policy(policy):
        result = entry.run(scale=payload["scale"], quick=payload["quick"])
        checks = check_experiment(result)
    record = ExperimentRecord(
        experiment_id=entry.experiment_id,
        result=result,
        checks=checks,
        wall_time=time.perf_counter() - start,
    )
    return record.to_payload()


def run_delta_point_task(payload: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
    """Simulate one Δ-graph point of a two-application scenario.

    Payload keys: ``scenario`` (a :class:`~repro.config.scenario.ScenarioConfig`)
    and ``delta``.  Returns the serialized :class:`~repro.core.delta.DeltaPoint`.
    """
    from repro.core.delta import DeltaPoint
    from repro.model.simulator import simulate_scenario

    scenario = payload["scenario"]
    delta = float(payload["delta"])
    result = simulate_scenario(scenario.with_delay(delta), seed=seed)
    return DeltaPoint.from_run_result(delta, result).to_dict()


def run_grid_point_task(payload: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
    """Run one parameter-grid point: a full Δ-sweep of one configuration.

    Payload keys: ``scale``, ``params`` (scenario keyword overrides, already
    normalized by :mod:`repro.runner.grid`), ``n_points``.  Returns the
    serialized sweep plus its headline summary.
    """
    from repro.core.delta import jsonify
    from repro.core.experiment import TwoApplicationExperiment

    params = dict(payload["params"])
    if seed is not None:
        params.setdefault("seed", int(seed))
    experiment = TwoApplicationExperiment(payload["scale"], **params)
    sweep = experiment.run_sweep(n_points=int(payload["n_points"]))
    return {
        "sweep": sweep.to_dict(),
        "summary": jsonify(sweep.summary()),
        "alone_time": float(experiment.alone_time()),
    }


def run_probe_task(payload: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
    """Trivial diagnostic worker: optionally sleep, then echo the payload value.

    Exists for the supervision and chaos tests — a task kind with no model
    dependencies whose wall-clock behaviour (``sleep_s``) and output
    (``value``) are fully controlled by the payload.  With
    ``uninterruptible`` the sleep swallows the deadline guard's
    :class:`TaskTimeout` and keeps sleeping — simulating a task stuck in
    native code that only the parent watchdog can reclaim.
    """
    delay = float(payload.get("sleep_s", 0.0))
    if delay > 0.0 and payload.get("uninterruptible"):
        end = time.monotonic() + delay
        while True:
            remaining = end - time.monotonic()
            if remaining <= 0.0:
                break
            try:
                time.sleep(remaining)
            except TaskTimeout:
                continue
    elif delay > 0.0:
        time.sleep(delay)
    return {
        "value": payload.get("value"),
        "seed": None if seed is None else int(seed),
    }


_Worker = Callable[[Dict[str, Any], Optional[int]], Dict[str, Any]]

#: Task kind -> worker.  A worker is either the function itself or a lazy
#: ``"module:function"`` reference.  Lazy references let higher layers (the
#: scenario fleet in :mod:`repro.scenarios.matrix`) plug their own task kinds
#: in without this module importing them at load time — crucially, the
#: reference also resolves inside pool *worker processes*, which import this
#: module but not necessarily the layer that registered the kind.
_TASK_KINDS: Dict[str, Union[str, _Worker]] = {
    "experiment": run_experiment_task,
    "delta-point": run_delta_point_task,
    "grid-point": run_grid_point_task,
    "matrix-alone": "repro.scenarios.matrix:run_matrix_alone_task",
    "matrix-pair": "repro.scenarios.matrix:run_matrix_pair_task",
    "matrix-bucket": "repro.scenarios.matrix:run_matrix_bucket_task",
    "probe": run_probe_task,
}


def resolve_task_kind(kind: str) -> _Worker:
    """The worker function for ``kind``, importing lazy references on demand."""
    try:
        worker = _TASK_KINDS[kind]
    except KeyError:
        raise ExperimentError(
            f"unknown task kind {kind!r}; known: {sorted(_TASK_KINDS)}"
        ) from None
    if isinstance(worker, str):
        module_name, _, attr = worker.partition(":")
        worker = getattr(importlib.import_module(module_name), attr)
        _TASK_KINDS[kind] = worker  # memoize for the life of the process
    return worker


def execute_task(task: TaskSpec) -> Dict[str, Any]:
    """Dispatch one task to its worker function (runs inside the pool)."""
    return resolve_task_kind(task.kind)(task.payload, task.seed)


# --------------------------------------------------------------------------- #
# Supervision: deadlines, bounded retries, quarantine
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FaultPolicy:
    """How the supervised executor treats failing, slow, and stuck tasks.

    ``task_timeout_s`` is the default per-task wall-clock deadline (``None``
    disables deadlines); ``timeouts_by_kind`` overrides it per task kind.
    ``max_retries`` bounds how many times one task is re-run after its first
    failed attempt before it is quarantined.  Retries back off exponentially
    from ``backoff_base_s`` (capped at ``backoff_cap_s``) with deterministic
    jitter derived from ``(task_id, attempt)`` — reruns of the same campaign
    wait the same amounts.  ``grace_s`` is how long the parent waits past a
    task's deadline before concluding the worker-side guard failed (a worker
    stuck in C code cannot be interrupted by a signal-raised exception) and
    tearing the pool down.

    Serial caveat: with ``jobs=1`` tasks run in the supervisor process
    itself, so the in-process SIGALRM guard is the *only* deadline
    enforcement — there is no pool for the parent watchdog to tear down,
    and a task stuck in C code that never returns to the interpreter hangs
    the campaign despite ``task_timeout_s``.  Use ``jobs >= 2`` when
    stuck-in-native-code tasks are a real risk.
    """

    task_timeout_s: Optional[float] = None
    timeouts_by_kind: Mapping[str, float] = field(default_factory=dict)
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ExperimentError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ExperimentError(
                f"task_timeout_s must be positive, got {self.task_timeout_s}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ExperimentError(
                "backoff_base_s and backoff_cap_s must be >= 0, got "
                f"{self.backoff_base_s}/{self.backoff_cap_s}"
            )
        if self.grace_s < 0:
            raise ExperimentError(
                f"grace_s must be >= 0, got {self.grace_s}"
            )

    def timeout_for(self, kind: str) -> Optional[float]:
        """The wall-clock deadline for one task kind (``None`` = unlimited)."""
        override = self.timeouts_by_kind.get(kind)
        return self.task_timeout_s if override is None else float(override)

    def backoff_s(self, task_key: str, attempt: int) -> float:
        """Delay before running ``attempt`` (1-based retry counter) of a task.

        Exponential in the attempt number, capped, then scaled into
        ``[0.5, 1.0)`` of itself by a deterministic hash of
        ``(task_key, attempt)`` — jitter without irreproducibility.
        """
        if attempt <= 0:
            return 0.0
        base = self.backoff_base_s * (2.0 ** (attempt - 1))
        bounded = min(base, self.backoff_cap_s)
        material = f"{task_key}|{attempt}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2 ** 64
        return bounded * (0.5 + 0.5 * fraction)


@dataclass(frozen=True)
class TaskFailure:
    """One quarantined task: what failed, how, and after how many attempts."""

    task_id: str
    kind: str
    reason: str  # "exception" | "timeout" | "pool-crash"
    error: str
    attempts: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task_id": self.task_id,
            "kind": self.kind,
            "reason": self.reason,
            "error": self.error,
            "attempts": int(self.attempts),
        }


@contextmanager
def _deadline(timeout_s: Optional[float], label: str) -> Iterator[None]:
    """Raise :class:`TaskTimeout` if the block outlives ``timeout_s``.

    Implemented with ``signal.setitimer`` so a stalled task — even one
    sleeping inside library code — is interrupted.  Requires the POSIX
    signal API and the process main thread (pool workers run tasks on
    theirs); anywhere else the guard degrades to a no-op and the parent's
    grace-period watchdog is the only enforcement.
    """
    if (
        not timeout_s
        or timeout_s <= 0
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def on_alarm(signum, frame):  # pragma: no cover - exercised via raise
        raise TaskTimeout(
            f"task {label!r} exceeded its {timeout_s:g}s deadline"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_attempt(
    task: TaskSpec,
    attempt: int,
    timeout_s: Optional[float],
    *,
    in_worker: bool,
) -> Dict[str, Any]:
    """One supervised attempt: chaos injection + deadline + the task itself.

    The chaos check lives *inside* the deadline guard so an injected stall
    is interrupted exactly like an organic one.
    """
    with _deadline(timeout_s, task.task_id):
        plan = get_fault_plan()
        if plan is not None:
            plan.maybe_inject(task.task_id, attempt, in_worker=in_worker)
        return execute_task(task)


def _execute_task_observed(
    task: TaskSpec,
    collect: bool,
    attempt: int = 0,
    timeout_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Pool-side wrapper: time the task and (optionally) collect telemetry.

    Runs inside a worker process, where the parent's registry does not
    exist.  When ``collect`` is true a fresh worker-local
    :class:`~repro.obs.telemetry.Telemetry` is installed for the duration of
    the task; its snapshot ships back with the payload and the parent merges
    it (re-anchoring span times via the wall-clock epoch) under the task's
    span.  The wall-clock ``started`` stamp lets the parent compute how long
    the task waited in the pool queue.

    Under supervision the wrapper also enforces the task's wall-clock
    deadline and applies any active chaos plan (``attempt`` selects which
    injections fire; workers inherit the plan through ``REPRO_CHAOS``).
    """
    from repro.obs.telemetry import NULL, Telemetry, set_telemetry

    started = time.time()
    t0 = time.perf_counter()
    if not collect:
        payload = _run_attempt(task, attempt, timeout_s, in_worker=True)
        return {
            "payload": payload,
            "obs": {"started": started, "wall_s": time.perf_counter() - t0,
                    "snapshot": None},
        }
    local = Telemetry(label=task.task_id)
    set_telemetry(local)
    try:
        payload = _run_attempt(task, attempt, timeout_s, in_worker=True)
    finally:
        set_telemetry(NULL)
    return {
        "payload": payload,
        "obs": {"started": started, "wall_s": time.perf_counter() - t0,
                "snapshot": local.snapshot()},
    }


# --------------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------------- #


class ParallelExecutor:
    """Fan tasks across worker processes; reassemble results in task order.

    ``jobs=1`` (the default) runs everything in-process with no pool, so the
    serial path has zero multiprocessing overhead and identical semantics.

    With a :class:`FaultPolicy` the executor runs *supervised*: failing
    tasks are retried with backoff, deadline overruns are interrupted, a
    broken pool is rebuilt and only unfinished tasks resubmitted, and tasks
    that exhaust their retries are quarantined instead of aborting the map.
    Without one (the default) semantics are unchanged — the first failure
    aborts the whole map.
    """

    def __init__(
        self, jobs: int = 1, fault_policy: Optional[FaultPolicy] = None
    ) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.fault_policy = fault_policy

    def map(
        self,
        tasks: Sequence[TaskSpec],
        progress: Optional[Callable[[TaskSpec, Dict[str, Any]], None]] = None,
        task_records: Optional[Dict[str, Dict[str, Any]]] = None,
        failures: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> List[Dict[str, Any]]:
        """Execute every task; results come back in ``tasks`` order.

        ``progress`` is invoked as ``progress(task, result)`` as tasks
        *complete* (completion order under parallelism).  A failing task
        aborts the whole map: remaining futures are cancelled and the
        worker's exception is re-raised with the task id attached.

        ``task_records``, when given, is filled with per-task provenance
        ``{task_id: {"wall_time_s", "queue_wait_s"}}`` (a record exists
        before that task's ``progress`` call fires).  With telemetry enabled
        each task additionally gets a ``task`` span — and, under
        parallelism, the worker's own telemetry snapshot merged beneath it.
        Without telemetry and without ``task_records`` the execution path is
        unchanged from the uninstrumented executor.

        Under a :class:`FaultPolicy` the abort-on-failure contract changes:
        quarantined tasks yield ``None`` placeholders in the returned list
        (``progress`` never fires for them) and their
        :meth:`TaskFailure.to_dict` records land in ``failures``.  A
        supervised map with quarantined tasks but no ``failures`` dict to
        report into raises, so failures can never be silently dropped.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ExperimentError("task ids must be unique within one map() call")

        telemetry = get_telemetry()
        observe = telemetry.enabled or task_records is not None
        if telemetry.enabled:
            telemetry.gauge("executor.jobs", float(self.jobs))

        if self.fault_policy is not None:
            return self._map_supervised(
                tasks, telemetry, observe, progress, task_records, failures
            )

        if self.jobs == 1 or len(tasks) == 1:
            results = []
            for task in tasks:
                if observe:
                    # In-process tasks run under the ambient registry, so
                    # simulation spans nest directly beneath the task span.
                    start = time.perf_counter()
                    with telemetry.span(
                        task.task_id, category=task.span_category,
                        track="tasks", kind=task.kind,
                    ):
                        result = execute_task(task)
                    wall = time.perf_counter() - start
                    if task.span_category == "task":
                        telemetry.count("executor.tasks.completed")
                    if task_records is not None:
                        task_records[task.task_id] = {
                            "wall_time_s": wall, "queue_wait_s": 0.0,
                        }
                else:
                    result = execute_task(task)
                results.append(result)
                if progress is not None:
                    progress(task, result)
            return results

        results_by_index: Dict[int, Dict[str, Any]] = {}
        submit_epoch: Dict[int, float] = {}
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(tasks))) as pool:
            future_to_index = {}
            for i, task in enumerate(tasks):
                if observe:
                    submit_epoch[i] = time.time()
                    future = pool.submit(
                        _execute_task_observed, task, telemetry.enabled
                    )
                else:
                    future = pool.submit(execute_task, task)
                future_to_index[future] = i
            pending = set(future_to_index)
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = future_to_index[future]
                        task = tasks[index]
                        try:
                            result = future.result()
                        except Exception as exc:
                            raise ExperimentError(
                                f"task {task.task_id!r} failed in worker: {exc}"
                            ) from exc
                        if observe:
                            result = _unwrap_observed(
                                telemetry, task, result,
                                submit_epoch[index], task_records,
                            )
                        results_by_index[index] = result
                        if progress is not None:
                            progress(task, result)
            finally:
                for future in pending:
                    future.cancel()
        return [results_by_index[i] for i in range(len(tasks))]

    # ------------------------------------------------------------------ #
    # Supervised execution
    # ------------------------------------------------------------------ #

    def _map_supervised(
        self,
        tasks: List[TaskSpec],
        telemetry,
        observe: bool,
        progress,
        task_records,
        failures: Optional[Dict[str, Dict[str, Any]]],
    ) -> List[Optional[Dict[str, Any]]]:
        policy = self.fault_policy
        quarantined: Dict[str, TaskFailure] = {}

        def charge(task: TaskSpec, attempt: int, exc: BaseException, reason: str) -> bool:
            """Record one failed attempt; True means the task may retry."""
            if telemetry.enabled and reason == "timeout":
                telemetry.count("executor.timeouts")
            if attempt < policy.max_retries:
                if telemetry.enabled:
                    telemetry.count("executor.retries")
                return True
            quarantined[task.task_id] = TaskFailure(
                task_id=task.task_id,
                kind=task.kind,
                reason=reason,
                error=str(exc),
                attempts=attempt + 1,
            )
            if telemetry.enabled:
                telemetry.count("executor.quarantined")
            return False

        if self.jobs == 1 or len(tasks) == 1:
            results = self._supervised_serial(
                tasks, telemetry, observe, progress, task_records, charge
            )
        else:
            results = self._supervised_pool(
                tasks, telemetry, progress, task_records, charge
            )

        if quarantined:
            if failures is None:
                names = ", ".join(sorted(quarantined))
                raise ExperimentError(
                    f"{len(quarantined)} task(s) exhausted their retries "
                    f"and no failures sink was provided: {names}"
                )
            for task_id, failure in quarantined.items():
                failures[task_id] = failure.to_dict()
        return results

    def _supervised_serial(
        self, tasks, telemetry, observe, progress, task_records, charge
    ) -> List[Optional[Dict[str, Any]]]:
        policy = self.fault_policy
        results: List[Optional[Dict[str, Any]]] = []
        for task in tasks:
            timeout_s = policy.timeout_for(task.kind)
            attempt = 0
            payload: Optional[Dict[str, Any]] = None
            while True:
                start = time.perf_counter()
                try:
                    if observe:
                        with telemetry.span(
                            task.task_id, category=task.span_category,
                            track="tasks", kind=task.kind,
                        ):
                            payload = _run_attempt(
                                task, attempt, timeout_s, in_worker=False
                            )
                    else:
                        payload = _run_attempt(
                            task, attempt, timeout_s, in_worker=False
                        )
                except Exception as exc:
                    reason = (
                        "timeout" if isinstance(exc, TaskTimeout) else "exception"
                    )
                    if not charge(task, attempt, exc, reason):
                        payload = None
                        break
                    attempt += 1
                    time.sleep(policy.backoff_s(task.task_id, attempt))
                    continue
                if observe:
                    if task.span_category == "task":
                        telemetry.count("executor.tasks.completed")
                    if task_records is not None:
                        task_records[task.task_id] = {
                            "wall_time_s": time.perf_counter() - start,
                            "queue_wait_s": 0.0,
                        }
                break
            results.append(payload)
            if payload is not None and progress is not None:
                progress(task, payload)
        return results

    def _supervised_pool(
        self, tasks, telemetry, progress, task_records, charge
    ) -> List[Optional[Dict[str, Any]]]:
        policy = self.fault_policy
        results_by_id: Dict[str, Dict[str, Any]] = {}
        # (task, attempt, ready_epoch): the run queue, with backoff encoded
        # as a not-before time so one task's backoff never stalls the rest.
        waiting: "deque[Tuple[TaskSpec, int, float]]" = deque(
            (task, 0, 0.0) for task in tasks
        )
        inflight: Dict[Any, _InFlight] = {}
        pool = self._new_pool(len(tasks))

        def requeue(meta: "_InFlight", exc: BaseException, reason: str) -> None:
            if charge(meta.task, meta.attempt, exc, reason):
                next_attempt = meta.attempt + 1
                waiting.append((
                    meta.task,
                    next_attempt,
                    time.time() + policy.backoff_s(meta.task.task_id, next_attempt),
                ))

        def rebuild_pool(old_pool, *, terminate: bool) -> ProcessPoolExecutor:
            if terminate:
                procs = list((getattr(old_pool, "_processes", None) or {}).values())
                old_pool.shutdown(wait=False, cancel_futures=True)
                for proc in procs:
                    try:
                        proc.terminate()
                    except Exception:  # pragma: no cover - defensive
                        pass
            else:
                old_pool.shutdown(wait=False)
            if telemetry.enabled:
                telemetry.count("executor.pool_rebuilds")
            return self._new_pool(max(1, len(waiting)))

        try:
            while waiting or inflight:
                now = time.time()
                # Fill the submission window with ready work.  Keeping
                # in-flight <= jobs means a pool crash can only strike tasks
                # that were genuinely running, so innocents in the queue are
                # never charged an attempt.
                deferred: List[Tuple[TaskSpec, int, float]] = []
                while waiting and len(inflight) < self.jobs:
                    task, attempt, ready = waiting.popleft()
                    if ready > now:
                        deferred.append((task, attempt, ready))
                        continue
                    timeout_s = policy.timeout_for(task.kind)
                    future = pool.submit(
                        _execute_task_observed, task, telemetry.enabled,
                        attempt, timeout_s,
                    )
                    hard = None
                    if timeout_s is not None:
                        hard = now + timeout_s + policy.grace_s
                    inflight[future] = _InFlight(task, attempt, now, hard)
                waiting.extendleft(reversed(deferred))

                if not inflight:
                    # Everything is backing off; sleep to the first release.
                    ready_at = min(entry[2] for entry in waiting)
                    time.sleep(max(0.0, ready_at - time.time()))
                    continue

                deadlines = [
                    meta.hard_deadline
                    for meta in inflight.values()
                    if meta.hard_deadline is not None
                ]
                releases = [entry[2] for entry in waiting if entry[2] > now]
                wake_at = min(deadlines + releases) if (deadlines or releases) else None
                timeout = None if wake_at is None else max(0.0, wake_at - time.time())
                done, _ = wait(
                    set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )

                pool_broken = False
                for future in done:
                    meta = inflight.pop(future)
                    try:
                        wrapped = future.result()
                    except BrokenExecutor as exc:
                        pool_broken = True
                        requeue(meta, exc, "pool-crash")
                        continue
                    except Exception as exc:
                        reason = (
                            "timeout" if isinstance(exc, TaskTimeout)
                            else "exception"
                        )
                        requeue(meta, exc, reason)
                        continue
                    payload = _unwrap_observed(
                        telemetry, meta.task, wrapped, meta.submitted,
                        task_records,
                    )
                    results_by_id[meta.task.task_id] = payload
                    if progress is not None:
                        progress(meta.task, payload)

                if pool_broken:
                    # The pool is unusable; every still-in-flight task died
                    # with it.  Charge them, rebuild, resubmit only what is
                    # unfinished.
                    for meta in list(inflight.values()):
                        requeue(
                            meta,
                            ExperimentError(
                                "worker pool broke while the task was in flight"
                            ),
                            "pool-crash",
                        )
                    inflight.clear()
                    pool = rebuild_pool(pool, terminate=False)
                    continue

                # Parent-side watchdog: a worker that blew past deadline +
                # grace is stuck beyond the reach of the in-worker signal
                # guard.  The pool API cannot kill one worker, so tear the
                # whole pool down; overdue tasks are charged a timeout,
                # innocent casualties are resubmitted at the same attempt.
                now = time.time()
                overdue = [
                    future
                    for future, meta in inflight.items()
                    if meta.hard_deadline is not None and now > meta.hard_deadline
                ]
                if overdue:
                    survivors = [
                        meta for future, meta in inflight.items()
                        if future not in overdue
                    ]
                    victims = [inflight[future] for future in overdue]
                    inflight.clear()
                    # Requeue before rebuilding (as in the BrokenExecutor
                    # branch): rebuild_pool sizes the new pool from the
                    # waiting queue, so victims and survivors must be back
                    # in it first — otherwise an all-in-flight stall leaves
                    # a one-worker pool serving up to ``jobs`` submissions,
                    # and queue wait counts against the next hard deadline.
                    for meta in victims:
                        requeue(
                            meta,
                            TaskTimeout(
                                f"task {meta.task.task_id!r} exceeded its "
                                "deadline and grace period (parent watchdog)"
                            ),
                            "timeout",
                        )
                    for meta in survivors:
                        waiting.append((meta.task, meta.attempt, 0.0))
                    pool = rebuild_pool(pool, terminate=True)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return [results_by_id.get(task.task_id) for task in tasks]

    def _new_pool(self, backlog: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=min(self.jobs, max(1, backlog)))


@dataclass
class _InFlight:
    """Parent-side bookkeeping for one submitted supervised attempt."""

    task: TaskSpec
    attempt: int
    submitted: float
    hard_deadline: Optional[float]


def _unwrap_observed(
    telemetry,
    task: TaskSpec,
    wrapped: Dict[str, Any],
    submitted: float,
    task_records: Optional[Dict[str, Dict[str, Any]]],
) -> Dict[str, Any]:
    """Parent-side unwrap of one :func:`_execute_task_observed` result.

    Records the task span (anchored at the worker's wall-clock start, so
    queue wait shows as the gap after submission), merges the worker's
    telemetry snapshot beneath it, and fills the task's provenance record.
    Returns the bare payload.
    """
    obs = wrapped["obs"]
    payload = wrapped["payload"]
    queue_wait = max(0.0, obs["started"] - submitted)
    if telemetry.enabled:
        start_us = (obs["started"] - telemetry.epoch) * 1e6
        dur_us = obs["wall_s"] * 1e6
        span_id = telemetry.add_span(
            task.task_id,
            task.span_category,
            start_us,
            dur_us,
            track="tasks",
            args={"kind": task.kind, "queue_wait_s": round(queue_wait, 6)},
        )
        if obs.get("snapshot"):
            telemetry.merge_snapshot(
                obs["snapshot"], parent=span_id, track="workers"
            )
        if task.span_category == "task":
            telemetry.count("executor.tasks.completed")
    if task_records is not None:
        task_records[task.task_id] = {
            "wall_time_s": obs["wall_s"], "queue_wait_s": queue_wait,
        }
    return payload


def execute_cached(
    tasks: Sequence[TaskSpec],
    *,
    jobs: int = 1,
    cache=None,
    fingerprint_for: Optional[Callable[[TaskSpec], str]] = None,
    key_material_for: Optional[Callable[[TaskSpec], Dict[str, Any]]] = None,
    progress: Optional[Callable[[TaskSpec, Dict[str, Any], bool], None]] = None,
    task_records: Optional[Dict[str, Dict[str, Any]]] = None,
    batch_runner: Optional[
        Callable[[List[TaskSpec]], Optional[Dict[str, Dict[str, Any]]]]
    ] = None,
    fault_policy: Optional[FaultPolicy] = None,
    failures: Optional[Dict[str, Dict[str, Any]]] = None,
    journal=None,
) -> Dict[str, Dict[str, Any]]:
    """Run tasks through the executor, served from / stored into a cache.

    The shared orchestration of every cached campaign (the experiment
    campaign, the interference matrix): probe the cache per task, fan the
    misses across the pool, store completions back.  Returns
    ``{task_id: payload}`` for every task.

    Parameters
    ----------
    tasks:
        The full task list (hits and misses alike).
    jobs:
        Worker processes for the cache misses.
    cache:
        A :class:`repro.runner.cache.ResultCache` (or ``None`` to disable
        caching — fingerprints are then never computed).
    fingerprint_for:
        Callable giving one task's cache fingerprint; required when
        ``cache`` is given.
    key_material_for:
        Optional callable giving the human-readable key material stored
        beside one task's payload.
    progress:
        Optional callback ``progress(task, payload, from_cache)``: cache
        hits fire first (in task order), then completions (in completion
        order under parallelism).
    task_records:
        Optional dict filled with per-task provenance
        ``{task_id: {"origin": "cache"|"computed", "wall_time_s",
        "queue_wait_s", "fingerprint"?}}`` — the material for the
        manifest's task table and the cache-efficiency report.
    batch_runner:
        Optional bulk path for cache misses, tried before the pool.  Called
        once with the full miss list; returns ``{task_id: payload}`` for
        whatever subset it chose to run together (``None`` or ``{}`` to
        decline).  Handled tasks skip the pool but flow through the same
        caching/progress/provenance path as pool completions; the runner is
        responsible for stamping its own timing into ``task_records``.
        Unhandled tasks fall through to the pool unchanged.
    fault_policy:
        Optional :class:`FaultPolicy`; with one, the pool phase runs
        supervised (retry/timeout/quarantine) and quarantined tasks simply
        have no entry in the returned mapping.
    failures:
        Required with ``fault_policy``: collects ``{task_id:
        TaskFailure.to_dict()}`` for quarantined tasks.
    journal:
        Optional :class:`repro.runner.journal.ProgressJournal`; every
        completion (cache hit, batched, or computed) and every quarantined
        failure appends one state line, making the campaign resumable after
        a kill.
    """
    if cache is not None and fingerprint_for is None:
        raise ExperimentError("execute_cached needs fingerprint_for with a cache")

    telemetry = get_telemetry()
    results: Dict[str, Dict[str, Any]] = {}
    fingerprints: Dict[str, str] = {}
    pending: List[TaskSpec] = []
    found: Dict[str, Dict[str, Any]] = {}
    if cache is not None and tasks:
        # One batched multi-probe for the whole campaign (hot-tier backed)
        # instead of one stat+read round-trip per task.
        fingerprints = {task.task_id: fingerprint_for(task) for task in tasks}
        probe = [fingerprints[task.task_id] for task in tasks]
        if hasattr(cache, "get_many"):
            found = cache.get_many(probe)
        else:  # duck-typed caches: per-task probes, same semantics
            found = {
                fp: payload
                for fp in probe
                for payload in (cache.get(fp),)
                if payload is not None
            }
    for task in tasks:
        if cache is not None:
            fp = fingerprints[task.task_id]
            payload = found.get(fp)
            if payload is not None:
                results[task.task_id] = payload
                if telemetry.enabled:
                    telemetry.count("executor.tasks.cached")
                if task_records is not None:
                    task_records[task.task_id] = {
                        "origin": "cache",
                        "wall_time_s": 0.0,
                        "queue_wait_s": 0.0,
                        "fingerprint": fp,
                    }
                if journal is not None:
                    journal.record(
                        task.task_id, "completed", fingerprint=fp, origin="cache"
                    )
                if progress is not None:
                    progress(task, payload, True)
                continue
        pending.append(task)

    def on_done(task: TaskSpec, payload: Dict[str, Any]) -> None:
        results[task.task_id] = payload
        if cache is not None:
            cache.put(
                fingerprints[task.task_id],
                payload,
                key_material=(
                    key_material_for(task) if key_material_for is not None else None
                ),
            )
        if task_records is not None:
            # The executor recorded timing before this callback fired;
            # stamp the provenance on top.
            record = task_records.setdefault(
                task.task_id, {"wall_time_s": 0.0, "queue_wait_s": 0.0}
            )
            record["origin"] = "computed"
            if task.task_id in fingerprints:
                record["fingerprint"] = fingerprints[task.task_id]
        if journal is not None:
            journal.record(
                task.task_id,
                "completed",
                fingerprint=fingerprints.get(task.task_id),
                origin="computed",
            )
        if progress is not None:
            progress(task, payload, False)

    if pending and batch_runner is not None:
        batched = batch_runner(list(pending)) or {}
        if batched:
            still_pending = []
            for task in pending:
                if task.task_id in batched:
                    if telemetry.enabled:
                        telemetry.count("executor.tasks.completed")
                    on_done(task, batched[task.task_id])
                else:
                    still_pending.append(task)
            pending = still_pending

    if pending:
        ParallelExecutor(jobs=jobs, fault_policy=fault_policy).map(
            pending,
            progress=on_done,
            task_records=task_records,
            failures=failures,
        )
    if journal is not None and failures:
        for task_id, failure in failures.items():
            journal.record(
                task_id,
                "failed",
                attempt=int(failure.get("attempts", 0)),
                error=str(failure.get("error", "")),
            )
    return results


def run_delta_sweep_parallel(
    scenario,
    deltas: Sequence[float],
    *,
    jobs: int = 1,
    alone_result=None,
    seed: Optional[int] = None,
    label: str = "",
):
    """Parallel analogue of :func:`repro.core.delta.run_delta_sweep`.

    The interference-free baseline runs in the parent (it is one simulation);
    each Δ point becomes its own task.  With the same ``seed`` the result is
    identical to the serial sweep — the common-random-numbers convention of
    the Δ-graph is preserved because every point receives the same seed, as
    in the serial path.
    """
    from repro.core.delta import DeltaPoint, DeltaSweep, alone_times_for
    from repro.model.simulator import simulate_scenario

    if len(scenario.applications) < 2:
        raise ExperimentError("a delta sweep needs a two-application scenario")

    if alone_result is None:
        alone_scenario = scenario.with_applications(scenario.applications[:1])
        alone_result = simulate_scenario(alone_scenario, seed=seed)
    alone_times = alone_times_for(scenario, alone_result)

    tasks = [
        TaskSpec(
            task_id=f"delta[{i}]={float(delta):+.6g}",
            kind="delta-point",
            payload={"scenario": scenario, "delta": float(delta)},
            seed=seed,
        )
        for i, delta in enumerate(deltas)
    ]
    payloads = ParallelExecutor(jobs=jobs).map(tasks)
    points = sorted(
        (DeltaPoint.from_dict(p) for p in payloads), key=lambda p: p.delta
    )
    return DeltaSweep(
        points=list(points), alone_times=alone_times, label=label or scenario.label
    )
