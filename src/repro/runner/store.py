"""Persistent run directories with verifiable manifests.

Every grid point (and any other persisted run) gets its own directory under
a :class:`RunStore` root:

.. code-block:: text

    runs/
      hdd_sync-on_contiguous_10g/
        manifest.json        # run_id, seed, config, timestamp, artifacts
        sweep.json           # the Δ-graph sweep (DeltaSweep.to_dict)
        summary.json         # headline metrics
        sweep.csv            # per-point CSV export

The manifest records a SHA-256 checksum per artifact; :func:`verify_manifest`
re-hashes everything so a tampered or truncated run directory is detected
(``repro-io verify <run-dir>``).

Every file lands via write-to-``*.tmp`` + :func:`os.replace`, so a crash
mid-write can never leave a truncated ``telemetry.json``/``matrix.json``
that ``reproduce`` would later report as tampering — the worst case is an
abandoned ``*.tmp``, which :func:`sweep_stale_tmp` removes on the next
store open (an age grace keeps live concurrent writers safe).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro._version import __version__
from repro.errors import AnalysisError

__all__ = [
    "RunStore",
    "write_run",
    "load_manifest",
    "verify_manifest",
    "sha256_file",
    "atomic_write_text",
    "sweep_stale_tmp",
    "MANIFEST_NAME",
    "REQUIRED_MANIFEST_FIELDS",
    "TELEMETRY_DOCUMENT_ARTIFACT",
    "TELEMETRY_EVENTS_ARTIFACT",
]

MANIFEST_NAME = "manifest.json"
REQUIRED_MANIFEST_FIELDS = ("run_id", "seed", "config", "timestamp", "artifacts")


def sha256_file(path: Union[str, Path]) -> str:
    """Streaming SHA-256 of one file — the manifest's artifact checksum.

    Public because ``repro-io reproduce`` re-hashes artifacts with exactly
    the digest the manifest recorded; a private copy would let the two
    drift.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


_sha256 = sha256_file


def atomic_write_text(path: Union[str, Path], content: str) -> None:
    """Write ``content`` to ``path`` atomically (tempfile + ``os.replace``).

    The temporary file is created in ``path``'s own directory (same
    filesystem, so the replace is a rename) with a ``.tmp`` suffix that
    :func:`sweep_stale_tmp` recognizes.  A crash between write and replace
    leaves only the temp file; readers never observe a truncated ``path``.
    """
    target = Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(target.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(content)
        # mkstemp creates the file 0600; widen to the umask-default mode so
        # atomic writes don't silently tighten permissions on shared stores.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp, 0o666 & ~umask)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def sweep_stale_tmp(root: Union[str, Path], max_age_s: float = 3600.0) -> int:
    """Remove abandoned ``*.tmp`` files under ``root`` older than ``max_age_s``.

    The shared crash-hygiene primitive of the result cache and the run
    store: atomic writers leave a ``*.tmp`` behind only when killed
    mid-write, and anything older than the grace window cannot belong to a
    live writer.  Returns how many files were removed; races with another
    sweeper are benign.
    """
    base = Path(root)
    if not base.is_dir():
        return 0
    cutoff = time.time() - float(max_age_s)
    swept = 0
    for tmp in base.glob("**/*.tmp"):
        try:
            if tmp.stat().st_mtime <= cutoff:
                tmp.unlink()
                swept += 1
        except OSError:  # pragma: no cover - raced with another sweeper
            continue
    return swept


#: Artifact names the manifest's ``telemetry`` reference block points at
#: (kept in sync with :mod:`repro.obs.summary` by a unit test, not an
#: import, so the store stays independent of the obs package).
TELEMETRY_DOCUMENT_ARTIFACT = "telemetry.json"
TELEMETRY_EVENTS_ARTIFACT = "telemetry_events.jsonl"


def write_run(
    run_dir: Union[str, Path],
    *,
    run_id: str,
    seed: int,
    config: Mapping[str, object],
    artifacts: Mapping[str, str],
    timestamp: Optional[float] = None,
    tasks: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> Dict[str, object]:
    """Write a run directory: artifacts first, then the manifest.

    Parameters
    ----------
    run_dir:
        Directory to create/fill.
    run_id, seed, config:
        Identity of the run, recorded verbatim in the manifest.
    artifacts:
        Mapping of file name to text content; each entry is written inside
        ``run_dir`` and checksummed into the manifest.
    timestamp:
        Override for the manifest timestamp (defaults to now).
    tasks:
        Optional per-task provenance (wall time, queue wait, cache origin)
        recorded under the manifest's ``tasks`` key — the material
        ``repro-io verify`` uses for its cache-efficiency report.  Omitted
        entirely when not given, so runs without telemetry keep the exact
        manifest shape of earlier versions.

    When the artifacts include a telemetry document
    (``telemetry.json``/``telemetry_events.jsonl``), the manifest gains a
    ``telemetry`` block referencing them by name.

    Returns the manifest dictionary.
    """
    run_path = Path(run_dir)
    run_path.mkdir(parents=True, exist_ok=True)
    entries: Dict[str, Dict[str, object]] = {}
    for name, content in artifacts.items():
        if Path(name).is_absolute() or ".." in Path(name).parts:
            raise AnalysisError(f"artifact name {name!r} must be a plain relative path")
        artifact_path = run_path / name
        artifact_path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(artifact_path, content)
        entries[name] = {
            "path": name,
            "sha256": _sha256(artifact_path),
            "bytes": artifact_path.stat().st_size,
        }
    manifest = {
        "run_id": run_id,
        "seed": int(seed),
        "config": dict(config),
        "timestamp": float(time.time() if timestamp is None else timestamp),
        "version": __version__,
        "artifacts": entries,
    }
    if tasks is not None:
        manifest["tasks"] = {
            str(task_id): dict(record) for task_id, record in sorted(tasks.items())
        }
    telemetry_ref: Dict[str, str] = {}
    if TELEMETRY_DOCUMENT_ARTIFACT in entries:
        telemetry_ref["document"] = TELEMETRY_DOCUMENT_ARTIFACT
    if TELEMETRY_EVENTS_ARTIFACT in entries:
        telemetry_ref["events"] = TELEMETRY_EVENTS_ARTIFACT
    if telemetry_ref:
        manifest["telemetry"] = telemetry_ref
    atomic_write_text(
        run_path / MANIFEST_NAME,
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
    )
    return manifest


def load_manifest(run_dir: Union[str, Path]) -> Dict[str, object]:
    """Load and return ``manifest.json`` from a run directory."""
    path = Path(run_dir) / MANIFEST_NAME
    if not path.is_file():
        raise AnalysisError(f"no {MANIFEST_NAME} in {Path(run_dir)}")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def verify_manifest(run_dir: Union[str, Path]) -> Tuple[bool, List[str]]:
    """Check a run directory's integrity.

    Verifies that the manifest exists and parses, that every required field
    is present, and that every recorded artifact exists with a matching
    SHA-256 checksum and size.  Returns ``(ok, issues)`` where ``issues``
    lists every problem found (empty when ``ok``).
    """
    run_path = Path(run_dir)
    issues: List[str] = []
    manifest_path = run_path / MANIFEST_NAME
    if not manifest_path.is_file():
        return False, [f"missing manifest: {manifest_path}"]
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except ValueError as exc:
        return False, [f"unreadable manifest {manifest_path}: {exc}"]

    for field_name in REQUIRED_MANIFEST_FIELDS:
        if field_name not in manifest:
            issues.append(f"manifest missing required field {field_name!r}")
    artifacts = manifest.get("artifacts", {})
    if not isinstance(artifacts, dict):
        issues.append("manifest field 'artifacts' must be a mapping")
        artifacts = {}
    for name, entry in artifacts.items():
        if not isinstance(entry, dict):
            issues.append(f"artifact entry {name!r} must be a mapping")
            continue
        artifact_path = run_path / entry.get("path", name)
        if not artifact_path.is_file():
            issues.append(f"missing artifact: {name}")
            continue
        recorded = entry.get("sha256")
        actual = _sha256(artifact_path)
        if recorded != actual:
            issues.append(
                f"checksum mismatch for {name}: manifest {recorded}, file {actual}"
            )
        if "bytes" in entry and artifact_path.stat().st_size != entry["bytes"]:
            issues.append(f"size mismatch for {name}")
    return not issues, issues


class RunStore:
    """A directory of persisted runs, one subdirectory per run.

    Opening a store sweeps ``*.tmp`` debris (abandoned atomic writes of a
    killed run) older than ``tmp_max_age_s`` from every run directory;
    younger temp files are left alone because a concurrent writer may be
    mid-write.
    """

    def __init__(
        self, root: Union[str, Path], *, tmp_max_age_s: float = 3600.0
    ) -> None:
        self.root = Path(root)
        self.swept_tmp = sweep_stale_tmp(self.root, tmp_max_age_s)

    def run_dir(self, run_id: str) -> Path:
        """Path of one run's directory (not created)."""
        safe = run_id.replace("/", "_")
        return self.root / safe

    def write_run(
        self,
        run_id: str,
        *,
        seed: int,
        config: Mapping[str, object],
        artifacts: Mapping[str, str],
        timestamp: Optional[float] = None,
        tasks: Optional[Mapping[str, Mapping[str, object]]] = None,
    ) -> Path:
        """Persist one run and return its directory."""
        run_path = self.run_dir(run_id)
        write_run(
            run_path, run_id=run_id, seed=seed, config=config,
            artifacts=artifacts, timestamp=timestamp, tasks=tasks,
        )
        return run_path

    def runs(self) -> List[Path]:
        """All run directories currently in the store (sorted by name)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p for p in self.root.iterdir() if (p / MANIFEST_NAME).is_file()
        )

    def verify_all(self) -> Dict[str, Tuple[bool, List[str]]]:
        """Verify every run in the store; maps run dir name to verdict."""
        return {p.name: verify_manifest(p) for p in self.runs()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunStore {str(self.root)!r} runs={len(self.runs())}>"
