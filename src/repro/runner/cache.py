"""Content-addressed on-disk cache for experiment results.

Every campaign task is identified by a SHA-256 *fingerprint* of everything
that determines its outcome: the experiment id, the scale preset, the quick
flag, any config overrides, and the package version.  Unchanged experiments
are therefore cache hits across process invocations — a killed campaign
resumes where it stopped, and an immediately repeated run is served entirely
from disk.  Bumping :data:`repro._version.__version__` (or changing any
ingredient) invalidates the fingerprint naturally; no explicit eviction
logic is needed.

Payloads are JSON documents (the ``to_dict()`` form of the result objects),
stored under ``<cache_dir>/objects/<aa>/<fingerprint>.json`` with the key
material recorded alongside the payload for debuggability.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro._version import __version__
from repro.obs.telemetry import get_telemetry

__all__ = ["ResultCache", "fingerprint", "fingerprint_payload"]


def fingerprint(
    experiment_id: str,
    scale: str,
    quick: bool,
    overrides: Optional[Mapping[str, object]] = None,
    version: str = __version__,
) -> str:
    """SHA-256 fingerprint of one experiment task.

    The key material is serialized canonically (sorted keys, no whitespace
    variation) so logically equal tasks always hash identically.
    """
    material = {
        "experiment_id": str(experiment_id),
        "scale": str(scale),
        "quick": bool(quick),
        "overrides": {str(k): overrides[k] for k in sorted(overrides)} if overrides else {},
        "version": str(version),
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def fingerprint_payload(
    kind: str,
    material: Mapping[str, object],
    version: str = __version__,
) -> str:
    """SHA-256 fingerprint of an arbitrary JSON-serializable task identity.

    The generic analogue of :func:`fingerprint` for task kinds beyond the
    campaign experiments (matrix alone/pair runs, future fleets).  ``material``
    must already be plain JSON data (the ``to_dict()`` form of the task's
    inputs); it is serialized canonically, so logically equal tasks always
    hash identically — across processes and machines.
    """
    document = {
        "kind": str(kind),
        "material": material,
        "version": str(version),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A content-addressed store of JSON result payloads.

    Parameters
    ----------
    cache_dir:
        Root directory; created on first write.  Safe to share between
        concurrent processes — writes are atomic (tempfile + rename).
    """

    def __init__(self, cache_dir: str) -> None:
        self.root = Path(cache_dir)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #

    def _object_path(self, fp: str) -> Path:
        return self.root / "objects" / fp[:2] / f"{fp}.json"

    def get(self, fp: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``fp``, or ``None`` (counted as hit/miss)."""
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("cache.probe")
        path = self._object_path(fp)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            payload = entry["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            # Missing file, or a corrupt/truncated/foreign-format entry:
            # treat as a miss so the task simply re-runs and overwrites it.
            self.misses += 1
            if telemetry.enabled:
                telemetry.count("cache.miss")
            return None
        self.hits += 1
        if telemetry.enabled:
            telemetry.count("cache.hit")
        return payload

    def put(
        self,
        fp: str,
        payload: Mapping[str, object],
        key_material: Optional[Mapping[str, object]] = None,
    ) -> Path:
        """Store ``payload`` under fingerprint ``fp`` (atomic, last-write-wins)."""
        path = self._object_path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "fingerprint": fp,
            "stored_at": time.time(),
            "version": __version__,
            "key": dict(key_material) if key_material else {},
            "payload": dict(payload),
        }
        data = json.dumps(entry)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("cache.store")
            telemetry.count("cache.bytes_written", len(data.encode("utf-8")))
            telemetry.event("cache_store", fingerprint=fp, bytes=len(data))
        return path

    def contains(self, fp: str) -> bool:
        """True when a payload is stored for ``fp`` (does not touch counters)."""
        return self._object_path(fp).is_file()

    def entries(self) -> List[str]:
        """All stored fingerprints."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(p.stem for p in objects.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached object; returns how many were removed."""
        removed = 0
        for fp in self.entries():
            self._object_path(fp).unlink()
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters for this cache instance."""
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache {str(self.root)!r} hits={self.hits} misses={self.misses}>"
