"""Content-addressed on-disk cache for experiment results.

Every campaign task is identified by a SHA-256 *fingerprint* of everything
that determines its outcome: the experiment id, the scale preset, the quick
flag, any config overrides, and the package version.  Unchanged experiments
are therefore cache hits across process invocations — a killed campaign
resumes where it stopped, and an immediately repeated run is served entirely
from disk.  Bumping :data:`repro._version.__version__` (or changing any
ingredient) invalidates the fingerprint naturally; no explicit eviction
logic is needed.

Payloads are JSON documents (the ``to_dict()`` form of the result objects),
stored under ``<cache_dir>/objects/<aa>/<fingerprint>.json`` — sharded by the
2-hex fingerprint prefix so no single directory grows unbounded — with the
key material recorded alongside the payload for debuggability.

Campaign-scale access goes through three additions on top of the per-entry
``get``/``put``:

* :meth:`ResultCache.get_many` — one batched multi-probe for a whole task
  list, backed by an in-process LRU *hot tier* so repeated probes (warm
  reruns, post-compute re-reads) stop paying a stat+read per task.  The
  single-entry :meth:`ResultCache.get` stays disk-authoritative (corruption
  introduced behind the instance's back is still detected there).
* an append-only ``index.jsonl`` written beside ``objects/`` on every store:
  one line per entry with the fingerprint, the key material (task id, kind,
  params) and the payload's headline numeric metrics — the queryable seed of
  the result lake.
* crash hygiene: stale ``*.tmp`` files abandoned by a killed worker are
  swept on cache open (an age grace keeps live concurrent writers safe), and
  :meth:`ResultCache.migrate` converts a legacy flat layout to the sharded
  one idempotently.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional

from repro._version import __version__
from repro.obs.telemetry import get_telemetry

__all__ = ["ResultCache", "fingerprint", "fingerprint_payload"]


def fingerprint(
    experiment_id: str,
    scale: str,
    quick: bool,
    overrides: Optional[Mapping[str, object]] = None,
    version: str = __version__,
) -> str:
    """SHA-256 fingerprint of one experiment task.

    The key material is serialized canonically (sorted keys, no whitespace
    variation) so logically equal tasks always hash identically.
    """
    material = {
        "experiment_id": str(experiment_id),
        "scale": str(scale),
        "quick": bool(quick),
        "overrides": {str(k): overrides[k] for k in sorted(overrides)} if overrides else {},
        "version": str(version),
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def fingerprint_payload(
    kind: str,
    material: Mapping[str, object],
    version: str = __version__,
) -> str:
    """SHA-256 fingerprint of an arbitrary JSON-serializable task identity.

    The generic analogue of :func:`fingerprint` for task kinds beyond the
    campaign experiments (matrix alone/pair runs, future fleets).  ``material``
    must already be plain JSON data (the ``to_dict()`` form of the task's
    inputs); it is serialized canonically, so logically equal tasks always
    hash identically — across processes and machines.
    """
    document = {
        "kind": str(kind),
        "material": material,
        "version": str(version),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A content-addressed store of JSON result payloads.

    Parameters
    ----------
    cache_dir:
        Root directory; created on first write.  Safe to share between
        concurrent processes — writes are atomic (tempfile + rename).
    hot_capacity:
        Entries held in the in-process LRU hot tier serving
        :meth:`get_many` probes and re-probes of freshly stored payloads.
        ``0`` disables the tier.
    tmp_max_age_s:
        ``*.tmp`` files older than this are swept on open — debris of a
        crashed writer.  Younger ones are left alone: a concurrent worker
        may be mid-write.
    """

    def __init__(
        self,
        cache_dir: str,
        *,
        hot_capacity: int = 256,
        tmp_max_age_s: float = 3600.0,
    ) -> None:
        self.root = Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self.hot_capacity = int(hot_capacity)
        self._hot: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self.swept_tmp = self._sweep_stale_tmp(float(tmp_max_age_s))

    # ------------------------------------------------------------------ #

    def _object_path(self, fp: str) -> Path:
        return self.root / "objects" / fp[:2] / f"{fp}.json"

    def _sweep_stale_tmp(self, max_age_s: float) -> int:
        """Remove abandoned ``*.tmp`` files older than ``max_age_s``."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        cutoff = time.time() - max_age_s
        swept = 0
        for tmp in objects.glob("**/*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    swept += 1
            except OSError:  # pragma: no cover - raced with another sweeper
                continue
        return swept

    def _hot_insert(self, fp: str, payload: Dict[str, object]) -> None:
        if self.hot_capacity <= 0:
            return
        self._hot[fp] = payload
        self._hot.move_to_end(fp)
        while len(self._hot) > self.hot_capacity:
            self._hot.popitem(last=False)

    def get(self, fp: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``fp``, or ``None`` (counted as hit/miss)."""
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("cache.probe")
        path = self._object_path(fp)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            payload = entry["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            # Missing file, or a corrupt/truncated/foreign-format entry:
            # treat as a miss so the task simply re-runs and overwrites it.
            self.misses += 1
            if telemetry.enabled:
                telemetry.count("cache.miss")
            return None
        self.hits += 1
        if telemetry.enabled:
            telemetry.count("cache.hit")
        self._hot_insert(fp, payload)
        return payload

    def get_many(self, fps: Iterable[str]) -> Dict[str, Dict[str, object]]:
        """Batched multi-probe: ``{fp: payload}`` for every stored entry.

        Counts one probe (and hit or miss) per requested fingerprint, like
        the equivalent :meth:`get` loop, but serves repeats and recently
        stored/read entries from the in-process hot tier (``cache.hot_hit``
        counts those).  The hot tier trusts this instance's own reads and
        writes; disk corruption introduced behind its back is only detected
        by the disk-authoritative :meth:`get`.
        """
        telemetry = get_telemetry()
        found: Dict[str, Dict[str, object]] = {}
        for fp in fps:
            payload = self._hot.get(fp)
            if payload is not None:
                self._hot.move_to_end(fp)
                self.hits += 1
                if telemetry.enabled:
                    telemetry.count("cache.probe")
                    telemetry.count("cache.hit")
                    telemetry.count("cache.hot_hit")
                found[fp] = payload
                continue
            payload = self.get(fp)
            if payload is not None:
                found[fp] = payload
        return found

    def put(
        self,
        fp: str,
        payload: Mapping[str, object],
        key_material: Optional[Mapping[str, object]] = None,
    ) -> Path:
        """Store ``payload`` under fingerprint ``fp`` (atomic, last-write-wins)."""
        path = self._object_path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "fingerprint": fp,
            "stored_at": time.time(),
            "version": __version__,
            "key": dict(key_material) if key_material else {},
            "payload": dict(payload),
        }
        data = json.dumps(entry)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._hot_insert(fp, dict(payload))
        self._index_append(fp, entry["key"], entry["payload"])
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("cache.store")
            telemetry.count("cache.bytes_written", len(data.encode("utf-8")))
            telemetry.event("cache_store", fingerprint=fp, bytes=len(data))
        return path

    # ------------------------------------------------------------------ #
    # Index
    # ------------------------------------------------------------------ #

    @property
    def index_path(self) -> Path:
        """The append-only ``index.jsonl`` beside ``objects/``."""
        return self.root / "index.jsonl"

    def _index_append(self, fp: str, key: Mapping[str, object],
                      payload: Mapping[str, object]) -> None:
        """Append one index line: fingerprint, key material, headline metrics.

        A single ``O_APPEND`` write per store — atomic for lines of this
        size on every platform we target — keeps concurrent workers safe
        without locking.  Append-only by design: rewrites of a fingerprint
        append a fresh line and readers let the last occurrence win.
        """
        headline = {
            k: v for k, v in payload.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        line = json.dumps(
            {
                "fingerprint": fp,
                "stored_at": time.time(),
                "key": dict(key),
                "headline": headline,
            },
            sort_keys=True,
        )
        fd = os.open(
            str(self.index_path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, (line + "\n").encode("utf-8"))
        finally:
            os.close(fd)

    def index_entries(self) -> List[Dict[str, object]]:
        """Parsed index lines, oldest first (corrupt lines are skipped).

        Duplicated fingerprints (an entry stored more than once) keep every
        line; callers wanting current state deduplicate by fingerprint, last
        occurrence winning.
        """
        try:
            text = self.index_path.read_text(encoding="utf-8")
        except OSError:
            return []
        entries = []
        for line in text.splitlines():
            try:
                entries.append(json.loads(line))
            except ValueError:
                continue
        return entries

    # ------------------------------------------------------------------ #
    # Layout migration
    # ------------------------------------------------------------------ #

    def migrate(self) -> int:
        """Convert a legacy flat layout to the sharded one; returns moves.

        Entries sitting directly under ``objects/`` (or the cache root) move
        into their 2-hex shard directory with an atomic rename.  Idempotent:
        a second run finds nothing flat and moves zero files.
        """
        moved = 0
        for parent in (self.root / "objects", self.root):
            if not parent.is_dir():
                continue
            for path in parent.glob("*.json"):
                fp = path.stem
                if len(fp) != 64 or any(c not in "0123456789abcdef" for c in fp):
                    continue
                dest = self._object_path(fp)
                dest.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, dest)
                moved += 1
        return moved

    def contains(self, fp: str) -> bool:
        """True when a payload is stored for ``fp`` (does not touch counters)."""
        return self._object_path(fp).is_file()

    def entries(self) -> List[str]:
        """All stored fingerprints."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(p.stem for p in objects.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached object; returns how many were removed."""
        removed = 0
        for fp in self.entries():
            self._object_path(fp).unlink()
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters for this cache instance."""
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache {str(self.root)!r} hits={self.hits} misses={self.misses}>"
