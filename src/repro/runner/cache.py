"""Content-addressed on-disk cache for experiment results.

Every campaign task is identified by a SHA-256 *fingerprint* of everything
that determines its outcome: the experiment id, the scale preset, the quick
flag, any config overrides, and the package version.  Unchanged experiments
are therefore cache hits across process invocations — a killed campaign
resumes where it stopped, and an immediately repeated run is served entirely
from disk.  Bumping :data:`repro._version.__version__` (or changing any
ingredient) invalidates the fingerprint naturally; no explicit eviction
logic is needed.

Payloads are JSON documents (the ``to_dict()`` form of the result objects),
stored under ``<cache_dir>/objects/<aa>/<fingerprint>.json`` — sharded by the
2-hex fingerprint prefix so no single directory grows unbounded — with the
key material recorded alongside the payload for debuggability.

Campaign-scale access goes through three additions on top of the per-entry
``get``/``put``:

* :meth:`ResultCache.get_many` — one batched multi-probe for a whole task
  list, backed by an in-process LRU *hot tier* so repeated probes (warm
  reruns, post-compute re-reads) stop paying a stat+read per task.  The
  single-entry :meth:`ResultCache.get` stays disk-authoritative (corruption
  introduced behind the instance's back is still detected there).
* an append-only ``index.jsonl`` written beside ``objects/`` on every store:
  one line per entry with the fingerprint, the key material (task id, kind,
  params) and the payload's headline numeric metrics — the queryable seed of
  the result lake.
* crash hygiene: stale ``*.tmp`` files abandoned by a killed worker are
  swept on cache open (an age grace keeps live concurrent writers safe), and
  :meth:`ResultCache.migrate` converts a legacy flat layout to the sharded
  one idempotently.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional

from repro._version import __version__
from repro.obs.telemetry import get_telemetry

__all__ = ["ResultCache", "fingerprint", "fingerprint_payload", "headline_metrics"]


def headline_metrics(payload: Mapping[str, object]) -> Dict[str, float]:
    """The queryable numeric facts of one payload, flattened for the index.

    Numeric scalars keep their name; shallow lists of numbers flatten to
    ``name.i`` entries (a pair run's ``phase_times`` become
    ``phase_times.0``/``phase_times.1``).  Bools, strings and nested
    structures are dropped — the index carries metrics, not payloads.  The
    result lake (:mod:`repro.lake`) derives its per-entry metrics from this
    one function, whether a line came from a live ``put`` or from a rescan
    of ``objects/``, so the two routes cannot disagree.
    """
    headline: Dict[str, float] = {}
    for name, value in payload.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            headline[str(name)] = value
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                if isinstance(item, (int, float)) and not isinstance(item, bool):
                    headline[f"{name}.{i}"] = item
    return headline


def fingerprint(
    experiment_id: str,
    scale: str,
    quick: bool,
    overrides: Optional[Mapping[str, object]] = None,
    version: str = __version__,
) -> str:
    """SHA-256 fingerprint of one experiment task.

    The key material is serialized canonically (sorted keys, no whitespace
    variation) so logically equal tasks always hash identically.
    """
    material = {
        "experiment_id": str(experiment_id),
        "scale": str(scale),
        "quick": bool(quick),
        "overrides": {str(k): overrides[k] for k in sorted(overrides)} if overrides else {},
        "version": str(version),
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def fingerprint_payload(
    kind: str,
    material: Mapping[str, object],
    version: str = __version__,
) -> str:
    """SHA-256 fingerprint of an arbitrary JSON-serializable task identity.

    The generic analogue of :func:`fingerprint` for task kinds beyond the
    campaign experiments (matrix alone/pair runs, future fleets).  ``material``
    must already be plain JSON data (the ``to_dict()`` form of the task's
    inputs); it is serialized canonically, so logically equal tasks always
    hash identically — across processes and machines.
    """
    document = {
        "kind": str(kind),
        "material": material,
        "version": str(version),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A content-addressed store of JSON result payloads.

    Parameters
    ----------
    cache_dir:
        Root directory; created on first write.  Safe to share between
        concurrent processes — writes are atomic (tempfile + rename).
    hot_capacity:
        Entries held in the in-process LRU hot tier serving
        :meth:`get_many` probes and re-probes of freshly stored payloads.
        ``0`` disables the tier.
    tmp_max_age_s:
        ``*.tmp`` files older than this are swept on open — debris of a
        crashed writer.  Younger ones are left alone: a concurrent worker
        may be mid-write.
    """

    def __init__(
        self,
        cache_dir: str,
        *,
        hot_capacity: int = 256,
        tmp_max_age_s: float = 3600.0,
    ) -> None:
        self.root = Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self.hot_capacity = int(hot_capacity)
        self._hot: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        #: Corrupt lines skipped by the most recent :meth:`index_entries` read.
        self.index_corrupt_lines = 0
        self.swept_tmp = self._sweep_stale_tmp(float(tmp_max_age_s))

    # ------------------------------------------------------------------ #

    def _object_path(self, fp: str) -> Path:
        return self.root / "objects" / fp[:2] / f"{fp}.json"

    def _sweep_stale_tmp(self, max_age_s: float) -> int:
        """Remove abandoned ``*.tmp`` files older than ``max_age_s``.

        Delegates to the shared :func:`repro.runner.store.sweep_stale_tmp`
        crash-hygiene primitive, over the whole cache root so abandoned
        index-compaction temps are swept along with object temps.
        """
        from repro.runner.store import sweep_stale_tmp

        return sweep_stale_tmp(self.root, max_age_s)

    def _hot_insert(self, fp: str, payload: Dict[str, object]) -> None:
        if self.hot_capacity <= 0:
            return
        self._hot[fp] = payload
        self._hot.move_to_end(fp)
        while len(self._hot) > self.hot_capacity:
            self._hot.popitem(last=False)

    def get(self, fp: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``fp``, or ``None`` (counted as hit/miss)."""
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("cache.probe")
        path = self._object_path(fp)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            payload = entry["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            # Missing file, or a corrupt/truncated/foreign-format entry:
            # treat as a miss so the task simply re-runs and overwrites it.
            self.misses += 1
            if telemetry.enabled:
                telemetry.count("cache.miss")
            return None
        self.hits += 1
        if telemetry.enabled:
            telemetry.count("cache.hit")
        self._hot_insert(fp, payload)
        return payload

    def get_many(self, fps: Iterable[str]) -> Dict[str, Dict[str, object]]:
        """Batched multi-probe: ``{fp: payload}`` for every stored entry.

        Counts one probe (and hit or miss) per requested fingerprint, like
        the equivalent :meth:`get` loop, but serves repeats and recently
        stored/read entries from the in-process hot tier (``cache.hot_hit``
        counts those).  The hot tier trusts this instance's own reads and
        writes; disk corruption introduced behind its back is only detected
        by the disk-authoritative :meth:`get`.
        """
        telemetry = get_telemetry()
        found: Dict[str, Dict[str, object]] = {}
        for fp in fps:
            payload = self._hot.get(fp)
            if payload is not None:
                self._hot.move_to_end(fp)
                self.hits += 1
                if telemetry.enabled:
                    telemetry.count("cache.probe")
                    telemetry.count("cache.hit")
                    telemetry.count("cache.hot_hit")
                found[fp] = payload
                continue
            payload = self.get(fp)
            if payload is not None:
                found[fp] = payload
        return found

    def put(
        self,
        fp: str,
        payload: Mapping[str, object],
        key_material: Optional[Mapping[str, object]] = None,
    ) -> Path:
        """Store ``payload`` under fingerprint ``fp`` (atomic, last-write-wins)."""
        path = self._object_path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "fingerprint": fp,
            "stored_at": time.time(),
            "version": __version__,
            "key": dict(key_material) if key_material else {},
            "payload": dict(payload),
        }
        data = json.dumps(entry)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._hot_insert(fp, dict(payload))
        # Stamp the index line with the envelope's own stored_at so an index
        # read and a rescan of objects/ describe the same instant.
        self._index_append(
            fp, entry["key"], entry["payload"], stored_at=entry["stored_at"]
        )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("cache.store")
            telemetry.count("cache.bytes_written", len(data.encode("utf-8")))
            telemetry.event("cache_store", fingerprint=fp, bytes=len(data))
        return path

    # ------------------------------------------------------------------ #
    # Index
    # ------------------------------------------------------------------ #

    @property
    def index_path(self) -> Path:
        """The append-only ``index.jsonl`` beside ``objects/``."""
        return self.root / "index.jsonl"

    def _index_append(self, fp: str, key: Mapping[str, object],
                      payload: Mapping[str, object],
                      stored_at: Optional[float] = None) -> None:
        """Append one index line: fingerprint, key material, headline metrics.

        A single ``O_APPEND`` write per store — atomic for lines of this
        size on every platform we target — keeps concurrent workers safe
        without locking.  Append-only by design: rewrites of a fingerprint
        append a fresh line and readers let the last occurrence win.
        ``stored_at`` overrides the line's timestamp (backfills from
        :meth:`migrate` keep the object's original store time).
        """
        line = json.dumps(
            {
                "fingerprint": fp,
                "stored_at": time.time() if stored_at is None else stored_at,
                "key": dict(key),
                "headline": headline_metrics(payload),
            },
            sort_keys=True,
        )
        fd = os.open(
            str(self.index_path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, (line + "\n").encode("utf-8"))
        finally:
            os.close(fd)

    def index_entries(self) -> List[Dict[str, object]]:
        """Parsed index lines, oldest first (corrupt lines are skipped).

        Duplicated fingerprints (an entry stored more than once) keep every
        line; callers wanting current state deduplicate by fingerprint, last
        occurrence winning.  Torn, truncated, or binary-garbage lines — the
        debris of a writer killed mid-append or a corrupted disk — are
        skipped and counted in :attr:`index_corrupt_lines` (refreshed on
        every read); ``compact_index`` rewrites the file from ``objects/``
        and heals them.
        """
        try:
            raw = self.index_path.read_bytes()
        except OSError:
            self.index_corrupt_lines = 0
            return []
        entries = []
        corrupt = 0
        for line in raw.decode("utf-8", errors="replace").splitlines():
            if not line.strip():
                continue
            try:
                parsed = json.loads(line)
            except ValueError:
                corrupt += 1
                continue
            if not isinstance(parsed, dict):
                corrupt += 1
                continue
            entries.append(parsed)
        self.index_corrupt_lines = corrupt
        return entries

    # ------------------------------------------------------------------ #
    # Layout migration
    # ------------------------------------------------------------------ #

    def migrate(self) -> int:
        """Convert a legacy flat layout to the sharded one; returns moves.

        Entries sitting directly under ``objects/`` (or the cache root) move
        into their 2-hex shard directory with an atomic rename, and every
        moved object is backfilled into ``index.jsonl`` (legacy flat layouts
        predate the index; without the backfill a migrated entry would be
        invisible to every index reader).  Idempotent: a second run finds
        nothing flat, moves zero files and appends zero lines.
        """
        moved = 0
        for parent in (self.root / "objects", self.root):
            if not parent.is_dir():
                continue
            for path in parent.glob("*.json"):
                fp = path.stem
                if len(fp) != 64 or any(c not in "0123456789abcdef" for c in fp):
                    continue
                dest = self._object_path(fp)
                dest.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, dest)
                moved += 1
                entry = self._read_entry(fp)
                if entry is not None:
                    self._index_append(
                        fp,
                        entry.get("key", {}),
                        entry.get("payload", {}),
                        stored_at=entry.get("stored_at"),
                    )
        return moved

    def _read_entry(self, fp: str) -> Optional[Dict[str, object]]:
        """The full stored envelope for ``fp`` (no counters), or ``None``."""
        try:
            with open(self._object_path(fp), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or "payload" not in entry:
            return None
        return entry

    def compact_index(self) -> Dict[str, int]:
        """Rewrite ``index.jsonl`` to exactly one live line per stored object.

        The append-only index accumulates duplicate lines (rewrites of a
        fingerprint) and can carry ghost lines for objects that no longer
        exist (deleted behind the instance's back).  Compaction rebuilds the
        file from ``objects/`` — the single source of truth — one line per
        object, ordered by (stored_at, fingerprint), written atomically.
        Returns ``{"entries", "dropped_duplicates", "dropped_ghosts",
        "backfilled", "unreadable"}``.
        """
        old_lines = self.index_entries()
        indexed = {
            str(line.get("fingerprint"))
            for line in old_lines
            if isinstance(line, dict)
        }
        live = self.entries()
        rebuilt: List[Dict[str, object]] = []
        unreadable = 0
        for fp in live:
            entry = self._read_entry(fp)
            if entry is None:
                unreadable += 1
                continue
            rebuilt.append({
                "fingerprint": fp,
                "stored_at": entry.get("stored_at", 0.0),
                "key": dict(entry.get("key", {}) or {}),
                "headline": headline_metrics(entry.get("payload", {}) or {}),
            })
        rebuilt.sort(key=lambda e: (e["stored_at"], e["fingerprint"]))
        data = "".join(json.dumps(e, sort_keys=True) + "\n" for e in rebuilt)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
            os.replace(tmp, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        stats = {
            "entries": len(rebuilt),
            "dropped_duplicates": len(old_lines) - len(indexed),
            "dropped_ghosts": len(indexed - set(live)),
            "backfilled": len(set(live) - indexed),
            "unreadable": unreadable,
        }
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("lake.compact.entries", stats["entries"])
            telemetry.count("lake.compact.dropped",
                            stats["dropped_duplicates"] + stats["dropped_ghosts"])
        return stats

    def contains(self, fp: str) -> bool:
        """True when a payload is stored for ``fp`` (does not touch counters)."""
        return self._object_path(fp).is_file()

    def entries(self) -> List[str]:
        """All stored fingerprints."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(p.stem for p in objects.glob("*/*.json"))

    def shards(self) -> List[str]:
        """The 2-hex shard directories currently under ``objects/``."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(
            p.name for p in objects.iterdir()
            if p.is_dir() and len(p.name) == 2
            and all(c in "0123456789abcdef" for c in p.name)
        )

    def _remove_empty_shards(self) -> int:
        """Drop shard directories that hold no objects; returns removals."""
        removed = 0
        objects = self.root / "objects"
        for shard in self.shards():
            path = objects / shard
            try:
                next(path.iterdir())
            except StopIteration:
                try:
                    path.rmdir()
                    removed += 1
                except OSError:  # pragma: no cover - raced with a writer
                    continue
            except OSError:  # pragma: no cover - raced with a sweeper
                continue
        return removed

    def clear(self) -> int:
        """Delete every cached object; returns how many were removed.

        Clearing is *coherent*: the in-process hot tier is emptied (so
        :meth:`get_many` cannot keep serving deleted payloads), ``index.jsonl``
        is truncated (so index readers see no ghost entries), and emptied
        2-hex shard directories are removed (so :meth:`entries`/:meth:`stats`
        describe an actually empty store).
        """
        removed = 0
        for fp in self.entries():
            self._object_path(fp).unlink()
            removed += 1
        self._hot.clear()
        try:
            self.index_path.unlink()
        except OSError:
            pass
        self._remove_empty_shards()
        return removed

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus the on-disk shape of the store.

        ``objects``/``shards`` are live disk facts (consistent with
        :meth:`entries` and :meth:`shards` after any clear/migrate);
        ``hits``/``misses`` are counters of this instance.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "objects": len(self.entries()),
            "shards": len(self.shards()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache {str(self.root)!r} hits={self.hits} misses={self.misses}>"
