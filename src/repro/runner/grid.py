"""Declarative parameter grids over the paper's experimental knobs.

A :class:`ParameterGrid` is a cartesian product over named axes — device,
sync mode, access pattern, network, stripe size, request size — turning the
one-off ``repro-io sweep`` into batch scenario exploration:

.. code-block:: python

    from repro.runner.grid import ParameterGrid, run_grid

    grid = ParameterGrid({
        "device": ["hdd", "ssd"],
        "sync": ["sync-on", "sync-off"],
        "pattern": ["contiguous", "strided"],
    })
    result = run_grid(grid, scale="tiny", jobs=4, store_dir="runs/")
    print(result.to_rows())

Each grid point runs a full Δ-graph sweep (in parallel via
:mod:`repro.runner.executor`), gets a deterministic per-task seed, and — when
a store directory is given — is persisted as a run directory with a
verifiable ``manifest.json`` (:mod:`repro.runner.store`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro import units
from repro.core.delta import DeltaSweep, jsonify
from repro.errors import ExperimentError
from repro.runner.executor import ParallelExecutor, TaskSpec, derive_task_seed
from repro.runner.store import RunStore

__all__ = ["GRID_AXES", "ParameterGrid", "GridPointResult", "GridResult", "run_grid"]


def _scenario_kwargs(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Translate grid-axis values into ``make_scenario`` keyword arguments."""
    kwargs: Dict[str, Any] = {}
    for axis, value in params.items():
        target, convert = GRID_AXES[axis]
        kwargs[target] = convert(value)
    return kwargs


#: Axis name -> (make_scenario keyword, converter).  Sizes are given in KiB
#: on the grid (matching the CLI flags) and converted to bytes here.
GRID_AXES: Dict[str, Tuple[str, Callable[[Any], Any]]] = {
    "device": ("device", str),
    "sync": ("sync_mode", str),
    "pattern": ("pattern", str),
    "network": ("network", str),
    "stripe_kib": ("stripe_size", lambda v: float(v) * units.KiB),
    "request_kib": ("request_size", lambda v: float(v) * units.KiB),
}


@dataclass(frozen=True)
class ParameterGrid:
    """A cartesian product over named experiment axes.

    ``axes`` maps axis names (a subset of :data:`GRID_AXES`) to the values to
    explore.  Point order is deterministic: axes iterate in insertion order,
    values in the order given.
    """

    axes: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.axes:
            raise ExperimentError("a parameter grid needs at least one axis")
        for axis, values in self.axes.items():
            if axis not in GRID_AXES:
                raise ExperimentError(
                    f"unknown grid axis {axis!r}; available: {sorted(GRID_AXES)}"
                )
            if not values:
                raise ExperimentError(f"grid axis {axis!r} has no values")

    @classmethod
    def from_specs(cls, specs: Sequence[str]) -> "ParameterGrid":
        """Parse CLI-style axis specs: ``["device=hdd,ssd", "sync=sync-on"]``."""
        axes: Dict[str, List[str]] = {}
        for spec in specs:
            if "=" not in spec:
                raise ExperimentError(
                    f"bad axis spec {spec!r}; expected NAME=VALUE[,VALUE...]"
                )
            name, _, raw = spec.partition("=")
            values = [v.strip() for v in raw.split(",") if v.strip()]
            if not values:
                raise ExperimentError(f"axis spec {spec!r} lists no values")
            axes[name.strip()] = values
        return cls(axes)

    def __len__(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def points(self) -> List[Dict[str, Any]]:
        """Every grid point as an ``{axis: value}`` mapping (stable order)."""
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[n] for n in names))
        ]

    @staticmethod
    def point_id(params: Mapping[str, Any]) -> str:
        """Stable, filesystem-safe identifier of one grid point."""
        parts = []
        for axis in sorted(params):
            value = params[axis]
            text = f"{value:g}" if isinstance(value, float) else str(value)
            parts.append(f"{axis}-{text}" if axis.endswith("_kib") else text)
        return "_".join(parts).replace("/", "-").replace(" ", "-")


@dataclass
class GridPointResult:
    """Outcome of one grid point: its sweep, summary, and (optional) run dir."""

    point_id: str
    params: Dict[str, Any]
    seed: int
    sweep: DeltaSweep
    summary: Dict[str, float]
    run_dir: Optional[str] = None


@dataclass
class GridResult:
    """Outcome of one full grid execution."""

    scale: str
    points: List[GridPointResult] = field(default_factory=list)
    store_root: Optional[str] = None

    def __len__(self) -> int:
        return len(self.points)

    def point(self, point_id: str) -> GridPointResult:
        """The result of one grid point."""
        for pt in self.points:
            if pt.point_id == point_id:
                return pt
        raise ExperimentError(f"grid has no point {point_id!r}")

    def to_rows(self) -> List[Dict[str, Any]]:
        """One flat summary row per grid point (for table/CSV export)."""
        rows = []
        for pt in self.points:
            row: Dict[str, Any] = dict(pt.params)
            row["peak_IF"] = round(pt.summary["peak_interference_factor"], 2)
            row["asymmetry"] = round(pt.summary["asymmetry_index"], 3)
            row["flatness"] = round(pt.summary["flatness_index"], 2)
            row["collapses"] = int(pt.summary["total_window_collapses"])
            if pt.run_dir:
                row["run_dir"] = pt.run_dir
            rows.append(row)
        return rows


def run_grid(
    grid: ParameterGrid,
    scale: str = "reduced",
    *,
    n_points: int = 5,
    jobs: int = 1,
    master_seed: int = 0,
    store_dir: Optional[str] = None,
    progress: Optional[Callable[[str, GridPointResult], None]] = None,
) -> GridResult:
    """Execute every grid point (parallel across points) and persist runs.

    Parameters
    ----------
    grid:
        The parameter grid to explore.
    scale:
        Scale preset for every point (``"tiny"``, ``"reduced"``, ``"paper"``).
    n_points:
        Δ-sweep points per grid point.
    jobs:
        Worker processes for the executor.
    master_seed:
        Seed the per-task seeds are derived from.
    store_dir:
        When given, each point is persisted as a run directory (manifest +
        sweep/summary artifacts) under this root.
    progress:
        Optional callback ``progress(point_id, result)`` per completed point.
    """
    from repro.analysis.tables import rows_to_csv  # local: avoids import cycle

    point_params = grid.points()
    params_by_id: Dict[str, Dict[str, Any]] = {}
    tasks = []
    for params in point_params:
        point_id = ParameterGrid.point_id(params)
        params_by_id[point_id] = params
        tasks.append(
            TaskSpec(
                task_id=point_id,
                kind="grid-point",
                payload={
                    "scale": scale,
                    "params": _scenario_kwargs(params),
                    "n_points": n_points,
                },
                seed=derive_task_seed(master_seed, point_id),
            )
        )

    store = RunStore(store_dir) if store_dir else None
    result = GridResult(scale=scale, store_root=str(store.root) if store else None)
    by_id: Dict[str, GridPointResult] = {}

    def on_done(task: TaskSpec, payload: Dict[str, Any]) -> None:
        params = params_by_id[task.task_id]
        sweep = DeltaSweep.from_dict(payload["sweep"])
        point = GridPointResult(
            point_id=task.task_id,
            params=dict(params),
            seed=int(task.seed),
            sweep=sweep,
            summary={k: float(v) for k, v in payload["summary"].items()},
        )
        if store is not None:
            import json

            run_path = store.write_run(
                task.task_id,
                seed=point.seed,
                config=jsonify(
                    {"scale": scale, "n_points": n_points, "params": dict(params)}
                ),
                artifacts={
                    "sweep.json": json.dumps(payload["sweep"], indent=2, sort_keys=True),
                    "summary.json": json.dumps(
                        payload["summary"], indent=2, sort_keys=True
                    ),
                    "sweep.csv": rows_to_csv(sweep.rows()),
                },
            )
            point.run_dir = str(run_path)
        by_id[task.task_id] = point
        if progress is not None:
            progress(task.task_id, point)

    ParallelExecutor(jobs=jobs).map(tasks, progress=on_done)
    result.points = [by_id[t.task_id] for t in tasks]
    return result
