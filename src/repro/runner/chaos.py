"""Deterministic fault injection for the campaign fabric.

A :class:`FaultPlan` names the faults to inject — worker crashes, raised
exceptions, stalls past the task deadline, and merely-slow tasks — and *where*
to inject them: each :class:`FaultSpec` matches task ids by substring, fires
on a bounded number of attempts (so retries can observe recovery), and can be
made probabilistic with a deterministic per-``(seed, task, attempt)`` coin so
chaos runs are reproducible bit-for-bit.

Activation crosses process boundaries through the ``REPRO_CHAOS`` environment
variable (the plan's JSON form), because pool workers are fresh processes that
never see the parent's Python state.  In-process code (tests, the serial
executor path) can instead install a plan directly with :func:`fault_plan`.

The harness exists to *prove the recovery paths run*: the supervised executor
(:mod:`repro.runner.executor`) must retry crashed tasks, time out stalled
ones, rebuild broken pools and quarantine tasks that exhaust their retries —
and the chaos tests in ``tests/test_chaos.py`` plus the CI ``chaos-smoke``
job assert exactly that, with byte-identical results after recovery.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosError",
    "FaultSpec",
    "FaultPlan",
    "fault_plan",
    "get_fault_plan",
    "set_fault_plan",
]

CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Exit code of an injected worker crash — distinctive in pool post-mortems.
CRASH_EXIT_CODE = 13

_MODES = ("exception", "crash", "stall", "slow")


class ChaosError(ReproError, RuntimeError):
    """An injected failure (never raised outside chaos testing)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    Parameters
    ----------
    match:
        Substring matched against the task id (``"pair:checkpoint"`` matches
        every pair task involving the checkpoint archetype as first member;
        ``""`` matches everything).
    mode:
        ``"exception"`` raises :class:`ChaosError`; ``"crash"`` kills the
        worker process with ``os._exit`` (demoted to an exception when the
        injection site is the parent process — chaos must never kill the
        campaign supervisor itself); ``"stall"`` sleeps ``delay_s`` seconds
        (pick it larger than the task timeout to exercise the deadline path);
        ``"slow"`` sleeps ``delay_s`` and then lets the task proceed.
    times:
        Inject only while ``attempt < times`` (attempts are 0-based), so a
        ``times=1`` fault fails the first attempt and lets the retry succeed.
        Use a large value for a poisoned task that must exhaust its retries.
    delay_s:
        Sleep duration for ``stall``/``slow``.
    probability:
        Chance of injecting on a matching attempt.  The coin is a
        deterministic hash of ``(plan.seed, task_id, attempt)`` — the same
        plan over the same task list always injects at the same places.
    """

    match: str
    mode: str = "exception"
    times: int = 1
    delay_s: float = 30.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ReproError(
                f"unknown fault mode {self.mode!r}; known: {_MODES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "match": self.match,
            "mode": self.mode,
            "times": int(self.times),
            "delay_s": float(self.delay_s),
            "probability": float(self.probability),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        return cls(
            match=str(data["match"]),
            mode=str(data.get("mode", "exception")),
            times=int(data.get("times", 1)),
            delay_s=float(data.get("delay_s", 30.0)),
            probability=float(data.get("probability", 1.0)),
        )


def _coin(seed: int, task_id: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one injection decision."""
    material = f"{seed}|{task_id}|{attempt}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of injection rules, JSON-round-trippable for env transport."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def of(cls, *faults: FaultSpec, seed: int = 0) -> "FaultPlan":
        return cls(faults=tuple(faults), seed=int(seed))

    def spec_for(self, task_id: str, attempt: int) -> Optional[FaultSpec]:
        """The first rule that fires for this ``(task_id, attempt)``, if any."""
        for spec in self.faults:
            if spec.match not in task_id:
                continue
            if attempt >= spec.times:
                continue
            if spec.probability < 1.0 and (
                _coin(self.seed, task_id, attempt) >= spec.probability
            ):
                continue
            return spec
        return None

    def maybe_inject(
        self, task_id: str, attempt: int = 0, *, in_worker: bool = False
    ) -> None:
        """Inject the matching fault, if any, at the current execution site.

        ``in_worker`` marks a disposable pool worker process, where a
        ``crash`` fault may genuinely ``os._exit``.  At a parent-process
        site (the serial executor path, the in-process batched kernel) a
        crash is demoted to :class:`ChaosError` — killing the supervisor
        would fail the campaign rather than exercise its recovery.
        """
        spec = self.spec_for(task_id, attempt)
        if spec is None:
            return
        if spec.mode == "crash":
            if in_worker:
                os._exit(CRASH_EXIT_CODE)
            raise ChaosError(
                f"chaos: injected crash for {task_id!r} (attempt {attempt}; "
                "demoted to an exception outside a worker process)"
            )
        if spec.mode in ("stall", "slow"):
            time.sleep(spec.delay_s)
            if spec.mode == "slow":
                return
            raise ChaosError(
                f"chaos: injected stall for {task_id!r} outlived its sleep "
                f"({spec.delay_s:g}s) without hitting a deadline"
            )
        raise ChaosError(
            f"chaos: injected exception for {task_id!r} (attempt {attempt})"
        )

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": int(self.seed),
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            faults=tuple(
                FaultSpec.from_dict(entry) for entry in data.get("faults", [])
            ),
            seed=int(data.get("seed", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ReproError(f"unparseable fault plan JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ReproError("a fault plan must be a JSON object")
        return cls.from_dict(data)


# --------------------------------------------------------------------------- #
# Activation
# --------------------------------------------------------------------------- #

#: In-process override; wins over the environment when set.
_ACTIVE: Optional[FaultPlan] = None

#: Parse-once cache for the environment route: (raw value, parsed plan).
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def set_fault_plan(plan: Optional[FaultPlan], *, env: bool = False) -> None:
    """Install (or with ``None`` remove) the active fault plan.

    With ``env=True`` the plan is also exported through ``REPRO_CHAOS`` so
    pool worker processes spawned afterwards inherit it; removal clears the
    variable.
    """
    global _ACTIVE
    _ACTIVE = plan
    if env:
        if plan is None:
            os.environ.pop(CHAOS_ENV_VAR, None)
        else:
            os.environ[CHAOS_ENV_VAR] = plan.to_json()


def get_fault_plan() -> Optional[FaultPlan]:
    """The active fault plan: the in-process override, else ``REPRO_CHAOS``.

    The environment value may be inline JSON or a path to a JSON file (CI
    writes the plan to a file and points the variable at it).  A missing or
    empty variable means chaos is off — the overwhelmingly common case costs
    one dict lookup.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(CHAOS_ENV_VAR)
    if not raw:
        return None
    global _ENV_CACHE
    if _ENV_CACHE[0] == raw:
        return _ENV_CACHE[1]
    text = raw
    if not raw.lstrip().startswith("{"):
        try:
            with open(raw, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ReproError(
                f"{CHAOS_ENV_VAR} names an unreadable fault-plan file "
                f"{raw!r}: {exc}"
            ) from None
    plan = FaultPlan.from_json(text)
    _ENV_CACHE = (raw, plan)
    return plan


@contextmanager
def fault_plan(plan: FaultPlan, *, env: bool = False) -> Iterator[FaultPlan]:
    """Scope a fault plan to a ``with`` block (always restores the prior state)."""
    previous_active = _ACTIVE
    previous_env = os.environ.get(CHAOS_ENV_VAR)
    set_fault_plan(plan, env=env)
    try:
        yield plan
    finally:
        set_fault_plan(previous_active, env=False)
        if env:
            if previous_env is None:
                os.environ.pop(CHAOS_ENV_VAR, None)
            else:
                os.environ[CHAOS_ENV_VAR] = previous_env
