"""Append-only per-run progress journal: crash-safe campaign bookkeeping.

Completed task *payloads* already live in the content-addressed result cache;
what a killed campaign loses is the *narrative* — which tasks finished, which
were retried, which were quarantined.  The journal records exactly that, one
JSON line per state change, so ``--resume`` can report how much of a campaign
survives and post-mortems can reconstruct what happened.

Crash-safety contract:

* every line is written with a single ``O_APPEND`` ``os.write`` — atomic for
  lines of this size on the platforms we target, so concurrent writers and
  mid-write kills cannot interleave or tear a line *in between* lines;
* a torn **final** line (the one a kill interrupted) is tolerated on read:
  :meth:`ProgressJournal.load` skips unparsable lines and counts them;
* the journal is append-only — a task retried and then completed appears
  twice, and the last line for a task id wins.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["ProgressJournal", "JOURNAL_NAME"]

JOURNAL_NAME = "progress.jsonl"


class ProgressJournal:
    """One campaign's ``progress.jsonl``; see the module docstring for the contract."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: Unparsable lines skipped by the last :meth:`load` (torn final line).
        self.corrupt_lines = 0

    def exists(self) -> bool:
        return self.path.is_file()

    def record(
        self,
        task_id: str,
        status: str,
        *,
        fingerprint: Optional[str] = None,
        attempt: int = 0,
        origin: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        """Append one state change (``status``: completed/failed/retried)."""
        line: Dict[str, object] = {
            "task_id": str(task_id),
            "status": str(status),
            "attempt": int(attempt),
            "t": time.time(),
        }
        if fingerprint is not None:
            line["fingerprint"] = fingerprint
        if origin is not None:
            line["origin"] = origin
        if error is not None:
            line["error"] = error
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = (json.dumps(line, sort_keys=True) + "\n").encode("utf-8")
        fd = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def load(self) -> Dict[str, Dict[str, object]]:
        """Last recorded state per task id (empty when the journal is absent).

        Corrupt or torn lines — the debris of a killed writer — are skipped
        and counted in :attr:`corrupt_lines`, never raised: a journal must
        stay readable after any crash.
        """
        self.corrupt_lines = 0
        try:
            raw = self.path.read_bytes()
        except OSError:
            return {}
        state: Dict[str, Dict[str, object]] = {}
        for line in raw.decode("utf-8", errors="replace").splitlines():
            if not line.strip():
                continue
            try:
                parsed = json.loads(line)
            except ValueError:
                self.corrupt_lines += 1
                continue
            if not isinstance(parsed, dict) or "task_id" not in parsed:
                self.corrupt_lines += 1
                continue
            state[str(parsed["task_id"])] = parsed
        return state

    def completed(self) -> Dict[str, Optional[str]]:
        """``{task_id: fingerprint}`` for tasks whose last state is completed."""
        return {
            task_id: record.get("fingerprint")  # type: ignore[misc]
            for task_id, record in self.load().items()
            if record.get("status") == "completed"
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProgressJournal {str(self.path)!r}>"
