"""Figure 3 — strided pattern, backend devices, sync ON/OFF.

Same two applications as Figure 2 but each process issues 256 strided writes
of 256 KiB.  The paper finds that with synchronization enabled the HDD is
dramatically slower and suffers a larger interference factor than SSD/RAM
(random accesses amplify both), while with synchronization disabled the
devices behave alike.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config.filesystem import SyncMode
from repro.core.experiment import TwoApplicationExperiment
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def run(
    scale: str = "reduced",
    quick: bool = False,
    devices: Optional[Sequence[str]] = None,
    n_points: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce the Δ-graphs of Figure 3."""
    devices = list(devices) if devices is not None else ["hdd", "ssd", "ram"]
    points = n_points if n_points is not None else (3 if quick else 5)

    result = ExperimentResult(
        experiment_id="figure3",
        title="Strided pattern: influence of the backend device",
        paper_reference="Figure 3 (a)-(f)",
    )
    rows = []
    for sync in (SyncMode.SYNC_ON, SyncMode.SYNC_OFF):
        for device in devices:
            exp = TwoApplicationExperiment(
                scale, device=device, sync_mode=sync, pattern="strided"
            )
            sweep = exp.run_sweep(n_points=points, label=f"strided/{device}/{sync.value}")
            result.add_sweep(f"{device}.{sync.value}", sweep)
            rows.append(
                {
                    "device": device,
                    "sync": sync.label,
                    "alone_s": round(exp.alone_time(), 2),
                    "peak_IF": round(sweep.peak_interference_factor(), 2),
                    "asymmetry": round(sweep.asymmetry_index(), 3),
                }
            )
    result.add_table("figure3_summary", rows)
    result.add_note(
        "Expected shape: with sync ON the HDD write time is an order of "
        "magnitude larger than SSD/RAM and its interference factor is higher; "
        "with sync OFF all devices behave alike."
    )
    return result
