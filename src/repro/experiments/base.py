"""Common result container for the table/figure reproductions.

Every experiment module exposes a ``run(scale=..., quick=...)`` function that
returns an :class:`ExperimentResult`: a set of named tables (lists of flat
row dictionaries), named Δ-graph sweeps, headline metrics, and a plain-text
report.  Benchmarks print the report; tests assert on the metrics; the CLI
can export the tables as CSV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.analysis.tables import rows_to_csv
from repro.core.delta import DeltaSweep, jsonify
from repro.core.reporting import format_delta_sweep, format_summary, format_table
from repro.errors import AnalysisError

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Everything produced by one table/figure reproduction."""

    experiment_id: str
    title: str
    paper_reference: str
    tables: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)
    sweeps: Dict[str, DeltaSweep] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Mutation helpers used by the experiment modules
    # ------------------------------------------------------------------ #

    def add_table(self, name: str, rows: List[Dict[str, object]]) -> None:
        """Attach a named table (list of flat row dictionaries)."""
        if not rows:
            raise AnalysisError(f"table {name!r} has no rows")
        self.tables[name] = rows

    def add_sweep(self, name: str, sweep: DeltaSweep) -> None:
        """Attach a named Δ-graph sweep."""
        self.sweeps[name] = sweep
        self.metrics[f"{name}.peak_interference_factor"] = sweep.peak_interference_factor()
        self.metrics[f"{name}.asymmetry_index"] = sweep.asymmetry_index()
        self.metrics[f"{name}.flatness_index"] = sweep.flatness_index()

    def add_metric(self, name: str, value: float) -> None:
        """Attach one headline metric."""
        self.metrics[name] = float(value)

    def add_note(self, text: str) -> None:
        """Attach a free-form note shown at the end of the report."""
        self.notes.append(text)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def table(self, name: str) -> List[Dict[str, object]]:
        """A named table."""
        try:
            return self.tables[name]
        except KeyError as exc:
            raise AnalysisError(
                f"experiment {self.experiment_id} has no table {name!r}; "
                f"available: {sorted(self.tables)}"
            ) from exc

    def sweep(self, name: str) -> DeltaSweep:
        """A named Δ-graph sweep."""
        try:
            return self.sweeps[name]
        except KeyError as exc:
            raise AnalysisError(
                f"experiment {self.experiment_id} has no sweep {name!r}; "
                f"available: {sorted(self.sweeps)}"
            ) from exc

    def metric(self, name: str) -> float:
        """A named headline metric."""
        try:
            return self.metrics[name]
        except KeyError as exc:
            raise AnalysisError(
                f"experiment {self.experiment_id} has no metric {name!r}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def report(self) -> str:
        """Full plain-text report (tables, sweeps, metrics, notes)."""
        lines = [f"{self.experiment_id}: {self.title}", f"paper: {self.paper_reference}", ""]
        for name, rows in self.tables.items():
            columns = list(rows[0].keys())
            lines.append(
                format_table(columns, [[row.get(c, "") for c in columns] for row in rows],
                             title=f"[table] {name}")
            )
            lines.append("")
        for name, sweep in self.sweeps.items():
            lines.append(format_delta_sweep(sweep, title=f"[delta-graph] {name}"))
            lines.append("")
        if self.metrics:
            lines.append(format_summary(self.metrics, title="[metrics]"))
            lines.append("")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def table_csv(self, name: str) -> str:
        """CSV export of one named table."""
        return rows_to_csv(self.table(name))

    def summary(self) -> Mapping[str, float]:
        """All headline metrics."""
        return dict(self.metrics)

    # ------------------------------------------------------------------ #
    # Serialization (runner cache / run store / cross-process transport)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "tables": jsonify(self.tables),
            "sweeps": {name: sweep.to_dict() for name, sweep in self.sweeps.items()},
            "metrics": jsonify(self.metrics),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            experiment_id=str(data["experiment_id"]),
            title=str(data["title"]),
            paper_reference=str(data["paper_reference"]),
            tables={name: [dict(row) for row in rows]
                    for name, rows in data.get("tables", {}).items()},
            sweeps={name: DeltaSweep.from_dict(payload)
                    for name, payload in data.get("sweeps", {}).items()},
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            notes=[str(n) for n in data.get("notes", [])],
        )


def optional_int(value: Optional[int], default: int) -> int:
    """Small helper for experiment modules with optional point counts."""
    return default if value is None else int(value)
