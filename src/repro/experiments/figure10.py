"""Figure 10 — TCP window evolution, alone vs interfering.

The paper captures, with tcpdump, the TCP window of one client/server
connection during a contiguous write: running alone the window stays high;
under contention (HDD backend, sync ON, dt = 0) it repeatedly collapses to
nearly zero — the Incast signature.  The simulator records the congestion
window of a traced connection of each application; this experiment compares
the alone and contended traces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.traces import window_statistics
from repro.config.presets import make_scenario, make_single_app_scenario
from repro.core.flowcontrol import diagnose_flow_control
from repro.experiments.base import ExperimentResult
from repro.model.simulator import simulate_scenario
from repro.sim.tracing import TraceConfig

__all__ = ["run"]


def _traced_scenario(scale: str, alone: bool, sample_period: float):
    trace = TraceConfig(
        series_sample_period=sample_period,
        record_windows=True,
        record_progress=True,
        record_server_state=True,
        window_connection_limit=2,
    )
    if alone:
        return make_single_app_scenario(
            scale, device="hdd", sync_mode="sync-on", pattern="contiguous", trace=trace
        )
    return make_scenario(
        scale, device="hdd", sync_mode="sync-on", pattern="contiguous", delay=0.0, trace=trace
    )


def run(
    scale: str = "reduced",
    quick: bool = False,
    sample_period: Optional[float] = None,
) -> ExperimentResult:
    """Reproduce Figure 10 (window traces, alone vs interfering)."""
    period = sample_period if sample_period is not None else (0.05 if not quick else 0.1)
    result = ExperimentResult(
        experiment_id="figure10",
        title="TCP window evolution: independent run vs interfering run",
        paper_reference="Figure 10 (a)-(b)",
    )

    alone_result = simulate_scenario(_traced_scenario(scale, alone=True, sample_period=period))
    contended_result = simulate_scenario(
        _traced_scenario(scale, alone=False, sample_period=period)
    )

    rows = []
    for label, run_result in (("alone", alone_result), ("interfering", contended_result)):
        names = run_result.window_series_names()
        window_names = [n for n in names if not n.startswith("window.mean")]
        stats = [window_statistics(run_result.recorder.get_series(n)) for n in window_names]
        if not stats:
            continue
        mean_window = float(np.mean([s.mean for s in stats]))
        min_window = float(np.min([s.minimum for s in stats]))
        collapse_fraction = float(np.mean([s.collapse_fraction for s in stats]))
        rows.append(
            {
                "run": label,
                "mean_window_KiB": round(mean_window / 1024.0, 1),
                "min_window_KiB": round(min_window / 1024.0, 2),
                "time_near_floor": round(collapse_fraction, 3),
                "window_collapses": run_result.total_window_collapses(),
            }
        )
        result.add_metric(f"{label}.mean_window", mean_window)
        result.add_metric(f"{label}.collapse_fraction", collapse_fraction)
        result.add_metric(f"{label}.window_collapses", run_result.total_window_collapses())
    result.add_table("figure10_windows", rows)

    diagnosis = diagnose_flow_control(contended_result)
    result.add_metric("incast_detected", 1.0 if diagnosis.incast_detected else 0.0)
    result.add_note(diagnosis.describe())
    result.add_note(
        "Expected shape: the interfering run's windows spend far more time "
        "near the floor and produce many timeout collapses; the independent "
        "run does not."
    )
    return result
