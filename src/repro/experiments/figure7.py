"""Figure 7 — influence of the targeted storage servers (partitioning).

Instead of both applications striping over all 12 servers, each application
targets its own half (6+6).  Using half the servers costs single-application
performance, but it removes the interference *and* the unfairness: under
contention the partitioned configuration can even beat the shared one.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.experiment import TwoApplicationExperiment
from repro.core.scenarios import partitioned_servers_scenario
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def run(
    scale: str = "reduced",
    quick: bool = False,
    devices: Optional[Sequence[str]] = None,
    n_points: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 7 (shared vs partitioned servers, HDD and RAM)."""
    devices = list(devices) if devices is not None else ["hdd", "ram"]
    points = n_points if n_points is not None else (5 if quick else 9)
    result = ExperimentResult(
        experiment_id="figure7",
        title="Influence of the targeted storage servers (12 shared vs 6+6)",
        paper_reference="Figure 7 (a)-(b)",
    )
    rows = []
    for device in devices:
        shared = TwoApplicationExperiment(
            scale, device=device, sync_mode="sync-on", pattern="contiguous"
        )
        shared_sweep = shared.run_sweep(n_points=points, label=f"{device}/shared")
        result.add_sweep(f"{device}.shared", shared_sweep)

        partitioned = TwoApplicationExperiment(
            scenario=partitioned_servers_scenario(shared.scenario)
        )
        part_sweep = partitioned.run_sweep(n_points=points, label=f"{device}/partitioned")
        result.add_sweep(f"{device}.partitioned", part_sweep)

        shared_peak_time = float(
            max(shared_sweep.write_times(a).max() for a in shared_sweep.applications)
        )
        part_peak_time = float(
            max(part_sweep.write_times(a).max() for a in part_sweep.applications)
        )
        rows.append(
            {
                "device": device,
                "shared_alone_s": round(shared.alone_time(), 2),
                "partitioned_alone_s": round(partitioned.alone_time(), 2),
                "shared_peak_IF": round(shared_sweep.peak_interference_factor(), 2),
                "partitioned_peak_IF": round(part_sweep.peak_interference_factor(), 2),
                "shared_peak_time_s": round(shared_peak_time, 2),
                "partitioned_peak_time_s": round(part_peak_time, 2),
                "shared_asymmetry": round(shared_sweep.asymmetry_index(), 3),
                "partitioned_asymmetry": round(part_sweep.asymmetry_index(), 3),
            }
        )
        result.add_metric(f"{device}.partitioned_flatness", part_sweep.flatness_index())
    result.add_table("figure7_summary", rows)
    result.add_note(
        "Expected shape: partitioning halves the per-application parallelism "
        "(higher interference-free time) but the partitioned Δ-graph is flat "
        "and fair, and under contention its write time can be lower than the "
        "shared configuration's peak."
    )
    return result
