"""Registry of the table/figure reproductions.

Maps experiment identifiers (``"table1"``, ``"figure2"``, ... ``"figure12"``)
to their ``run`` functions, with the metadata the CLI and the benchmark
harness need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ExperimentError
from repro.experiments import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table1,
)
from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentEntry", "EXPERIMENTS", "get_experiment", "list_experiments", "run_experiment"]


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment."""

    experiment_id: str
    title: str
    paper_reference: str
    runner: Callable[..., ExperimentResult]

    def run(self, scale: str = "reduced", quick: bool = False, **kwargs) -> ExperimentResult:
        """Execute the experiment."""
        return self.runner(scale=scale, quick=quick, **kwargs)


EXPERIMENTS: Dict[str, ExperimentEntry] = {
    "table1": ExperimentEntry(
        "table1", "Local device-level interference", "Table I", table1.run
    ),
    "figure2": ExperimentEntry(
        "figure2", "Contiguous pattern, backend devices", "Figure 2", figure2.run
    ),
    "figure3": ExperimentEntry(
        "figure3", "Strided pattern, backend devices", "Figure 3", figure3.run
    ),
    "figure4": ExperimentEntry(
        "figure4", "Writers per node (network interface)", "Figure 4", figure4.run
    ),
    "figure5": ExperimentEntry(
        "figure5", "Network bandwidth 10G vs 1G", "Figure 5", figure5.run
    ),
    "figure6": ExperimentEntry(
        "figure6", "Number of storage servers (+ Table II)", "Figure 6 / Table II", figure6.run
    ),
    "figure7": ExperimentEntry(
        "figure7", "Targeted servers (shared vs partitioned)", "Figure 7", figure7.run
    ),
    "figure8": ExperimentEntry(
        "figure8", "Stripe size (strided pattern)", "Figure 8", figure8.run
    ),
    "figure9": ExperimentEntry(
        "figure9", "Request size (strided pattern)", "Figure 9", figure9.run
    ),
    "figure10": ExperimentEntry(
        "figure10", "TCP window evolution (Incast)", "Figure 10", figure10.run
    ),
    "figure11": ExperimentEntry(
        "figure11", "Unfairness: window and progress traces", "Figure 11", figure11.run
    ),
    "figure12": ExperimentEntry(
        "figure12", "Incast vs number of clients", "Figure 12", figure12.run
    ),
}


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up an experiment by id (``"table1"``, ``"figure5"``, ...)."""
    key = experiment_id.strip().lower()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def list_experiments() -> List[ExperimentEntry]:
    """All registered experiments in presentation order."""
    return [EXPERIMENTS[k] for k in sorted(EXPERIMENTS, key=_sort_key)]


def _sort_key(experiment_id: str) -> tuple:
    if experiment_id.startswith("table"):
        return (0, int(experiment_id.replace("table", "") or 0))
    return (1, int(experiment_id.replace("figure", "") or 0))


def run_experiment(
    experiment_id: str, scale: str = "reduced", quick: bool = False, **kwargs
) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id).run(scale=scale, quick=quick, **kwargs)
