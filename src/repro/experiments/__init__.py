"""Reproductions of every table and figure of the paper's evaluation.

Each module reproduces one table or figure:

==============  ===============================================================
Module          Paper result
==============  ===============================================================
``table1``      Table I — local writes on HDD/SSD/RAM, alone vs interfering
``figure2``     Fig. 2 — contiguous pattern, backend devices, sync ON/OFF
``figure3``     Fig. 3 — strided pattern, backend devices, sync ON/OFF
``figure4``     Fig. 4 — 16 writers/node vs 1 writer/node
``figure5``     Fig. 5 — 10G vs 1G storage network, sync ON/OFF
``figure6``     Fig. 6 + Table II — number of servers (scaling and Δ-graphs)
``figure7``     Fig. 7 — shared servers vs partitioned servers
``figure8``     Fig. 8 — stripe size, strided pattern, sync ON/OFF
``figure9``     Fig. 9 — request size, strided pattern, sync ON/OFF
``figure10``    Fig. 10 — TCP window evolution, alone vs interfering
``figure11``    Fig. 11 — window size and progress of first vs second app
``figure12``    Fig. 12 — Incast appearance as the client count grows
==============  ===============================================================

Use :func:`repro.experiments.registry.get_experiment` /
:func:`repro.experiments.registry.run_experiment` or the ``repro-io`` CLI to
execute them.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
