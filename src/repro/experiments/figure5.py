"""Figure 5 — influence of the network bandwidth (10 G vs 1 G).

Counter-intuitively, throttling the network from 10 Gbps to 1 Gbps does not
increase interference.  With sync ON (disk-bound) the peak write time is the
same for both networks, but the 1 G graph is symmetric (fair) because the
throttled sources no longer trigger the Incast collapse; with sync OFF the
1 G graph is nearly flat — the network limits each application to a rate the
servers can sustain, so no interference appears at all.
"""

from __future__ import annotations

from typing import Optional

from repro.config.filesystem import SyncMode
from repro.core.experiment import TwoApplicationExperiment
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def run(
    scale: str = "reduced",
    quick: bool = False,
    n_points: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce the Δ-graphs of Figure 5."""
    points = n_points if n_points is not None else (5 if quick else 9)
    result = ExperimentResult(
        experiment_id="figure5",
        title="Influence of the network bandwidth (10G vs 1G Ethernet)",
        paper_reference="Figure 5 (a)-(b)",
    )
    rows = []
    for sync in (SyncMode.SYNC_ON, SyncMode.SYNC_OFF):
        for network in ("10g", "1g"):
            exp = TwoApplicationExperiment(
                scale, device="hdd", sync_mode=sync, pattern="contiguous", network=network
            )
            sweep = exp.run_sweep(n_points=points, label=f"{network}/{sync.value}")
            result.add_sweep(f"{network}.{sync.value}", sweep)
            rows.append(
                {
                    "network": network,
                    "sync": sync.label,
                    "alone_s": round(exp.alone_time(), 2),
                    "peak_write_time_s": round(float(max(
                        sweep.write_times(app).max() for app in sweep.applications
                    )), 2),
                    "peak_IF": round(sweep.peak_interference_factor(), 2),
                    "asymmetry": round(sweep.asymmetry_index(), 3),
                    "flat": sweep.is_flat(0.35),
                }
            )
    result.add_table("figure5_summary", rows)
    result.add_note(
        "Expected shape: with sync ON the peak write times of 10G and 1G are "
        "close (the disk is the bottleneck) but only the 10G sweep is "
        "asymmetric; with sync OFF the 1G sweep is (nearly) flat while the "
        "10G sweep shows ~2x interference."
    )
    return result
