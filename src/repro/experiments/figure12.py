"""Figure 12 — appearance of the Incast problem as the client count grows.

Keeping the deployment fixed (12 servers, HDD, sync ON), the paper varies the
total number of clients from 128 to 960.  At small client counts the
Δ-graph is the symmetric triangle of plain device sharing; as the count
grows, window collapses appear and the graph becomes unfair (the first
application wins).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.experiment import TwoApplicationExperiment
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def run(
    scale: str = "reduced",
    quick: bool = False,
    procs_per_node_values: Optional[Sequence[int]] = None,
    n_points: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 12 (client-count sweep).

    The client count is varied through the number of writer processes per
    node, as in the paper (all nodes stay allocated).  At the reduced scale
    the default sweep is 2, 4, 6 and 8 processes per node (96 to 384 total
    clients).
    """
    values = (
        list(procs_per_node_values)
        if procs_per_node_values is not None
        else ([2, 8] if quick else [2, 4, 6, 8])
    )
    points = n_points if n_points is not None else (5 if quick else 7)
    result = ExperimentResult(
        experiment_id="figure12",
        title="Appearance of Incast as the number of clients grows",
        paper_reference="Figure 12",
    )
    rows = []
    for procs in values:
        exp = TwoApplicationExperiment(
            scale,
            device="hdd",
            sync_mode="sync-on",
            pattern="contiguous",
            procs_per_node=procs,
        )
        total_clients = sum(app.n_processes for app in exp.scenario.applications)
        sweep = exp.run_sweep(n_points=points, label=f"{total_clients} clients")
        result.add_sweep(f"clients_{total_clients}", sweep)
        rows.append(
            {
                "total_clients": total_clients,
                "procs_per_node": procs,
                "alone_s": round(exp.alone_time(), 2),
                "peak_IF": round(sweep.peak_interference_factor(), 2),
                "asymmetry": round(sweep.asymmetry_index(), 3),
                "collapses": sweep.total_collapses(),
            }
        )
        result.add_metric(f"asymmetry.{total_clients}", sweep.asymmetry_index())
        result.add_metric(f"collapses.{total_clients}", float(sweep.total_collapses()))
    result.add_table("figure12_summary", rows)
    result.add_note(
        "Expected shape: window collapses and the (positive) asymmetry of the "
        "delta-graph appear only above a client-count threshold; below it the "
        "interference is the symmetric sharing of the backend device."
    )
    return result
