"""Table I — device-level interference with local writes.

Two applications, each a single client writing 2 GB contiguously to its own
file, run on the node that also hosts a single-server file system.  The
network therefore plays no role and the slowdown observed when both run
together is attributable to the backend device:

========  ==========  =============  =========
Device    Alone       Interfering    Slowdown
========  ==========  =============  =========
HDD       13.4 s      33.4 s         2.49x
SSD       2.27 s      4.46 s         1.96x
RAM       1.32 s      2.09 s         1.58x
========  ==========  =============  =========
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import units
from repro.experiments.base import ExperimentResult
from repro.model.local import simulate_local_writes
from repro.storage import device_by_name

__all__ = ["run", "PAPER_VALUES"]

#: The paper's measured values (seconds, and slowdown factor).
PAPER_VALUES = {
    "HDD": {"alone": 13.4, "interfering": 33.4, "slowdown": 2.49},
    "SSD": {"alone": 2.27, "interfering": 4.46, "slowdown": 1.96},
    "RAM": {"alone": 1.32, "interfering": 2.09, "slowdown": 1.58},
}


def run(
    scale: str = "reduced",
    quick: bool = False,
    devices: Optional[Sequence[str]] = None,
    bytes_per_app: float = 2 * units.GiB,
) -> ExperimentResult:
    """Reproduce Table I.

    Parameters
    ----------
    scale, quick:
        Accepted for interface uniformity; the local experiment is small
        enough that the paper's full 2 GB volume is always used unless
        ``quick`` is set (then 512 MiB).
    devices:
        Device presets to evaluate (default: HDD, SSD, RAM).
    bytes_per_app:
        Bytes written by each application.
    """
    del scale  # the local experiment has no platform scale
    if quick:
        bytes_per_app = min(bytes_per_app, 512 * units.MiB)
    devices = list(devices) if devices is not None else ["hdd", "ssd", "ram"]

    result = ExperimentResult(
        experiment_id="table1",
        title="Local write interference per backend device",
        paper_reference="Table I",
    )
    rows = []
    for name in devices:
        device = device_by_name(name)
        alone = simulate_local_writes(device, n_apps=1, bytes_per_app=bytes_per_app)
        both = simulate_local_writes(device, n_apps=2, bytes_per_app=bytes_per_app)
        slowdown = both.slowdown_versus(alone)
        paper = PAPER_VALUES.get(device.name, {})
        rows.append(
            {
                "device": device.name,
                "alone_s": round(alone.mean_write_time, 2),
                "interfering_s": round(both.mean_write_time, 2),
                "slowdown": round(slowdown, 2),
                "paper_slowdown": paper.get("slowdown", float("nan")),
            }
        )
        result.add_metric(f"slowdown.{device.name}", slowdown)
        result.add_metric(f"alone.{device.name}", alone.mean_write_time)
    result.add_table("table1", rows)
    result.add_note(
        "Slowdowns above 2 indicate a device that loses efficiency under "
        "interleaving (head movement); RAM shares fairly and stays below 2 "
        "because part of each write is the client's own, unshared copy cost."
    )
    return result
