"""Figure 4 — influence of the network interface (writers per node).

The paper compares two layouts of the same total volume: all 16 cores of
each node writing 64 MiB each, versus a single writer per node writing
16 x 64 MiB.  Fewer writers per node improve single-application performance
*and* remove the unfair interference, because each server talks to 16x fewer
sockets and the node serializes its own requests.
"""

from __future__ import annotations

from typing import Optional

from repro.core.experiment import TwoApplicationExperiment
from repro.core.scenarios import dedicated_writer_scenario
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def run(
    scale: str = "reduced",
    quick: bool = False,
    n_points: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 4 (all cores vs one writer per node)."""
    points = n_points if n_points is not None else (5 if quick else 9)
    result = ExperimentResult(
        experiment_id="figure4",
        title="Influence of the network interface: writers per node",
        paper_reference="Figure 4",
    )

    base = TwoApplicationExperiment(scale, device="hdd", sync_mode="sync-on",
                                    pattern="contiguous")
    sweep_all = base.run_sweep(n_points=points, label="all cores write")
    result.add_sweep("all_cores", sweep_all)

    dedicated = TwoApplicationExperiment(
        scenario=dedicated_writer_scenario(base.scenario)
    )
    sweep_one = dedicated.run_sweep(n_points=points, label="1 writer per node")
    result.add_sweep("one_writer_per_node", sweep_one)

    rows = [
        {
            "configuration": "16 writers per node",
            "alone_s": round(base.alone_time(), 2),
            "peak_IF": round(sweep_all.peak_interference_factor(), 2),
            "asymmetry": round(sweep_all.asymmetry_index(), 3),
            "collapses": sweep_all.total_collapses(),
        },
        {
            "configuration": "1 writer per node",
            "alone_s": round(dedicated.alone_time(), 2),
            "peak_IF": round(sweep_one.peak_interference_factor(), 2),
            "asymmetry": round(sweep_one.asymmetry_index(), 3),
            "collapses": sweep_one.total_collapses(),
        },
    ]
    result.add_table("figure4_summary", rows)
    result.add_metric("interference_reduction",
                      sweep_all.peak_interference_factor() - sweep_one.peak_interference_factor())
    result.add_note(
        "Expected shape: the single-writer configuration has fewer window "
        "collapses, a lower or equal peak interference factor, and a much "
        "smaller asymmetry (fair sharing)."
    )
    return result
