"""Figure 11 — window size and progress of the first vs the second application.

With the second application starting 10 seconds after the first (scaled down
with the preset), the paper overlays, for one client of each application, the
TCP window size and the progress of its transfer.  The first application only
slows down when it is already ~90% done; the second is held back from ~40%
on, because its windows hardly recover — the unfairness mechanism.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.traces import progress_slowdown_point, window_statistics
from repro.config.presets import make_scenario
from repro.experiments.base import ExperimentResult
from repro.model.simulator import simulate_scenario
from repro.sim.tracing import TraceConfig

__all__ = ["run"]


def run(
    scale: str = "reduced",
    quick: bool = False,
    delay: Optional[float] = None,
    sample_period: Optional[float] = None,
) -> ExperimentResult:
    """Reproduce Figure 11 (per-application window and progress traces)."""
    period = sample_period if sample_period is not None else (0.05 if not quick else 0.1)
    result = ExperimentResult(
        experiment_id="figure11",
        title="Unfairness: window size and progress of each application",
        paper_reference="Figure 11 (a)-(b)",
    )
    trace = TraceConfig(
        series_sample_period=period,
        record_windows=True,
        record_progress=True,
        record_server_state=True,
        window_connection_limit=2,
    )
    scenario = make_scenario(
        scale, device="hdd", sync_mode="sync-on", pattern="contiguous", trace=trace
    )
    # The paper uses dt = 10 s with a ~35 s alone time; scale the delay to
    # roughly a third of this preset's interference window.
    if delay is None:
        alone = simulate_scenario(scenario.with_applications(scenario.applications[:1]))
        delay = 0.35 * alone.write_time(scenario.applications[0].name)
    run_result = simulate_scenario(scenario.with_delay(float(delay)))

    rows = []
    for app in sorted(run_result.applications):
        slowdown_point = progress_slowdown_point(run_result, app)
        window_names = [
            n for n in run_result.window_series_names()
            if n.startswith(f"window.{app}.")
        ]
        stats = [window_statistics(run_result.recorder.get_series(n)) for n in window_names]
        collapse_fraction = (
            float(sum(s.collapse_fraction for s in stats) / len(stats)) if stats else 0.0
        )
        rows.append(
            {
                "application": app,
                "starts": "first" if app == "A" else "second",
                "write_time_s": round(run_result.write_time(app), 2),
                "progress_at_slowdown": round(slowdown_point, 2),
                "window_time_near_floor": round(collapse_fraction, 3),
                "window_collapses": run_result.app(app).window_collapses,
            }
        )
        result.add_metric(f"slowdown_point.{app}", slowdown_point)
        result.add_metric(f"collapses.{app}", run_result.app(app).window_collapses)
    result.add_table("figure11_summary", rows)
    result.add_metric("delay", float(delay))
    result.add_note(
        "Expected shape: the first application sustains progress and only "
        "slows near the end of its transfer, while the second application's "
        "windows collapse early and repeatedly, so it is slowed down from a "
        "much lower progress point and accumulates far more timeouts."
    )
    return result
