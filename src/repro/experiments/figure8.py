"""Figure 8 — influence of the data distribution policy (stripe size).

With the strided pattern (256 KiB blocks), the paper varies the PVFS stripe
size: 64 KiB (default), 128 KiB and 256 KiB.  Larger stripes improve
performance in every case, and with synchronization disabled they also make
the interference disappear, because each request is striped over fewer
servers and can no longer be stalled by a single slow server that favoured
the other application.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import units
from repro.config.filesystem import SyncMode
from repro.core.experiment import TwoApplicationExperiment
from repro.experiments.base import ExperimentResult
from repro.pfs.striping import servers_touched

__all__ = ["run"]


def run(
    scale: str = "reduced",
    quick: bool = False,
    stripe_sizes: Optional[Sequence[float]] = None,
    n_points: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 8 (stripe-size sweep, strided pattern)."""
    stripes = (
        list(stripe_sizes)
        if stripe_sizes is not None
        else [64 * units.KiB, 128 * units.KiB, 256 * units.KiB]
    )
    points = n_points if n_points is not None else (3 if quick else 5)
    request_size = 256 * units.KiB

    result = ExperimentResult(
        experiment_id="figure8",
        title="Influence of the stripe size (strided pattern)",
        paper_reference="Figure 8 (a)-(b)",
    )
    rows = []
    for sync in (SyncMode.SYNC_ON, SyncMode.SYNC_OFF):
        for stripe in stripes:
            exp = TwoApplicationExperiment(
                scale,
                device="hdd",
                sync_mode=sync,
                pattern="strided",
                request_size=request_size,
                stripe_size=stripe,
            )
            sweep = exp.run_sweep(
                n_points=points, label=f"stripe {units.bytes_to_human(stripe)}/{sync.value}"
            )
            key = f"stripe_{int(stripe // units.KiB)}k.{sync.value}"
            result.add_sweep(key, sweep)
            n_servers_per_request = len(
                servers_touched(0.0, request_size, stripe, exp.scenario.filesystem.all_servers)
            )
            rows.append(
                {
                    "sync": sync.label,
                    "stripe": units.bytes_to_human(stripe),
                    "servers_per_request": n_servers_per_request,
                    "alone_s": round(exp.alone_time(), 2),
                    "peak_IF": round(sweep.peak_interference_factor(), 2),
                }
            )
    result.add_table("figure8_summary", rows)
    result.add_note(
        "Expected shape: larger stripes are faster for both sync modes; with "
        "sync OFF the interference factor drops toward 1 as each request "
        "involves fewer servers, while with sync ON the disk keeps causing "
        "interference."
    )
    return result
