"""Figure 9 — influence of the request size (strided pattern).

With the default 64 KiB stripe, the paper varies the application's block
size: 64, 128, 256 and 512 KiB.  Small blocks involve fewer servers per
request, which mitigates cross-application interference (with sync OFF the
interference disappears for 64/128 KiB blocks) — but those block sizes are
far from optimal for a single application, which is the paper's warning to
anyone proposing interference "solutions" that rely on them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import units
from repro.config.filesystem import SyncMode
from repro.core.experiment import TwoApplicationExperiment
from repro.experiments.base import ExperimentResult
from repro.pfs.striping import servers_touched

__all__ = ["run"]


def run(
    scale: str = "reduced",
    quick: bool = False,
    request_sizes: Optional[Sequence[float]] = None,
    n_points: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 9 (request-size sweep, strided pattern)."""
    sizes = (
        list(request_sizes)
        if request_sizes is not None
        else [64 * units.KiB, 128 * units.KiB, 256 * units.KiB, 512 * units.KiB]
    )
    points = n_points if n_points is not None else (3 if quick else 5)
    stripe = 64 * units.KiB

    result = ExperimentResult(
        experiment_id="figure9",
        title="Influence of the request size (strided pattern)",
        paper_reference="Figure 9 (a)-(b)",
    )
    rows = []
    for sync in (SyncMode.SYNC_ON, SyncMode.SYNC_OFF):
        for request in sizes:
            exp = TwoApplicationExperiment(
                scale,
                device="hdd",
                sync_mode=sync,
                pattern="strided",
                request_size=request,
                stripe_size=stripe,
            )
            sweep = exp.run_sweep(
                n_points=points,
                label=f"request {units.bytes_to_human(request)}/{sync.value}",
            )
            key = f"request_{int(request // units.KiB)}k.{sync.value}"
            result.add_sweep(key, sweep)
            rows.append(
                {
                    "sync": sync.label,
                    "request": units.bytes_to_human(request),
                    "servers_per_request": len(
                        servers_touched(0.0, request, stripe,
                                        exp.scenario.filesystem.all_servers)
                    ),
                    "alone_s": round(exp.alone_time(), 2),
                    "peak_IF": round(sweep.peak_interference_factor(), 2),
                }
            )
    result.add_table("figure9_summary", rows)
    result.add_note(
        "Expected shape: small requests involve fewer servers and show less "
        "interference (sync OFF), yet their interference-free performance is "
        "clearly worse than the larger requests' — no interference does not "
        "mean optimal performance."
    )
    result.add_note(
        "Known deviation: the paper's request-size-dependent interference "
        "(sync OFF) comes from servers serving the two applications' requests "
        "in different orders, so a request striped over several servers waits "
        "for whichever server favoured the other application.  The fluid "
        "model serves both applications simultaneously (proportional "
        "sharing), so this per-request straggler/ordering effect — and hence "
        "the drop to an interference-free regime at 64/128 KiB — is not "
        "reproduced; the per-request-size performance ordering and the "
        "'interference-free is far from optimal' warning are."
    )
    return result
