"""Figure 6 and Table II — influence of the number of storage servers.

With synchronization disabled, the paper deploys PVFS on 4, 8, 12 and 24
servers.  More servers increase the aggregate throughput an application can
reach (Figure 6(a)) and shift the Δ-graph (Figure 6(b)), but the *relative*
interference barely changes: the peak interference factor stays close to 2
for every deployment size (Table II), because each server still serves the
same number of clients.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import units
from repro.core.experiment import TwoApplicationExperiment
from repro.experiments.base import ExperimentResult

__all__ = ["run", "PAPER_TABLE2"]

#: Table II of the paper: peak interference factor per number of servers.
PAPER_TABLE2 = {4: 2.22, 8: 2.28, 12: 2.07, 24: 2.00}


def run(
    scale: str = "reduced",
    quick: bool = False,
    server_counts: Optional[Sequence[int]] = None,
    n_points: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 6 (throughput scaling + Δ-graphs) and Table II."""
    counts = list(server_counts) if server_counts is not None else [4, 8, 12, 24]
    points = n_points if n_points is not None else (5 if quick else 7)

    result = ExperimentResult(
        experiment_id="figure6",
        title="Influence of the number of storage servers",
        paper_reference="Figure 6 (a)-(b) and Table II",
    )
    scaling_rows = []
    table2_rows = []
    for n_servers in counts:
        # The paper reduces the per-client volume on the smallest deployment
        # because of its lower capacity; mirror that.
        volume = 16 * units.MiB if (n_servers <= 4 and scale != "paper") else None
        # Use enough client nodes that even the largest deployment stays
        # server-bound, as on the paper's 60-node testbed.
        nodes = None
        if scale == "reduced" and n_servers >= 24:
            nodes = 24
        exp = TwoApplicationExperiment(
            scale,
            device="hdd",
            sync_mode="sync-off",
            pattern="contiguous",
            n_servers=n_servers,
            bytes_per_process=volume,
            nodes_per_app=nodes,
        )
        sweep = exp.run_sweep(n_points=points, label=f"{n_servers} servers")
        result.add_sweep(f"servers_{n_servers}", sweep)

        first = exp.scenario.applications[0].name
        alone = exp.baseline()
        max_throughput = alone.throughput(first)
        # Minimum throughput: the dt=0 point of the sweep.
        point0 = sweep.point_at(0.0)
        min_throughput = min(point0.throughputs.values())
        peak_if = sweep.peak_interference_factor()

        scaling_rows.append(
            {
                "servers": n_servers,
                "max_throughput_GBps": round(max_throughput / units.GiB, 2),
                "min_throughput_GBps": round(min_throughput / units.GiB, 2),
            }
        )
        table2_rows.append(
            {
                "servers": n_servers,
                "peak_interference_factor": round(peak_if, 2),
                "paper_value": PAPER_TABLE2.get(n_servers, float("nan")),
            }
        )
        result.add_metric(f"peak_if.{n_servers}", peak_if)
        result.add_metric(f"max_throughput.{n_servers}", max_throughput)
    result.add_table("figure6a_scaling", scaling_rows)
    result.add_table("table2_interference", table2_rows)
    result.add_note(
        "Expected shape: the maximum throughput grows with the number of "
        "servers, but the peak interference factor stays roughly constant "
        "around 2 (Table II)."
    )
    return result
