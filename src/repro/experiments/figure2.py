"""Figure 2 — contiguous pattern, backend devices, sync ON/OFF.

Two 480-core applications write 64 MiB per process contiguously.  The paper
plots Δ-graphs for HDD/SSD/RAM backends with synchronization enabled and
disabled (plus the null-aio method), and observes:

* write times are lower for SSD/RAM but the *relative* slowdown is ~2x for
  every backend,
* with HDD + sync ON the Δ-graph is asymmetric: the application that starts
  first is less affected,
* with sync OFF the backends behave alike (data stays in memory), and
  null-aio shows almost no interference.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config.filesystem import SyncMode
from repro.core.experiment import TwoApplicationExperiment
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def run(
    scale: str = "reduced",
    quick: bool = False,
    devices: Optional[Sequence[str]] = None,
    n_points: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce the Δ-graphs of Figure 2."""
    devices = list(devices) if devices is not None else ["hdd", "ssd", "ram"]
    points = n_points if n_points is not None else (5 if quick else 9)

    result = ExperimentResult(
        experiment_id="figure2",
        title="Contiguous pattern: influence of the backend device",
        paper_reference="Figure 2 (a)-(d)",
    )
    summary_rows = []
    for sync in (SyncMode.SYNC_ON, SyncMode.SYNC_OFF):
        for device in devices:
            exp = TwoApplicationExperiment(
                scale, device=device, sync_mode=sync, pattern="contiguous"
            )
            sweep = exp.run_sweep(n_points=points, label=f"{device}/{sync.value}")
            name = f"{device}.{sync.value}"
            result.add_sweep(name, sweep)
            summary_rows.append(
                {
                    "device": device,
                    "sync": sync.label,
                    "alone_s": round(exp.alone_time(), 2),
                    "peak_IF": round(sweep.peak_interference_factor(), 2),
                    "asymmetry": round(sweep.asymmetry_index(), 3),
                    "collapses": sweep.total_collapses(),
                }
            )
    # The null-aio method only makes sense with sync OFF semantics.
    exp = TwoApplicationExperiment(scale, device="hdd", sync_mode=SyncMode.NULL_AIO,
                                   pattern="contiguous")
    sweep = exp.run_sweep(n_points=points, label="null-aio")
    result.add_sweep("null-aio", sweep)
    summary_rows.append(
        {
            "device": "null-aio",
            "sync": "Null-aio",
            "alone_s": round(exp.alone_time(), 2),
            "peak_IF": round(sweep.peak_interference_factor(), 2),
            "asymmetry": round(sweep.asymmetry_index(), 3),
            "collapses": sweep.total_collapses(),
        }
    )
    result.add_table("figure2_summary", summary_rows)
    result.add_note(
        "Expected shape: every real backend peaks near a 2x slowdown; the "
        "HDD/sync-ON sweep is asymmetric (positive asymmetry index) and is "
        "the only one with a large number of window collapses; null-aio is flat."
    )
    return result
