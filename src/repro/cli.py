"""Command-line interface.

Examples
--------
List the available experiments::

    repro-io list

Run one reproduction and print its report::

    repro-io run figure5 --scale reduced

Run a custom Δ-graph sweep::

    repro-io sweep --device hdd --sync sync-on --pattern contiguous --points 9

Export an experiment table as CSV::

    repro-io run figure6 --csv table2_interference

Run the whole campaign and regenerate EXPERIMENTS.md::

    repro-io campaign --scale reduced --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import units
from repro.analysis.asciiplot import plot_delta_sweep
from repro.analysis.tables import sweep_to_csv
from repro.core.experiment import TwoApplicationExperiment
from repro.core.reporting import format_delta_sweep
from repro.experiments.registry import get_experiment, list_experiments

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-io",
        description=(
            "Reproduction toolkit for 'On the Root Causes of Cross-Application "
            "I/O Interference in HPC Storage Systems' (IPDPS 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available table/figure reproductions")

    run_parser = sub.add_parser("run", help="run one table/figure reproduction")
    run_parser.add_argument("experiment", help="experiment id, e.g. table1 or figure5")
    run_parser.add_argument("--scale", default="reduced", choices=["tiny", "reduced", "paper"])
    run_parser.add_argument("--quick", action="store_true", help="use fewer sweep points")
    run_parser.add_argument(
        "--csv", metavar="TABLE", default=None, help="print one result table as CSV"
    )

    sweep_parser = sub.add_parser("sweep", help="run a custom two-application delta sweep")
    sweep_parser.add_argument("--scale", default="reduced", choices=["tiny", "reduced", "paper"])
    sweep_parser.add_argument("--device", default="hdd", help="hdd, ssd, ram")
    sweep_parser.add_argument(
        "--sync", default="sync-on", choices=["sync-on", "sync-off", "null-aio"]
    )
    sweep_parser.add_argument("--pattern", default="contiguous", choices=["contiguous", "strided"])
    sweep_parser.add_argument("--network", default="10g", choices=["10g", "1g"])
    sweep_parser.add_argument("--stripe-kib", type=float, default=64.0)
    sweep_parser.add_argument("--request-kib", type=float, default=None)
    sweep_parser.add_argument("--points", type=int, default=9)
    sweep_parser.add_argument("--partition-servers", action="store_true")
    sweep_parser.add_argument("--plot", action="store_true", help="also print an ASCII plot")
    sweep_parser.add_argument("--csv", action="store_true", help="print the sweep as CSV")

    campaign_parser = sub.add_parser(
        "campaign",
        help="run every table/figure reproduction and write the EXPERIMENTS.md report",
    )
    campaign_parser.add_argument(
        "--scale", default="reduced", choices=["tiny", "reduced", "paper"]
    )
    campaign_parser.add_argument("--quick", action="store_true",
                                 help="use fewer sweep points per experiment")
    campaign_parser.add_argument(
        "--only", nargs="+", metavar="ID", default=None,
        help="restrict the campaign to these experiment ids (e.g. table1 figure5)",
    )
    campaign_parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the markdown report to this file (default: print to stdout)",
    )

    return parser


def _command_list() -> int:
    for entry in list_experiments():
        print(f"{entry.experiment_id:10s} {entry.paper_reference:22s} {entry.title}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    entry = get_experiment(args.experiment)
    result = entry.run(scale=args.scale, quick=args.quick)
    if args.csv:
        print(result.table_csv(args.csv), end="")
    else:
        print(result.report())
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    kwargs = dict(
        device=args.device,
        sync_mode=args.sync,
        pattern=args.pattern,
        network=args.network,
        stripe_size=args.stripe_kib * units.KiB,
        partition_servers=args.partition_servers,
    )
    if args.request_kib is not None:
        kwargs["request_size"] = args.request_kib * units.KiB
    experiment = TwoApplicationExperiment(args.scale, **kwargs)
    sweep = experiment.run_sweep(n_points=args.points)
    if args.csv:
        print(sweep_to_csv(sweep), end="")
        return 0
    print(format_delta_sweep(sweep))
    if args.plot:
        print()
        print(plot_delta_sweep(sweep))
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    # Imported lazily: the campaign machinery pulls in every experiment module.
    from repro.analysis.campaign import campaign_to_markdown, run_campaign

    def progress(experiment_id: str, record) -> None:
        print(
            f"[campaign] {experiment_id:10s} {record.n_agreeing}/{record.n_claims} "
            f"claims agree ({record.wall_time:.1f}s)",
            file=sys.stderr,
        )

    campaign = run_campaign(
        scale=args.scale, quick=args.quick, experiments=args.only, progress=progress
    )
    text = campaign_to_markdown(campaign)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}: {campaign.describe()}", file=sys.stderr)
    else:
        print(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-io`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "campaign":
        return _command_campaign(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
