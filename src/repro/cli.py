"""Command-line interface.

Examples
--------
List the available experiments::

    repro-io list

Run one reproduction and print its report::

    repro-io run figure5 --scale reduced

Run a custom Δ-graph sweep::

    repro-io sweep --device hdd --sync sync-on --pattern contiguous --points 9

Export an experiment table as CSV::

    repro-io run figure6 --csv table2_interference

Run the whole campaign in parallel, with a persistent result cache::

    repro-io campaign --scale reduced --jobs 4 --cache-dir .repro-cache \
        --output EXPERIMENTS.md

Explore a parameter grid and persist each run with a manifest::

    repro-io grid --axis device=hdd,ssd --axis sync=sync-on,sync-off \
        --scale tiny --jobs 4 --store runs/

Verify the integrity of persisted runs::

    repro-io verify runs/

Run the all-pairs interference matrix over workload archetypes (updates the
interference-matrix section of EXPERIMENTS.md and persists ``matrix.json``;
a warm-cache repeat is a 100% cache hit with byte-identical outputs)::

    repro-io matrix --archetypes checkpoint,analytics --jobs 2

Measure stepping-kernel throughput on the canonical scenario set and refresh
``BENCH_stepper.json`` (add ``--check`` to gate against the committed
baseline, ``--max-overhead`` to additionally bound telemetry-disabled
overhead)::

    repro-io perf --scale reduced --output BENCH_stepper.json
    repro-io perf --scale tiny --check --baseline BENCH_stepper.json

Capture a run timeline while the matrix executes, then inspect it::

    repro-io matrix --archetypes checkpoint,analytics --telemetry
    repro-io obs summary runs/matrix_<fp>
    repro-io obs export runs/matrix_<fp> --format chrome-trace -o trace.json
    repro-io obs diff runs/matrix_A runs/matrix_B

Query the result lake (every cached result, across all runs) and re-verify
a persisted run end-to-end::

    repro-io lake query --where key.kind=matrix-pair \
        --where key.task_id~checkpoint --sort derived.dilation:desc --limit 5
    repro-io lake query --agg max:derived.dilation --group-by key.scale
    repro-io lake stats
    repro-io lake compact
    repro-io reproduce runs/matrix_<fp>

Diagnostics go to stderr as structured ``level=... event=...`` lines;
``--quiet`` silences progress, ``--verbose`` adds debug detail.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import units
from repro._version import __version__
from repro.analysis.asciiplot import plot_delta_sweep
from repro.analysis.tables import sweep_to_csv
from repro.core.experiment import TwoApplicationExperiment
from repro.core.reporting import format_delta_sweep
from repro.errors import UsageError
from repro.experiments.registry import get_experiment, list_experiments
from repro.obs.log import configure_logging, get_logger

__all__ = ["main", "build_parser"]

DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_STORE_DIR = "runs"


# --------------------------------------------------------------------------- #
# Argument validation
#
# Every validator raises repro.errors.UsageError with a message that names
# the current flag spelling; _cli_type funnels that into argparse's uniform
# bad-argument path (message on stderr, exit code 2) so all subcommands
# reject bad values identically.
# --------------------------------------------------------------------------- #


def _cli_type(validator):
    """Wrap a UsageError-raising validator as an argparse type callable."""

    def convert(value: str):
        try:
            return validator(value)
        except UsageError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None

    convert.__name__ = validator.__name__.lstrip("_")
    return convert


def validate_sweep_points(value: str) -> int:
    """``--points``: an integer number of Δ-sweep delays, at least 3."""
    try:
        points = int(value)
    except ValueError:
        raise UsageError(f"--points expects an integer, got {value!r}") from None
    if points < 3:
        raise UsageError(
            f"--points must be at least 3 (a delta sweep needs >= 3 delays), "
            f"got {points}"
        )
    return points


def validate_jobs(value: str) -> int:
    """``--jobs``: a strictly positive worker count."""
    try:
        number = int(value)
    except ValueError:
        raise UsageError(f"--jobs expects an integer, got {value!r}") from None
    if number < 1:
        raise UsageError(f"--jobs must be >= 1, got {number}")
    return number


def validate_step_tolerance(value: str) -> float:
    """``--step-tolerance``: a float in (0, 1]."""
    try:
        tolerance = float(value)
    except ValueError:
        raise UsageError(
            f"--step-tolerance expects a number, got {value!r}"
        ) from None
    if not 0.0 < tolerance <= 1.0:
        raise UsageError(
            f"--step-tolerance must be in (0, 1], got {tolerance}"
        )
    return tolerance


def validate_task_timeout(value: str) -> float:
    """``--task-timeout``: a strictly positive wall-clock deadline in seconds."""
    try:
        timeout = float(value)
    except ValueError:
        raise UsageError(
            f"--task-timeout expects a number of seconds, got {value!r}"
        ) from None
    if timeout <= 0:
        raise UsageError(f"--task-timeout must be positive, got {timeout}")
    return timeout


def validate_max_retries(value: str) -> int:
    """``--max-retries``: a non-negative retry budget per task."""
    try:
        retries = int(value)
    except ValueError:
        raise UsageError(
            f"--max-retries expects an integer, got {value!r}"
        ) from None
    if retries < 0:
        raise UsageError(f"--max-retries must be >= 0, got {retries}")
    return retries


def validate_archetypes(value: str):
    """``--archetypes``: >= 2 comma-separated registered archetype names."""
    from repro.scenarios.archetypes import archetype_names

    names = [part.strip().lower() for part in value.split(",") if part.strip()]
    known = archetype_names()
    unknown = sorted(set(names) - set(known))
    if unknown:
        raise UsageError(
            f"--archetypes names unknown archetypes {unknown}; "
            f"available: {known}"
        )
    if len(names) < 2:
        raise UsageError(
            f"--archetypes needs at least two comma-separated archetypes "
            f"(e.g. checkpoint,analytics), got {value!r}"
        )
    if len(set(names)) != len(names):
        raise UsageError(f"--archetypes lists duplicates: {names}")
    return names


def validate_min_ratio(value: str) -> float:
    """``--min-ratio``: a float in (0, 1]."""
    try:
        ratio = float(value)
    except ValueError:
        raise UsageError(f"--min-ratio expects a number, got {value!r}") from None
    if not 0.0 < ratio <= 1.0:
        raise UsageError(f"--min-ratio must be in (0, 1], got {ratio}")
    return ratio


def validate_max_overhead(value: str) -> float:
    """``--max-overhead``: a float in [0, 1)."""
    try:
        fraction = float(value)
    except ValueError:
        raise UsageError(
            f"--max-overhead expects a number, got {value!r}"
        ) from None
    if not 0.0 <= fraction < 1.0:
        raise UsageError(f"--max-overhead must be in [0, 1), got {fraction}")
    return fraction


def validate_repeats(value: str) -> int:
    """``--repeats``: a strictly positive repeat count."""
    try:
        number = int(value)
    except ValueError:
        raise UsageError(f"--repeats expects an integer, got {value!r}") from None
    if number < 1:
        raise UsageError(f"--repeats must be >= 1, got {number}")
    return number


def validate_batch_size(value: str) -> int:
    """``--batch``: a strictly positive lockstep batch width."""
    try:
        number = int(value)
    except ValueError:
        raise UsageError(f"--batch expects an integer, got {value!r}") from None
    if number < 1:
        raise UsageError(f"--batch must be >= 1, got {number}")
    return number


def validate_limit(value: str) -> int:
    """``--limit``: a non-negative row count."""
    try:
        number = int(value)
    except ValueError:
        raise UsageError(f"--limit expects an integer, got {value!r}") from None
    if number < 0:
        raise UsageError(f"--limit must be >= 0, got {number}")
    return number


def _validate_where(value: str):
    from repro.lake.query import parse_where

    return parse_where(value)


def _validate_sort(value: str):
    from repro.lake.query import parse_sort

    return parse_sort(value)


def _validate_agg(value: str):
    from repro.lake.query import parse_aggregate

    return parse_aggregate(value)


_sweep_points = _cli_type(validate_sweep_points)
_positive_int = _cli_type(validate_jobs)
_step_tolerance = _cli_type(validate_step_tolerance)
_archetype_list = _cli_type(validate_archetypes)
_task_timeout = _cli_type(validate_task_timeout)
_max_retries = _cli_type(validate_max_retries)
_min_ratio = _cli_type(validate_min_ratio)
_repeat_count = _cli_type(validate_repeats)
_max_overhead = _cli_type(validate_max_overhead)
_batch_size = _cli_type(validate_batch_size)
_row_limit = _cli_type(validate_limit)
_where_filter = _cli_type(_validate_where)
_sort_spec = _cli_type(_validate_sort)
_agg_spec = _cli_type(_validate_agg)


def _add_stepping_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the stepping-policy flags shared by ``sweep`` and ``campaign``."""
    parser.add_argument(
        "--stepping", default="fixed", choices=["fixed", "adaptive"],
        help="time-advance policy of the simulation core: 'fixed' (the "
             "default, byte-identical output) or 'adaptive' (quiescent "
             "intervals collapse into a single jump)",
    )
    parser.add_argument(
        "--step-tolerance", type=_step_tolerance, default=None, metavar="FRAC",
        help="adaptive-stepping accuracy knob in (0, 1]: fraction of the "
             "time to the next state change one step may cross "
             "(default: 0.05; only valid with --stepping adaptive)",
    )


def _stepping_policy(parser: argparse.ArgumentParser, args: argparse.Namespace):
    """Build the SteppingPolicy from parsed flags, rejecting nonsense combos."""
    from repro.config.control import SteppingPolicy

    if args.stepping != "adaptive":
        if args.step_tolerance is not None:
            parser.error(
                "--step-tolerance only applies to adaptive stepping; "
                "add --stepping adaptive"
            )
        return None
    if args.step_tolerance is None:
        return SteppingPolicy.adaptive()
    return SteppingPolicy.adaptive(tolerance=args.step_tolerance)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-io",
        description=(
            "Reproduction toolkit for 'On the Root Causes of Cross-Application "
            "I/O Interference in HPC Storage Systems' (IPDPS 2016)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro-io {__version__}"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="emit debug-level diagnostics on stderr",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress progress diagnostics on stderr (warnings still print)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available table/figure reproductions")

    run_parser = sub.add_parser("run", help="run one table/figure reproduction")
    run_parser.add_argument("experiment", help="experiment id, e.g. table1 or figure5")
    run_parser.add_argument("--scale", default="reduced", choices=["tiny", "reduced", "paper"])
    run_parser.add_argument("--quick", action="store_true", help="use fewer sweep points")
    run_parser.add_argument(
        "--csv", metavar="TABLE", default=None, help="print one result table as CSV"
    )

    sweep_parser = sub.add_parser("sweep", help="run a custom two-application delta sweep")
    sweep_parser.add_argument("--scale", default="reduced", choices=["tiny", "reduced", "paper"])
    sweep_parser.add_argument("--device", default="hdd", help="hdd, ssd, ram")
    sweep_parser.add_argument(
        "--sync", default="sync-on", choices=["sync-on", "sync-off", "null-aio"]
    )
    sweep_parser.add_argument("--pattern", default="contiguous", choices=["contiguous", "strided"])
    sweep_parser.add_argument("--network", default="10g", choices=["10g", "1g"])
    sweep_parser.add_argument("--stripe-kib", type=float, default=64.0)
    sweep_parser.add_argument("--request-kib", type=float, default=None)
    sweep_parser.add_argument(
        "--points", type=_sweep_points, default=9,
        help="number of delta points in the sweep (>= 3)",
    )
    sweep_parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="simulate sweep points across N worker processes",
    )
    sweep_parser.add_argument("--partition-servers", action="store_true")
    sweep_parser.add_argument("--plot", action="store_true", help="also print an ASCII plot")
    sweep_parser.add_argument("--csv", action="store_true", help="print the sweep as CSV")
    _add_stepping_arguments(sweep_parser)

    campaign_parser = sub.add_parser(
        "campaign",
        help="run every table/figure reproduction and write the EXPERIMENTS.md report",
    )
    campaign_parser.add_argument(
        "--scale", default="reduced", choices=["tiny", "reduced", "paper"]
    )
    campaign_parser.add_argument("--quick", action="store_true",
                                 help="use fewer sweep points per experiment")
    campaign_parser.add_argument(
        "--only", nargs="+", metavar="ID", default=None,
        help="restrict the campaign to these experiment ids (e.g. table1 figure5)",
    )
    campaign_parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the markdown report to this file (default: print to stdout)",
    )
    campaign_parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="run experiments across N worker processes (default: 1, serial)",
    )
    campaign_parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist results in a content-addressed cache; repeated runs "
             "are served from it",
    )
    campaign_parser.add_argument(
        "--resume", action="store_true",
        help=f"resume from the result cache (defaults --cache-dir to "
             f"{DEFAULT_CACHE_DIR})",
    )
    campaign_parser.add_argument(
        "--timing", action="store_true",
        help="include wall-time lines in the report (makes the output "
             "non-deterministic across runs)",
    )
    campaign_parser.add_argument(
        "--telemetry-dir", metavar="DIR", default=None,
        help="collect span/counter telemetry during the campaign and write "
             "telemetry.json + telemetry_events.jsonl under DIR",
    )
    _add_stepping_arguments(campaign_parser)

    grid_parser = sub.add_parser(
        "grid",
        help="run a cartesian parameter grid of delta sweeps, one run "
             "directory per point",
    )
    grid_parser.add_argument(
        "--axis", action="append", metavar="NAME=V1,V2", default=None,
        help="grid axis (repeatable); axes: device, sync, pattern, network, "
             "stripe_kib, request_kib.  Default grid: device=hdd,ssd x "
             "sync=sync-on,sync-off x pattern=contiguous,strided",
    )
    grid_parser.add_argument("--scale", default="reduced", choices=["tiny", "reduced", "paper"])
    grid_parser.add_argument(
        "--points", type=_sweep_points, default=5,
        help="delta points per grid point (>= 3)",
    )
    grid_parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="run grid points across N worker processes",
    )
    grid_parser.add_argument(
        "--seed", type=int, default=0, help="master seed for per-task seeds"
    )
    grid_parser.add_argument(
        "--store", metavar="DIR", default="runs",
        help="persist each grid point as a run directory under DIR "
             "(default: runs/)",
    )
    grid_parser.add_argument(
        "--no-store", action="store_true", help="do not persist run directories"
    )
    grid_parser.add_argument("--csv", action="store_true",
                             help="print the summary table as CSV")

    verify_parser = sub.add_parser(
        "verify", help="verify the manifests of persisted run directories"
    )
    verify_parser.add_argument(
        "paths", nargs="+", metavar="RUN_DIR",
        help="run directories (or store roots containing them) to verify",
    )

    matrix_parser = sub.add_parser(
        "matrix",
        help="run the all-pairs interference matrix over workload archetypes",
    )
    matrix_parser.add_argument(
        "--archetypes", type=_archetype_list, required=True,
        metavar="NAME,NAME[,...]",
        help="at least two comma-separated workload archetypes; a bad name "
             "lists the registry (checkpoint, analytics, smallfile, ...)",
    )
    matrix_parser.add_argument(
        "--scale", default="tiny", choices=["tiny", "reduced", "paper"],
        help="scale preset for every run (default: tiny — the matrix "
             "multiplies run counts)",
    )
    matrix_parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="fan alone/pair runs across N worker processes",
    )
    matrix_parser.add_argument("--device", default="hdd", help="hdd, ssd, ram")
    matrix_parser.add_argument(
        "--sync", default="sync-on", choices=["sync-on", "sync-off", "null-aio"]
    )
    matrix_parser.add_argument("--network", default="10g", choices=["10g", "1g"])
    matrix_parser.add_argument(
        "--delay", type=float, default=0.0, metavar="SECONDS",
        help="start offset of the second workload of every pair (default: 0)",
    )
    matrix_parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"content-addressed result cache (default: {DEFAULT_CACHE_DIR}); "
             "a repeated matrix is a 100%% cache hit",
    )
    matrix_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    matrix_parser.add_argument(
        "--output", metavar="PATH", default="EXPERIMENTS.md",
        help="report file whose interference-matrix section is created or "
             "replaced in place (default: EXPERIMENTS.md)",
    )
    matrix_parser.add_argument(
        "--no-output", action="store_true",
        help="print the report to stdout instead of updating a file",
    )
    matrix_parser.add_argument(
        "--store", metavar="DIR", default=DEFAULT_STORE_DIR,
        help="persist matrix.json as a verifiable run directory under DIR "
             f"(default: {DEFAULT_STORE_DIR}/)",
    )
    matrix_parser.add_argument(
        "--no-store", action="store_true", help="do not persist matrix.json"
    )
    matrix_parser.add_argument(
        "--csv", action="store_true",
        help="print the ordered (victim, aggressor) slowdown table as CSV",
    )
    matrix_parser.add_argument(
        "--telemetry", action="store_true",
        help="collect span/counter telemetry during the campaign; the "
             "persisted run directory gains telemetry.json, "
             "telemetry_events.jsonl and a per-task manifest table "
             "(inspect with repro-io obs)",
    )
    matrix_parser.add_argument(
        "--no-batch", action="store_true",
        help="disable the batched lockstep kernel for same-cadence tasks and "
             "run every simulation scalar (results are bitwise identical "
             "either way; with --jobs N each planned bucket is one pool "
             "work unit, so batching and workers compose)",
    )
    matrix_parser.add_argument(
        "--task-timeout", type=_task_timeout, default=None, metavar="SECONDS",
        help="wall-clock deadline per task; a task exceeding it is "
             "interrupted and retried (default: no deadline).  With "
             "--jobs 1 only the in-process signal guard enforces it, which "
             "cannot interrupt a task stuck in native code — use --jobs 2 "
             "or more for the parent watchdog",
    )
    matrix_parser.add_argument(
        "--max-retries", type=_max_retries, default=2, metavar="N",
        help="retries per failing task before it is quarantined; the "
             "campaign always completes and quarantined tasks are listed "
             "in matrix.json/EXPERIMENTS.md (default: 2)",
    )
    matrix_parser.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted campaign: completed tasks are served "
             "from the result cache and the run's progress.jsonl journal "
             "reports how much survived",
    )
    _add_stepping_arguments(matrix_parser)

    perf_parser = sub.add_parser(
        "perf",
        help="measure stepping-kernel or campaign throughput and write the "
             "schema'd bench document (BENCH_stepper.json / "
             "BENCH_campaign.json)",
    )
    perf_parser.add_argument(
        "--campaign", action="store_true",
        help="measure the campaign grid instead of the stepper scenarios: "
             "cold+warm matrix wall over jobs x batch cells plus the "
             "batched-kernel curve; writes/gates BENCH_campaign.json",
    )
    perf_parser.add_argument(
        "--explain-buckets", action="store_true",
        help="print the bucket plan of the matrix over --archetypes "
             "(bucket widths, cadences, padded group-width sets, per-task "
             "fallback reasons) and exit without measuring",
    )
    perf_parser.add_argument(
        "--archetypes", type=_archetype_list, default=None,
        metavar="NAME,NAME[,...]",
        help="archetype set for --campaign / --explain-buckets (default: "
             "checkpoint,analytics,smallfile,incast)",
    )
    perf_parser.add_argument(
        "--scale", default="reduced", choices=["tiny", "reduced"],
        help="canonical scenario set to measure: 'tiny' (the CI smoke set) "
             "or 'reduced' (the full set, default; --campaign always runs "
             "its matrix at tiny)",
    )
    perf_parser.add_argument(
        "--repeats", type=_repeat_count, default=5, metavar="N",
        help="repeats per scenario; the minimum wall time is reported "
             "(default: 5)",
    )
    perf_parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the schema'd bench document here (default: "
             "BENCH_campaign.json with --campaign, else BENCH_stepper.json)",
    )
    perf_parser.add_argument(
        "--no-output", action="store_true",
        help="print the document to stdout instead of writing a file",
    )
    perf_parser.add_argument(
        "--profile", action="store_true",
        help="include a per-phase timing/allocation profile (one extra "
             "instrumented pass)",
    )
    perf_parser.add_argument(
        "--batch", action="append", type=_batch_size, default=None,
        metavar="B", dest="batch",
        help="also measure the batched lockstep kernel at width B "
             "(repeatable, e.g. --batch 8 --batch 32; the committed curve "
             "uses B in {1, 8, 32, 128})",
    )
    perf_parser.add_argument(
        "--check", action="store_true",
        help="compare the fresh measurement against --baseline and exit "
             "non-zero on a regression",
    )
    perf_parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="committed baseline document for --check (default: "
             "BENCH_campaign.json with --campaign, else BENCH_stepper.json)",
    )
    perf_parser.add_argument(
        "--min-ratio", type=_min_ratio, default=0.7, metavar="FRAC",
        help="allowed fraction of baseline throughput before --check fails "
             "(default: 0.7, i.e. a >30%% regression fails)",
    )
    perf_parser.add_argument(
        "--max-overhead", type=_max_overhead, default=None, metavar="FRAC",
        help="with --check, additionally fail when throughput falls more "
             "than FRAC below the baseline (e.g. 0.02 asserts the "
             "telemetry-disabled overhead stays within 2%%); off by default "
             "because it is a much tighter gate than --min-ratio",
    )

    obs_parser = sub.add_parser(
        "obs",
        help="inspect the telemetry of persisted runs (summary, export, diff)",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_summary = obs_sub.add_parser(
        "summary",
        help="report worker utilization, per-phase step timing and cache "
             "efficiency of one run's telemetry",
    )
    obs_summary.add_argument(
        "run_dir", metavar="RUN_DIR",
        help="run directory carrying telemetry.json (e.g. from "
             "repro-io matrix --telemetry)",
    )
    obs_export = obs_sub.add_parser(
        "export", help="export one run's telemetry to a trace format"
    )
    obs_export.add_argument("run_dir", metavar="RUN_DIR")
    obs_export.add_argument(
        "--format", dest="trace_format", default="chrome-trace",
        choices=["chrome-trace"],
        help="output format (chrome-trace loads in https://ui.perfetto.dev "
             "and chrome://tracing)",
    )
    obs_export.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="write the trace here (default: stdout)",
    )
    obs_diff = obs_sub.add_parser(
        "diff", help="compare the telemetry of two run directories"
    )
    obs_diff.add_argument("run_dir_a", metavar="RUN_DIR_A")
    obs_diff.add_argument("run_dir_b", metavar="RUN_DIR_B")

    cache_parser = sub.add_parser(
        "cache",
        help="maintain a content-addressed result cache (layout migration)",
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_migrate = cache_sub.add_parser(
        "migrate",
        help="move legacy flat-layout entries into the sharded "
             "objects/<aa>/ layout (idempotent; also sweeps stale *.tmp "
             "writer debris)",
    )
    cache_migrate.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"cache root to migrate in place (default: {DEFAULT_CACHE_DIR})",
    )

    lake_parser = sub.add_parser(
        "lake",
        help="query the result lake (every cached result across all runs): "
             "filter/sort/aggregate over keys and headline metrics",
    )
    lake_sub = lake_parser.add_subparsers(dest="lake_command", required=True)
    lake_query = lake_sub.add_parser(
        "query",
        help="filter, sort and aggregate lake entries; derived.* fields "
             "(dilation, slowdowns) join pair entries with their alone "
             "baselines",
    )
    lake_query.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"cache root holding objects/ + index.jsonl "
             f"(default: {DEFAULT_CACHE_DIR})",
    )
    lake_query.add_argument(
        "--where", action="append", type=_where_filter, default=None,
        metavar="FIELD[OP]VALUE",
        help="filter expression (repeatable, ANDed): field=value, "
             "field!=value, field~substr, field>n, field>=n, field<n, "
             "field<=n, or a bare field (present); fields are dotted paths "
             "like key.kind, headline.makespan, derived.dilation",
    )
    lake_query.add_argument(
        "--sort", type=_sort_spec, default=None, metavar="FIELD[:asc|:desc]",
        help="order results by a field (default direction: asc; entries "
             "missing the field sort last)",
    )
    lake_query.add_argument(
        "--limit", type=_row_limit, default=None, metavar="N",
        help="keep at most N rows after filtering and sorting",
    )
    lake_query.add_argument(
        "--columns", metavar="F1,F2,...",
        default="fingerprint,key.kind,key.task_id,key.scale",
        help="comma-separated fields of the result table (default: "
             "fingerprint,key.kind,key.task_id,key.scale); the sort field "
             "is appended automatically",
    )
    lake_query.add_argument(
        "--agg", action="append", type=_agg_spec, default=None,
        metavar="FN:FIELD",
        help="aggregate instead of listing rows: FN in "
             "min,max,mean,sum,count (repeatable)",
    )
    lake_query.add_argument(
        "--group-by", metavar="FIELD", default=None,
        help="group --agg aggregates by this field",
    )
    lake_query.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print full entries (or aggregate rows) as JSON instead of a "
             "table",
    )
    lake_stats = lake_sub.add_parser(
        "stats",
        help="report the lake's reconciliation state: entries, index lines, "
             "duplicates, ghosts, backfills",
    )
    lake_stats.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"cache root (default: {DEFAULT_CACHE_DIR})",
    )
    lake_stats.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the stats as JSON",
    )
    lake_compact = lake_sub.add_parser(
        "compact",
        help="rewrite index.jsonl from objects/: drops ghost and duplicate "
             "lines, backfills unindexed objects",
    )
    lake_compact.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"cache root to compact in place (default: {DEFAULT_CACHE_DIR})",
    )

    reproduce_parser = sub.add_parser(
        "reproduce",
        help="re-verify a persisted run end-to-end: checksum its artifacts, "
             "re-execute its recipe through the cached runner and diff the "
             "regenerated artifacts byte-for-byte",
    )
    reproduce_parser.add_argument(
        "run_dir", metavar="RUN_DIR",
        help="run directory to reproduce (a matrix run carries its full "
             "recipe in matrix.json)",
    )
    reproduce_parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"result cache for the re-execution (default: "
             f"{DEFAULT_CACHE_DIR}; the original run's cache makes "
             "reproduction a 100%% cache hit)",
    )
    reproduce_parser.add_argument(
        "--no-cache", action="store_true",
        help="re-execute without the result cache (every task recomputed)",
    )
    reproduce_parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="fan the re-execution across N worker processes",
    )
    reproduce_parser.add_argument(
        "--verify-only", action="store_true",
        help="stop after the checksum stage (equivalent to repro-io verify, "
             "in reproduce's per-artifact report format)",
    )
    reproduce_parser.add_argument(
        "--no-batch", action="store_true",
        help="disable the batched lockstep kernel during re-execution",
    )

    return parser


def _command_list() -> int:
    for entry in list_experiments():
        print(f"{entry.experiment_id:10s} {entry.paper_reference:22s} {entry.title}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    entry = get_experiment(args.experiment)
    result = entry.run(scale=args.scale, quick=args.quick)
    if args.csv:
        print(result.table_csv(args.csv), end="")
    else:
        print(result.report())
    return 0


def _command_sweep(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    kwargs = dict(
        device=args.device,
        sync_mode=args.sync,
        pattern=args.pattern,
        network=args.network,
        stripe_size=args.stripe_kib * units.KiB,
        partition_servers=args.partition_servers,
    )
    stepping = _stepping_policy(parser, args)
    if stepping is not None:
        kwargs["stepping"] = stepping
    if args.request_kib is not None:
        kwargs["request_size"] = args.request_kib * units.KiB
    experiment = TwoApplicationExperiment(args.scale, **kwargs)
    sweep = experiment.run_sweep(n_points=args.points, jobs=args.jobs)
    if args.csv:
        print(sweep_to_csv(sweep), end="")
        return 0
    print(format_delta_sweep(sweep))
    if args.plot:
        print()
        print(plot_delta_sweep(sweep))
    return 0


def _write_telemetry_files(telemetry, out_dir: str, run_id: Optional[str] = None) -> None:
    """Validate and write telemetry.json + telemetry_events.jsonl to a dir."""
    import json
    import os

    from repro.obs.schema import validate_telemetry_document
    from repro.obs.summary import TELEMETRY_DOCUMENT_NAME, TELEMETRY_EVENTS_NAME

    document = telemetry.to_document(run_id=run_id)
    validate_telemetry_document(document)
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, TELEMETRY_DOCUMENT_NAME), "w",
              encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(os.path.join(out_dir, TELEMETRY_EVENTS_NAME), "w",
              encoding="utf-8") as handle:
        handle.write(telemetry.events_jsonl())
    get_logger().info(
        "telemetry_written", dir=out_dir,
        spans=len(document["spans"]), counters=len(document["counters"]),
    )


def _command_campaign(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    # Imported lazily: the campaign machinery pulls in every experiment module.
    from repro.analysis.campaign import campaign_to_markdown, run_campaign
    from repro.obs.telemetry import NULL, Telemetry, set_telemetry

    log = get_logger()
    stepping = _stepping_policy(parser, args)
    cache_dir = args.cache_dir
    if args.resume and cache_dir is None:
        cache_dir = DEFAULT_CACHE_DIR

    def progress(experiment_id: str, record) -> None:
        origin = "cached" if record.from_cache else f"{record.wall_time:.1f}s"
        log.info(
            "campaign", experiment=experiment_id,
            agree=f"{record.n_agreeing}/{record.n_claims}", origin=origin,
        )

    telemetry = None
    if args.telemetry_dir:
        telemetry = Telemetry(label="campaign")
        set_telemetry(telemetry)
    try:
        if telemetry is not None:
            with telemetry.span(
                f"campaign:{args.scale}", category="campaign",
                scale=args.scale, jobs=args.jobs,
            ):
                campaign = run_campaign(
                    scale=args.scale, quick=args.quick, experiments=args.only,
                    progress=progress, jobs=args.jobs, cache_dir=cache_dir,
                    stepping=stepping,
                )
        else:
            campaign = run_campaign(
                scale=args.scale, quick=args.quick, experiments=args.only,
                progress=progress, jobs=args.jobs, cache_dir=cache_dir,
                stepping=stepping,
            )
    finally:
        if telemetry is not None:
            set_telemetry(NULL)
    if telemetry is not None:
        _write_telemetry_files(telemetry, args.telemetry_dir)
    text = campaign_to_markdown(campaign, include_timing=args.timing)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        log.info("report_written", path=args.output, summary=campaign.describe())
    else:
        print(text)
    return 0


def _command_grid(args: argparse.Namespace) -> int:
    # Imported lazily: keeps `repro-io list` style commands import-light.
    from repro.analysis.tables import rows_to_csv, rows_to_markdown
    from repro.runner.grid import ParameterGrid, run_grid

    if args.axis:
        grid = ParameterGrid.from_specs(args.axis)
    else:
        grid = ParameterGrid({
            "device": ["hdd", "ssd"],
            "sync": ["sync-on", "sync-off"],
            "pattern": ["contiguous", "strided"],
        })

    log = get_logger()

    def progress(point_id: str, point) -> None:
        log.info(
            "grid_point", point=point_id,
            peak_if=f"{point.summary['peak_interference_factor']:.2f}",
        )

    result = run_grid(
        grid,
        scale=args.scale,
        n_points=args.points,
        jobs=args.jobs,
        master_seed=args.seed,
        store_dir=None if args.no_store else args.store,
        progress=progress,
    )
    rows = result.to_rows()
    if args.csv:
        print(rows_to_csv(rows), end="")
    else:
        print(rows_to_markdown(rows))
    if result.store_root:
        log.info(
            "grid_persisted", runs=len(result), store=str(result.store_root),
            verify=f"repro-io verify {result.store_root}",
        )
    return 0


def _command_matrix(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    # Imported lazily: the matrix machinery pulls in the whole fleet stack.
    from repro.analysis.interference import (
        matrix_report_markdown,
        update_experiments_section,
    )
    from repro.analysis.tables import rows_to_csv
    from repro.obs.telemetry import NULL, Telemetry, set_telemetry
    from repro.runner.executor import FaultPolicy
    from repro.runner.journal import JOURNAL_NAME, ProgressJournal
    from repro.scenarios.matrix import (
        matrix_run_id,
        run_interference_matrix,
        store_matrix,
    )

    log = get_logger()
    stepping = _stepping_policy(parser, args)
    if args.telemetry and args.no_store:
        parser.error(
            "--telemetry persists into the run store; drop --no-store"
        )
    if args.resume and args.no_cache:
        parser.error(
            "--resume replays completed tasks from the result cache; "
            "drop --no-cache"
        )

    def progress(task_id: str, from_cache: bool) -> None:
        origin = "cached" if from_cache else "ran"
        log.info("matrix_task", task=task_id, origin=origin)

    fault_policy = FaultPolicy(
        task_timeout_s=args.task_timeout,
        max_retries=args.max_retries,
    )

    journal = None
    if not args.no_store:
        import os

        run_id = matrix_run_id(
            args.archetypes,
            args.scale,
            stepping=stepping,
            device=args.device,
            sync_mode=args.sync,
            network=args.network,
            delay=args.delay,
        )
        journal = ProgressJournal(
            os.path.join(args.store, run_id, JOURNAL_NAME)
        )
        if args.resume and journal.exists():
            survived = journal.completed()
            log.info(
                "matrix_resume",
                completed=len(survived),
                journal=str(journal.path),
            )

    telemetry = None
    if args.telemetry:
        telemetry = Telemetry(label="matrix")
        set_telemetry(telemetry)
    try:
        matrix = run_interference_matrix(
            args.archetypes,
            args.scale,
            jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
            stepping=stepping,
            progress=progress,
            batch=not args.no_batch,
            fault_policy=fault_policy,
            journal=journal,
            device=args.device,
            sync_mode=args.sync,
            network=args.network,
            delay=args.delay,
        )
    finally:
        if telemetry is not None:
            set_telemetry(NULL)

    if args.csv:
        print(rows_to_csv(matrix.to_rows()), end="")
    section = matrix_report_markdown(matrix)
    if args.no_output:
        if not args.csv:
            print(section)
    else:
        update_experiments_section(args.output, section)
        log.info("matrix_report", path=args.output, summary=matrix.describe())
    if not args.no_store:
        run_dir = store_matrix(matrix, args.store, telemetry=telemetry)
        log.info(
            "matrix_persisted", run_dir=run_dir,
            telemetry=bool(telemetry),
            verify=f"repro-io verify {run_dir}",
        )
        if telemetry is not None:
            log.info("telemetry_hint", summary=f"repro-io obs summary {run_dir}")
    if matrix.failed_tasks:
        log.error(
            "matrix_quarantine",
            failed=len(matrix.failed_tasks),
            tasks=",".join(f["task_id"] for f in matrix.failed_tasks),
            hint="completed results are cached; re-run to retry the "
                 "quarantined tasks",
        )
        return 1
    return 0


def _command_perf(args: argparse.Namespace) -> int:
    # Imported lazily: the perf harness pulls in the model stack.
    import json
    import os

    from repro.errors import PerfError
    from repro.perf import (
        check_overhead,
        check_regression,
        run_perf,
        validate_bench_document,
    )
    from repro.perf.compare import format_summary

    log = get_logger()

    if args.explain_buckets:
        from repro.perf.campaign import DEFAULT_CAMPAIGN_ARCHETYPES
        from repro.scenarios.matrix import explain_matrix_buckets

        archetypes = args.archetypes or list(DEFAULT_CAMPAIGN_ARCHETYPES)
        print(explain_matrix_buckets(archetypes, args.scale))
        return 0

    if args.campaign:
        return _perf_campaign(args, log)

    # The stepper bench: resolve the mode-dependent default paths.
    output = args.output or "BENCH_stepper.json"
    baseline_path = args.baseline or "BENCH_stepper.json"
    if args.max_overhead is not None and not args.check:
        log.error("perf_usage", error="--max-overhead requires --check")
        return 2

    # Load the baseline *before* measuring or writing anything: a gate run
    # must never overwrite its own reference (the default --output and
    # --baseline are the same committed file) and a missing/corrupt baseline
    # should fail before the expensive measurement.
    baseline = None
    if args.check:
        try:
            with open(baseline_path, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
            validate_bench_document(baseline)
        except FileNotFoundError:
            log.error("perf_fail", error=f"baseline {baseline_path} not found")
            return 1
        except (PerfError, json.JSONDecodeError) as exc:
            log.error("perf_fail", error=str(exc))
            return 1

    document = run_perf(
        scale=args.scale, repeats=args.repeats, profile=args.profile,
        batch_sizes=args.batch,
    )
    validate_bench_document(document)
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.no_output:
        print(text, end="")
    elif args.check and os.path.realpath(output) == os.path.realpath(baseline_path):
        log.info(
            "perf_skip_write",
            reason=f"not overwriting the baseline {baseline_path} during a "
                   "--check run; pass a different --output to keep the "
                   "measurement",
        )
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        log.info("perf_written", path=output)
    print(format_summary(document), file=sys.stderr)

    if not args.check:
        return 0
    try:
        failures = check_regression(document, baseline, min_ratio=args.min_ratio)
        if args.max_overhead is not None:
            failures += check_overhead(document, baseline, args.max_overhead)
    except PerfError as exc:
        log.error("perf_fail", error=str(exc))
        return 1
    if failures:
        for failure in failures:
            log.error("perf_regression", detail=failure)
        return 1
    gate = f"no scenario below {args.min_ratio:.0%} of {baseline_path}"
    if args.max_overhead is not None:
        gate += f"; overhead within {args.max_overhead:.1%}"
    log.info("perf_gate", status="green", detail=gate)
    return 0


def _perf_campaign(args: argparse.Namespace, log) -> int:
    """The ``repro-io perf --campaign`` mode: measure, write, optionally gate."""
    import json
    import os

    from repro.errors import PerfError
    from repro.perf.campaign import (
        DEFAULT_CAMPAIGN_ARCHETYPES,
        check_campaign_regression,
        format_campaign_summary,
        run_campaign_bench,
        validate_campaign_document,
    )

    if args.max_overhead is not None:
        log.error(
            "perf_usage",
            error="--max-overhead applies to the stepper bench only",
        )
        return 2
    output = args.output or "BENCH_campaign.json"
    baseline_path = args.baseline or "BENCH_campaign.json"

    baseline = None
    if args.check:
        try:
            with open(baseline_path, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
            validate_campaign_document(baseline)
        except FileNotFoundError:
            log.error("perf_fail", error=f"baseline {baseline_path} not found")
            return 1
        except (PerfError, json.JSONDecodeError) as exc:
            log.error("perf_fail", error=str(exc))
            return 1

    archetypes = args.archetypes or list(DEFAULT_CAMPAIGN_ARCHETYPES)
    document = run_campaign_bench(archetypes=archetypes, repeats=args.repeats)
    validate_campaign_document(document)
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.no_output:
        print(text, end="")
    elif args.check and os.path.realpath(output) == os.path.realpath(baseline_path):
        log.info(
            "perf_skip_write",
            reason=f"not overwriting the baseline {baseline_path} during a "
                   "--check run; pass a different --output to keep the "
                   "measurement",
        )
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        log.info("perf_written", path=output)
    print(format_campaign_summary(document), file=sys.stderr)

    if not args.check:
        return 0
    try:
        failures = check_campaign_regression(
            document, baseline, min_ratio=args.min_ratio
        )
    except PerfError as exc:
        log.error("perf_fail", error=str(exc))
        return 1
    if failures:
        for failure in failures:
            log.error("perf_regression", detail=failure)
        return 1
    log.info(
        "perf_gate", status="green",
        detail=f"grid byte-identical, zero ragged fallbacks, no kernel "
               f"throughput below {args.min_ratio:.0%} of {baseline_path}",
    )
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    """The ``repro-io cache`` maintenance commands."""
    from repro.runner.cache import ResultCache

    log = get_logger()
    if args.cache_command == "migrate":
        cache = ResultCache(args.cache_dir, tmp_max_age_s=0.0)
        moved = cache.migrate()
        log.info(
            "cache_migrated",
            cache_dir=args.cache_dir,
            moved=moved,
            swept_tmp=cache.swept_tmp,
            entries=len(cache.entries()),
        )
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


def _short_fingerprint(value: object) -> str:
    text = str(value)
    return text[:12] if len(text) > 12 else text


def _command_lake(args: argparse.Namespace) -> int:
    """The ``repro-io lake`` query/stats/compact commands."""
    import json

    from repro.analysis.tables import rows_to_markdown
    from repro.lake import aggregate_entries, load_lake, run_query

    log = get_logger()
    if args.lake_command == "compact":
        from repro.runner.cache import ResultCache

        stats = ResultCache(args.cache_dir).compact_index()
        log.info("lake_compacted", cache_dir=args.cache_dir, **stats)
        print(
            f"[lake] compacted {args.cache_dir}: {stats['entries']} entries, "
            f"dropped {stats['dropped_duplicates']} duplicates and "
            f"{stats['dropped_ghosts']} ghosts, backfilled "
            f"{stats['backfilled']}"
        )
        return 0

    view = load_lake(args.cache_dir)
    if args.lake_command == "stats":
        stats = {
            "root": view.root,
            "entries": len(view.entries),
            "index_lines": view.index_lines,
            "duplicates": view.duplicates,
            "ghosts": len(view.ghosts),
            "backfilled": len(view.backfilled),
            "unreadable": view.unreadable,
            "corrupt_lines": view.corrupt_lines,
            "coherent": view.coherent,
        }
        if args.as_json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"[lake] {view.root}")
        print(f"  entries     {stats['entries']}")
        print(f"  index lines {stats['index_lines']} "
              f"({stats['duplicates']} shadowed duplicates)")
        print(f"  ghosts      {stats['ghosts']}")
        print(f"  backfilled  {stats['backfilled']}")
        print(f"  unreadable  {stats['unreadable']}")
        if stats["corrupt_lines"]:
            print(f"  corrupt     {stats['corrupt_lines']} skipped index "
                  "lines (lake compact heals them)")
        verdict = "coherent" if view.coherent else (
            "incoherent (run repro-io lake compact)"
        )
        print(f"  index is {verdict}")
        return 0

    # lake query
    entries = run_query(
        view.entries,
        where=args.where or (),
        sort=args.sort,
        limit=args.limit,
    )
    if args.agg:
        rows = aggregate_entries(entries, args.agg, group_by=args.group_by)
        if args.as_json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        elif rows:
            print(rows_to_markdown(rows))
        else:
            print("[lake] no matching entries")
        return 0
    if args.group_by:
        log.warn("lake_usage", detail="--group-by has no effect without --agg")
    if args.as_json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if not entries:
        print("[lake] no matching entries")
        return 0
    from repro.lake.query import resolve_field

    columns = [c.strip() for c in args.columns.split(",") if c.strip()]
    if args.sort and args.sort[0] not in columns:
        columns.append(args.sort[0])
    rows = []
    for entry in entries:
        row = {}
        for column in columns:
            value = resolve_field(entry, column)
            if column == "fingerprint" and value is not None:
                value = _short_fingerprint(value)
            if isinstance(value, float):
                value = round(value, 6)
            row[column] = "" if value is None else value
        rows.append(row)
    print(rows_to_markdown(rows, columns=columns))
    print(f"{len(entries)} entries")
    return 0


def _command_reproduce(args: argparse.Namespace) -> int:
    """The ``repro-io reproduce`` verb: re-verify one run end-to-end."""
    from repro.lake.reproduce import reproduce_run

    report = reproduce_run(
        args.run_dir,
        cache_dir=None if args.no_cache else args.cache_dir,
        jobs=args.jobs,
        batch=not args.no_batch,
        verify_only=args.verify_only,
    )
    print(report.render())
    return 0 if report.ok else 1


def _command_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.runner.store import MANIFEST_NAME, RunStore, verify_manifest

    run_dirs: List[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if (path / MANIFEST_NAME).is_file():
            run_dirs.append(path)
        elif path.is_dir():
            found = RunStore(path).runs()
            if not found:
                print(f"[verify] FAIL {path}: no {MANIFEST_NAME} found")
                return 1
            run_dirs.extend(found)
        else:
            print(f"[verify] FAIL {path}: not a directory")
            return 1

    failures = 0
    for run_dir in run_dirs:
        ok, issues = verify_manifest(run_dir)
        status = "ok" if ok else "FAIL"
        print(f"[verify] {status:4s} {run_dir}")
        for issue in issues:
            print(f"         - {issue}")
        if ok:
            efficiency = _cache_efficiency_line(run_dir)
            if efficiency:
                print(f"         {efficiency}")
        failures += 0 if ok else 1
    print(f"[verify] {len(run_dirs) - failures}/{len(run_dirs)} runs verified")
    return 1 if failures else 0


def _cache_efficiency_line(run_dir) -> Optional[str]:
    """Cache-efficiency summary from a manifest's task table, if it has one."""
    from repro.runner.store import load_manifest

    tasks = load_manifest(run_dir).get("tasks")
    if not isinstance(tasks, dict) or not tasks:
        return None
    cached = sum(1 for t in tasks.values() if t.get("origin") == "cache")
    computed_wall = sum(
        float(t.get("wall_time_s", 0.0))
        for t in tasks.values()
        if t.get("origin") == "computed"
    )
    total = len(tasks)
    return (
        f"cache efficiency: {cached}/{total} tasks cached "
        f"({cached / total:.0%}), {computed_wall:.2f}s spent computing"
    )


def _command_obs(args: argparse.Namespace) -> int:
    import json

    from repro.errors import TelemetryError
    from repro.obs.export import to_chrome_trace, validate_chrome_trace
    from repro.obs.summary import (
        diff_documents,
        load_run_telemetry,
        summarize_document,
    )

    log = get_logger()
    try:
        if args.obs_command == "summary":
            document = load_run_telemetry(args.run_dir)
            print(summarize_document(document, args.run_dir))
        elif args.obs_command == "export":
            document = load_run_telemetry(args.run_dir)
            trace = to_chrome_trace(document)
            validate_chrome_trace(trace)
            text = json.dumps(trace, indent=1) + "\n"
            if args.output:
                with open(args.output, "w", encoding="utf-8") as handle:
                    handle.write(text)
                log.info(
                    "trace_written", path=args.output,
                    format=args.trace_format,
                    events=len(trace["traceEvents"]),
                )
            else:
                print(text, end="")
        elif args.obs_command == "diff":
            doc_a = load_run_telemetry(args.run_dir_a)
            doc_b = load_run_telemetry(args.run_dir_b)
            print(diff_documents(doc_a, doc_b, args.run_dir_a, args.run_dir_b))
    except TelemetryError as exc:
        log.error("obs_failed", error=str(exc))
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-io`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    try:
        return _dispatch(args, parser)
    except KeyboardInterrupt:
        # Exit code 130 = 128 + SIGINT.  Only campaign/matrix runs have
        # cache + journal resume semantics; other commands get the plain
        # one-liner so the hint never promises a --resume that isn't there.
        if getattr(args, "command", None) in ("campaign", "matrix"):
            print(
                "interrupted; completed tasks are cached — "
                "re-run with --resume to continue",
                file=sys.stderr,
            )
        else:
            print("interrupted", file=sys.stderr)
        return 130


def _dispatch(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "sweep":
        return _command_sweep(args, parser)
    if args.command == "campaign":
        return _command_campaign(args, parser)
    if args.command == "grid":
        return _command_grid(args)
    if args.command == "matrix":
        return _command_matrix(args, parser)
    if args.command == "verify":
        return _command_verify(args)
    if args.command == "perf":
        return _command_perf(args)
    if args.command == "obs":
        return _command_obs(args)
    if args.command == "cache":
        return _command_cache(args)
    if args.command == "lake":
        return _command_lake(args)
    if args.command == "reproduce":
        return _command_reproduce(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
