"""Unit helpers used throughout the library.

All internal quantities use SI base units:

* sizes in **bytes** (plain ``int`` or ``float``),
* times in **seconds** (``float``),
* bandwidths in **bytes per second** (``float``).

This module provides named constants and small conversion helpers so that
configuration code reads like the paper ("64 MB per process", "10 Gbps
Ethernet", "256 KB stripe size") while the simulator core never has to think
about units.

The binary prefixes (KiB/MiB/GiB) follow IEC 60027; the paper uses "MB"/"KB"
loosely for what are powers of two in PVFS and IOR, so the presets in
:mod:`repro.config` use the binary constants.
"""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "KB",
    "MB",
    "GB",
    "TB",
    "kib",
    "mib",
    "gib",
    "tib",
    "gbit_per_s",
    "mbit_per_s",
    "mb_per_s",
    "gb_per_s",
    "us",
    "ms",
    "minutes",
    "hours",
    "bytes_to_human",
    "bandwidth_to_human",
    "seconds_to_human",
    "parse_size",
    "parse_bandwidth",
]

# ---------------------------------------------------------------------------
# Size constants
# ---------------------------------------------------------------------------

#: One kibibyte (2**10 bytes).
KiB: int = 1024
#: One mebibyte (2**20 bytes).
MiB: int = 1024 * KiB
#: One gibibyte (2**30 bytes).
GiB: int = 1024 * MiB
#: One tebibyte (2**40 bytes).
TiB: int = 1024 * GiB

#: One kilobyte (10**3 bytes) — decimal variant, rarely used.
KB: int = 1000
#: One megabyte (10**6 bytes) — decimal variant, rarely used.
MB: int = 1000 * KB
#: One gigabyte (10**9 bytes) — decimal variant, rarely used.
GB: int = 1000 * MB
#: One terabyte (10**12 bytes) — decimal variant, rarely used.
TB: int = 1000 * GB


def kib(n: float) -> float:
    """Return ``n`` kibibytes expressed in bytes."""
    return float(n) * KiB


def mib(n: float) -> float:
    """Return ``n`` mebibytes expressed in bytes."""
    return float(n) * MiB


def gib(n: float) -> float:
    """Return ``n`` gibibytes expressed in bytes."""
    return float(n) * GiB


def tib(n: float) -> float:
    """Return ``n`` tebibytes expressed in bytes."""
    return float(n) * TiB


# ---------------------------------------------------------------------------
# Bandwidth constants
# ---------------------------------------------------------------------------


def gbit_per_s(n: float) -> float:
    """Return ``n`` gigabits per second expressed in bytes per second.

    A "10 G Ethernet" link therefore has a raw capacity of
    ``gbit_per_s(10) == 1.25e9`` bytes/s.  Protocol efficiency factors are
    applied separately in :class:`repro.config.platform.LinkSpec`.
    """
    return float(n) * 1e9 / 8.0


def mbit_per_s(n: float) -> float:
    """Return ``n`` megabits per second expressed in bytes per second."""
    return float(n) * 1e6 / 8.0


def mb_per_s(n: float) -> float:
    """Return ``n`` binary megabytes per second expressed in bytes/s."""
    return float(n) * MiB


def gb_per_s(n: float) -> float:
    """Return ``n`` binary gigabytes per second expressed in bytes/s."""
    return float(n) * GiB


# ---------------------------------------------------------------------------
# Time constants
# ---------------------------------------------------------------------------


def us(n: float) -> float:
    """Return ``n`` microseconds expressed in seconds."""
    return float(n) * 1e-6


def ms(n: float) -> float:
    """Return ``n`` milliseconds expressed in seconds."""
    return float(n) * 1e-3


def minutes(n: float) -> float:
    """Return ``n`` minutes expressed in seconds."""
    return float(n) * 60.0


def hours(n: float) -> float:
    """Return ``n`` hours expressed in seconds."""
    return float(n) * 3600.0


# ---------------------------------------------------------------------------
# Human-readable formatting
# ---------------------------------------------------------------------------

_SIZE_SUFFIXES = ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB"))


def bytes_to_human(n: float, precision: int = 2) -> str:
    """Format a byte count with a binary suffix.

    >>> bytes_to_human(64 * MiB)
    '64 MiB'
    >>> bytes_to_human(1536)
    '1.5 KiB'
    """
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for factor, suffix in _SIZE_SUFFIXES:
        if n >= factor:
            value = n / factor
            return f"{sign}{_trim(value, precision)} {suffix}"
    return f"{sign}{_trim(n, precision)} B"


def bandwidth_to_human(n: float, precision: int = 2) -> str:
    """Format a bandwidth (bytes/s) with a binary suffix.

    >>> bandwidth_to_human(mb_per_s(100))
    '100 MiB/s'
    """
    return bytes_to_human(n, precision) + "/s"


def seconds_to_human(t: float, precision: int = 2) -> str:
    """Format a duration in the most natural unit.

    >>> seconds_to_human(0.0005)
    '500 us'
    >>> seconds_to_human(42.0)
    '42 s'
    """
    t = float(t)
    sign = "-" if t < 0 else ""
    t = abs(t)
    if t == 0:
        return "0 s"
    if t < 1e-3:
        return f"{sign}{_trim(t * 1e6, precision)} us"
    if t < 1.0:
        return f"{sign}{_trim(t * 1e3, precision)} ms"
    if t < 120.0:
        return f"{sign}{_trim(t, precision)} s"
    if t < 7200.0:
        return f"{sign}{_trim(t / 60.0, precision)} min"
    return f"{sign}{_trim(t / 3600.0, precision)} h"


def _trim(value: float, precision: int) -> str:
    """Format ``value`` with at most ``precision`` decimals, no trailing zeros."""
    text = f"{value:.{precision}f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_SIZE_UNITS = {
    "b": 1,
    "kb": KB,
    "k": KiB,
    "kib": KiB,
    "mb": MB,
    "m": MiB,
    "mib": MiB,
    "gb": GB,
    "g": GiB,
    "gib": GiB,
    "tb": TB,
    "t": TiB,
    "tib": TiB,
}

_BANDWIDTH_UNITS = {
    "b/s": 1.0,
    "kb/s": float(KiB),
    "kib/s": float(KiB),
    "mb/s": float(MiB),
    "mib/s": float(MiB),
    "gb/s": float(GiB),
    "gib/s": float(GiB),
    "kbit/s": 1e3 / 8.0,
    "mbit/s": 1e6 / 8.0,
    "gbit/s": 1e9 / 8.0,
    "kbps": 1e3 / 8.0,
    "mbps": 1e6 / 8.0,
    "gbps": 1e9 / 8.0,
}


def parse_size(text: str | int | float) -> float:
    """Parse a human-written size like ``"64MiB"`` or ``"256 KB"`` into bytes.

    Bare numbers are returned unchanged (interpreted as bytes).  The decimal
    "KB"/"MB"/"GB" spellings map to decimal multipliers; the single-letter and
    IEC spellings map to binary multipliers (matching the paper's usage where
    "64 MB" means 64 MiB).

    Raises
    ------
    ValueError
        If the text cannot be parsed.
    """
    if isinstance(text, (int, float)):
        return float(text)
    stripped = text.strip().lower().replace(" ", "")
    if not stripped:
        raise ValueError("empty size string")
    idx = len(stripped)
    while idx > 0 and not (stripped[idx - 1].isdigit() or stripped[idx - 1] == "."):
        idx -= 1
    number, unit = stripped[:idx], stripped[idx:]
    if not number:
        raise ValueError(f"no numeric part in size {text!r}")
    try:
        value = float(number)
    except ValueError as exc:  # pragma: no cover - defensive
        raise ValueError(f"invalid numeric part in size {text!r}") from exc
    if not unit:
        return value
    if unit not in _SIZE_UNITS:
        raise ValueError(f"unknown size unit {unit!r} in {text!r}")
    return value * _SIZE_UNITS[unit]


def parse_bandwidth(text: str | int | float) -> float:
    """Parse a human-written bandwidth like ``"10Gbps"`` into bytes per second.

    Bare numbers are returned unchanged (interpreted as bytes/s).

    Raises
    ------
    ValueError
        If the text cannot be parsed.
    """
    if isinstance(text, (int, float)):
        return float(text)
    stripped = text.strip().lower().replace(" ", "")
    if not stripped:
        raise ValueError("empty bandwidth string")
    idx = len(stripped)
    while idx > 0 and not (stripped[idx - 1].isdigit() or stripped[idx - 1] == "."):
        idx -= 1
    number, unit = stripped[:idx], stripped[idx:]
    if not number:
        raise ValueError(f"no numeric part in bandwidth {text!r}")
    value = float(number)
    if not unit:
        return value
    if unit not in _BANDWIDTH_UNITS:
        raise ValueError(f"unknown bandwidth unit {unit!r} in {text!r}")
    return value * _BANDWIDTH_UNITS[unit]
