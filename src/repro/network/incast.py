"""Server receive buffers and the admission model (the Incast locus).

Each storage server has a bounded staging buffer between the network and the
backend.  Clients push data into it (admission) and the backend drains it.
When the backend is slow the buffer is persistently full; admission becomes a
race for the little space freed each instant, which established connections
tend to win — the flow-control breakdown the paper identifies as the root of
unfair interference.

:class:`ServerBuffers` owns the per-server occupancy and the per-connection
"bytes currently in the buffer" accounting, and implements:

* :meth:`admit` — weighted, possibly starving admission of offered bytes,
* :meth:`drain` — removal of drained bytes with per-connection attribution,
* occupancy/pressure queries used for effective-RTT and root-cause analysis.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.network.allocation import admission_order_keys, allocate_greedy_in_order

__all__ = ["ServerBuffers"]


class ServerBuffers:
    """Receive/staging buffers of every server in the deployment.

    Parameters
    ----------
    n_servers:
        Number of servers.
    capacity_bytes:
        Buffer capacity per server (same for every server).
    conn_server:
        Array mapping each connection index to its server index.
    """

    def __init__(
        self,
        n_servers: int,
        capacity_bytes: float,
        conn_server: np.ndarray,
    ) -> None:
        if n_servers <= 0:
            raise SimulationError("n_servers must be positive")
        if capacity_bytes <= 0:
            raise SimulationError("capacity_bytes must be positive")
        self.n_servers = int(n_servers)
        self.capacity = float(capacity_bytes)
        self.conn_server = np.asarray(conn_server, dtype=np.int64)
        if self.conn_server.size and (
            self.conn_server.min() < 0 or self.conn_server.max() >= n_servers
        ):
            raise SimulationError("conn_server contains out-of-range server indices")
        n_conns = self.conn_server.shape[0]
        #: Step-invariant per-server connection groups (ascending connection
        #: indices, exactly the order a boolean ``conn_server == s`` mask
        #: yields), computed once so the admission path never rescans the
        #: mapping array.
        self._server_conn_ids = [
            np.flatnonzero(self.conn_server == s) for s in range(self.n_servers)
        ]
        # The groups stack into one padded (n_servers, K) index matrix, K
        # being the widest group: short rows are padded by repeating their
        # last real connection index (the pad slots are gathered but never
        # read — every reduction slices the row to its true width) and the
        # admission water-filling runs as row-wise 2D ops per *width class*
        # instead of a per-server loop.  Slicing each class to its width
        # preserves NumPy's pairwise-summation tree, so a ragged or batched
        # deployment admits bit-for-bit what each group would admit alone.
        widths = np.array(
            [ids.shape[0] for ids in self._server_conn_ids], dtype=np.int64
        )
        self._group_widths = widths
        max_width = int(widths.max()) if n_conns else 0
        if max_width > 0:
            matrix = np.zeros((self.n_servers, max_width), dtype=np.int64)
            for s, ids in enumerate(self._server_conn_ids):
                w = ids.shape[0]
                if w:
                    matrix[s, :w] = ids
                    matrix[s, w:] = ids[-1]
            self._group_matrix: Optional[np.ndarray] = matrix
            self._group_flat = matrix.reshape(-1)
            self._demands_2d = np.empty(matrix.shape, dtype=np.float64)
            self._demands_flat = self._demands_2d.reshape(-1)
            #: (width, row indices, (m, width) connection matrix) per distinct
            #: nonzero group width, ascending — the units the water-filling
            #: vectorizes over.
            self._width_classes = [
                (w, rows, matrix[rows, :w])
                for w in sorted({int(x) for x in widths} - {0})
                for rows in (np.flatnonzero(widths == w),)
            ]
            self._uniform_groups = (
                len(self._width_classes) == 1
                and self._width_classes[0][0] == max_width
                and self._width_classes[0][1].shape[0] == self.n_servers
            )
        else:
            self._group_matrix = None
            self._width_classes = []
            self._uniform_groups = False
        #: Gathered-but-ignored slots of the padded group matrix — the
        #: padding waste masked batching pays per admission call.
        self.padded_slots = (
            int((max_width - widths).sum()) if max_width > 0 else 0
        )
        #: Total slots of the padded group matrix (real + padding).
        self.group_slots = int(self.n_servers * max_width)
        self._weights_all_ones = False
        # Scratch buffers reused by admit()/drain(); holding them here keeps
        # the per-step allocation count flat without changing any result.
        self._scratch_capacity = np.zeros(self.n_servers, dtype=np.float64)
        self._scratch_fraction = np.zeros(self.n_servers, dtype=np.float64)
        self._scratch_conn = np.zeros(n_conns, dtype=np.float64)
        self._validated_weights: Optional[np.ndarray] = None
        #: Bytes currently buffered per server.
        self.fill = np.zeros(self.n_servers, dtype=np.float64)
        #: Bytes currently buffered per connection.
        self.conn_bytes = np.zeros(n_conns, dtype=np.float64)
        #: Cumulative bytes admitted per server.
        self.total_admitted = np.zeros(self.n_servers, dtype=np.float64)
        #: Cumulative bytes drained per server.
        self.total_drained = np.zeros(self.n_servers, dtype=np.float64)
        #: Step weight each server spent with a (nearly) full buffer.  Under
        #: the fixed stepping policy every step weighs 1 and these are plain
        #: step counts; the adaptive policy weighs a collapsed quiescent jump
        #: as the number of base steps it replaced, keeping the pressure
        #: fraction time-weighted and therefore comparable across policies.
        self.full_steps = np.zeros(self.n_servers, dtype=np.float64)
        self.observed_steps = 0.0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def n_connections(self) -> int:
        """Number of connections known to the buffers."""
        return self.conn_bytes.shape[0]

    def free_space(self) -> np.ndarray:
        """Free bytes per server."""
        return np.maximum(self.capacity - self.fill, 0.0)

    def occupancy_fraction(self) -> np.ndarray:
        """Buffer occupancy per server in [0, 1]."""
        return np.clip(self.fill / self.capacity, 0.0, 1.0)

    def queueing_delay(self, drain_rate: np.ndarray) -> np.ndarray:
        """Expected time for a newly admitted byte to reach the backend.

        ``drain_rate`` is the per-server drain bandwidth (bytes/s); servers
        with an (almost) idle backend report zero delay.
        """
        drain_rate = np.maximum(np.asarray(drain_rate, dtype=np.float64), 1e-9)
        return self.fill / drain_rate

    def pressure_fraction(self) -> np.ndarray:
        """Fraction of observed steps each server spent with a full buffer."""
        if self.observed_steps == 0:
            return np.zeros(self.n_servers, dtype=np.float64)
        return self.full_steps / float(self.observed_steps)

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def admit(
        self,
        offered: np.ndarray,
        weights: np.ndarray,
        extra_capacity: Optional[np.ndarray] = None,
        max_admission: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Admit offered bytes into the buffers.

        Parameters
        ----------
        offered:
            Bytes each connection offers this step.
        weights:
            Admission weights (established connections > newcomers).
        extra_capacity:
            Optional additional per-server capacity admitted this step beyond
            the currently free space (bytes drained during the same step may
            be re-used); defaults to zero.
        max_admission:
            Optional per-server cap on the bytes admitted this step (e.g. the
            server NIC capacity for the step).
        rng:
            Random generator for the weighted admission order.  If ``None``,
            admission falls back to purely proportional sharing (used by
            deterministic unit tests).

        Returns
        -------
        (admitted, oversubscribed):
            ``admitted`` — bytes accepted per connection;
            ``oversubscribed`` — boolean per connection, True when its server
            could not accept everything offered to it.
        """
        offered = np.asarray(offered, dtype=np.float64)
        if offered.shape[0] != self.n_connections:
            raise SimulationError("offered has the wrong number of connections")
        capacity = self._scratch_capacity
        np.subtract(self.capacity, self.fill, out=capacity)
        np.maximum(capacity, 0.0, out=capacity)
        scratch = self._scratch_fraction
        if extra_capacity is not None:
            np.maximum(np.asarray(extra_capacity, dtype=np.float64), 0.0, out=scratch)
            np.add(capacity, scratch, out=capacity)
        if max_admission is not None:
            np.maximum(np.asarray(max_admission, dtype=np.float64), 0.0, out=scratch)
            np.minimum(capacity, scratch, out=capacity)

        offered_per_server = np.bincount(
            self.conn_server, weights=offered, minlength=self.n_servers
        )
        oversub_server = offered_per_server > capacity + 1e-9

        if rng is None:
            admitted = self._admit_proportional(offered, weights, capacity, offered_per_server)
        else:
            keys = admission_order_keys(np.asarray(weights, dtype=np.float64), rng)
            admitted = allocate_greedy_in_order(offered, keys, self.conn_server, capacity)

        self.conn_bytes += admitted
        admitted_per_server = np.bincount(
            self.conn_server, weights=admitted, minlength=self.n_servers
        )
        self.fill += admitted_per_server
        self.total_admitted += admitted_per_server
        oversubscribed = oversub_server[self.conn_server]
        return admitted, oversubscribed

    def _admit_proportional(
        self,
        offered: np.ndarray,
        weights: np.ndarray,
        capacity: np.ndarray,
        offered_per_server: np.ndarray,
    ) -> np.ndarray:
        """Deterministic proportional admission, one water-filling per server.

        The water-filling runs vectorized across servers per group-width
        class (:meth:`_admit_proportional_stacked`), bit-for-bit equivalent
        to the canonical :func:`~repro.network.allocation.proportional_share`
        applied per server on the cached index groups — including ragged
        deployments, where each width class stacks its own rows.
        """
        weights = np.asarray(weights, dtype=np.float64)
        # The stepper passes the same frozen (non-writeable) unit-weight
        # array every step; identity-caching the validation and the all-ones
        # flag is only sound for arrays that cannot be mutated in place, so
        # writeable arrays are re-examined on every call.
        if weights is self._validated_weights:
            all_ones = self._weights_all_ones
        else:
            if np.any(weights <= 0):
                raise ValueError("weights must be positive")
            all_ones = bool((weights == 1.0).all())
            if not weights.flags.writeable:
                self._validated_weights = weights
                self._weights_all_ones = all_ones
        if self._group_matrix is not None:
            return self._admit_proportional_stacked(offered, weights, capacity, all_ones)
        return np.zeros_like(offered)  # no connections at all

    def _admit_proportional_stacked(
        self,
        offered: np.ndarray,
        weights: np.ndarray,
        capacity: np.ndarray,
        all_ones: bool,
    ) -> np.ndarray:
        """Row-per-server vectorization of the proportional water-filling.

        Works on the ``(n_servers, K)`` gathered demand matrix, one pass per
        group-width class over that class's ``[:, :w]`` slice.  Row-wise
        reductions (``sum(axis=1)``) use the same pairwise summation over the
        same contiguous element order as the per-group ``demands.sum()`` of
        the scalar path (slicing to the true width is what keeps the
        summation tree identical — padded slots never enter a reduction),
        and dead rows (capacity exhausted / all satisfied — the scalar
        path's early ``break``) are frozen by zeroing their takes, so the
        result is bit-for-bit the same.
        """
        offered.take(self._group_flat, out=self._demands_flat)
        if self._uniform_groups:
            # Single full-width class: operate on the reused buffer directly,
            # no row gather — the common every-app-stripes-everywhere path.
            alloc = self._water_fill_rows(
                self._demands_2d, capacity, self._group_matrix, weights, all_ones
            )
            admitted = np.zeros_like(offered)
            admitted[self._group_flat] = alloc.reshape(-1)
            return admitted
        admitted = np.zeros_like(offered)
        for w, rows, class_matrix in self._width_classes:
            demands = self._demands_2d[rows, :w]        # (m, w), rows contiguous
            alloc = self._water_fill_rows(
                demands, capacity[rows], class_matrix, weights, all_ones
            )
            admitted[class_matrix.reshape(-1)] = alloc.reshape(-1)
        return admitted

    @staticmethod
    def _water_fill_rows(
        demands: np.ndarray,
        capacity: np.ndarray,
        matrix: np.ndarray,
        weights: np.ndarray,
        all_ones: bool,
    ) -> np.ndarray:
        """The stacked water-filling kernel for one ``(m, w)`` row block."""
        total = demands.sum(axis=1)
        has_room = capacity > 0
        fits = has_room & (total <= capacity)
        over = has_room & (total > capacity)
        all_over = bool(over.all())
        if all_over:
            alloc = None                                # every row water-fills
        else:
            alloc = np.zeros_like(demands)
            alloc[fits] = demands[fits]
        if all_over or over.any():
            rows = demands if all_over else demands[over]   # (m, k)
            if all_ones:
                # where(unsat, 1.0, 0.0) with a scalar produces the same
                # values as with an explicit unit-weight row; skip the gather.
                row_weights: object = 1.0
            else:
                row_weights = weights[matrix if all_over else matrix[over]]
            row_alloc = np.zeros_like(rows)
            remaining = capacity.copy() if all_over else capacity[over].copy()
            unsatisfied = rows > 0
            for _ in range(4):
                w = np.where(unsatisfied, row_weights, 0.0)
                w_sum = w.sum(axis=1)
                live = (remaining > 1e-12) & (w_sum > 0)
                if not live.any():
                    break
                w_sum_safe = np.where(live, w_sum, 1.0)
                offer = remaining[:, None] * w / w_sum_safe[:, None]
                take = np.minimum(offer, rows - row_alloc)
                take[~live] = 0.0
                row_alloc += take
                remaining -= take.sum(axis=1)
                unsatisfied = (rows - row_alloc) > 1e-9
            if all_over:
                alloc = row_alloc
            else:
                alloc[over] = row_alloc
        return alloc

    # ------------------------------------------------------------------ #
    # Drain
    # ------------------------------------------------------------------ #

    def drain(self, drain_capacity: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Drain up to ``drain_capacity`` bytes per server toward the backend.

        Drained bytes are attributed to connections proportionally to their
        buffered bytes (a fluid approximation of FIFO service).

        Returns
        -------
        (drained_per_server, drained_per_conn)
        """
        drain_capacity = np.asarray(drain_capacity, dtype=np.float64)
        if drain_capacity.shape[0] != self.n_servers:
            raise SimulationError("drain_capacity has the wrong number of servers")
        np.maximum(drain_capacity, 0.0, out=self._scratch_capacity)
        drained_per_server = np.minimum(self.fill, self._scratch_capacity)
        # An empty buffer drains exactly 0.0 bytes, so 0 / max(0, tiny) is the
        # same +0.0 a guarded where() would select — no special case needed.
        fraction = self._scratch_fraction
        np.maximum(self.fill, 1e-300, out=fraction)
        np.divide(drained_per_server, fraction, out=fraction)
        np.take(fraction, self.conn_server, out=self._scratch_conn)
        drained_per_conn = self.conn_bytes * self._scratch_conn
        self.conn_bytes -= drained_per_conn
        # Snap tiny residues to zero so fragments complete crisply.
        self.conn_bytes[self.conn_bytes < 1e-6] = 0.0
        # In-place so views of fill (the batched kernel re-points members at
        # slices of one flat array) stay live across steps.
        self.fill[:] = np.bincount(
            self.conn_server, weights=self.conn_bytes, minlength=self.n_servers
        )
        self.total_drained += drained_per_server
        return drained_per_server, drained_per_conn

    def note_step(self, full_threshold: float = 0.95, weight: float = 1.0) -> None:
        """Record occupancy statistics for one step (for root-cause analysis).

        ``weight`` is the step's worth in base-step units (1 under the fixed
        policy; ``dt / base_dt`` for an adaptive jump).
        """
        self.observed_steps += weight
        occupancy = self._scratch_fraction
        np.divide(self.fill, self.capacity, out=occupancy)
        np.clip(occupancy, 0.0, 1.0, out=occupancy)
        self.full_steps[occupancy >= full_threshold] += weight

    def reset(self) -> None:
        """Clear all state (buffers and statistics)."""
        self.fill[:] = 0.0
        self.conn_bytes[:] = 0.0
        self.total_admitted[:] = 0.0
        self.total_drained[:] = 0.0
        self.full_steps[:] = 0.0
        self.observed_steps = 0.0
