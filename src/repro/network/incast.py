"""Server receive buffers and the admission model (the Incast locus).

Each storage server has a bounded staging buffer between the network and the
backend.  Clients push data into it (admission) and the backend drains it.
When the backend is slow the buffer is persistently full; admission becomes a
race for the little space freed each instant, which established connections
tend to win — the flow-control breakdown the paper identifies as the root of
unfair interference.

:class:`ServerBuffers` owns the per-server occupancy and the per-connection
"bytes currently in the buffer" accounting, and implements:

* :meth:`admit` — weighted, possibly starving admission of offered bytes,
* :meth:`drain` — removal of drained bytes with per-connection attribution,
* occupancy/pressure queries used for effective-RTT and root-cause analysis.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.network.allocation import admission_order_keys, allocate_greedy_in_order

__all__ = ["ServerBuffers"]


class ServerBuffers:
    """Receive/staging buffers of every server in the deployment.

    Parameters
    ----------
    n_servers:
        Number of servers.
    capacity_bytes:
        Buffer capacity per server (same for every server).
    conn_server:
        Array mapping each connection index to its server index.
    """

    def __init__(
        self,
        n_servers: int,
        capacity_bytes: float,
        conn_server: np.ndarray,
    ) -> None:
        if n_servers <= 0:
            raise SimulationError("n_servers must be positive")
        if capacity_bytes <= 0:
            raise SimulationError("capacity_bytes must be positive")
        self.n_servers = int(n_servers)
        self.capacity = float(capacity_bytes)
        self.conn_server = np.asarray(conn_server, dtype=np.int64)
        if self.conn_server.size and (
            self.conn_server.min() < 0 or self.conn_server.max() >= n_servers
        ):
            raise SimulationError("conn_server contains out-of-range server indices")
        n_conns = self.conn_server.shape[0]
        #: Bytes currently buffered per server.
        self.fill = np.zeros(self.n_servers, dtype=np.float64)
        #: Bytes currently buffered per connection.
        self.conn_bytes = np.zeros(n_conns, dtype=np.float64)
        #: Cumulative bytes admitted per server.
        self.total_admitted = np.zeros(self.n_servers, dtype=np.float64)
        #: Cumulative bytes drained per server.
        self.total_drained = np.zeros(self.n_servers, dtype=np.float64)
        #: Step weight each server spent with a (nearly) full buffer.  Under
        #: the fixed stepping policy every step weighs 1 and these are plain
        #: step counts; the adaptive policy weighs a collapsed quiescent jump
        #: as the number of base steps it replaced, keeping the pressure
        #: fraction time-weighted and therefore comparable across policies.
        self.full_steps = np.zeros(self.n_servers, dtype=np.float64)
        self.observed_steps = 0.0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def n_connections(self) -> int:
        """Number of connections known to the buffers."""
        return self.conn_bytes.shape[0]

    def free_space(self) -> np.ndarray:
        """Free bytes per server."""
        return np.maximum(self.capacity - self.fill, 0.0)

    def occupancy_fraction(self) -> np.ndarray:
        """Buffer occupancy per server in [0, 1]."""
        return np.clip(self.fill / self.capacity, 0.0, 1.0)

    def queueing_delay(self, drain_rate: np.ndarray) -> np.ndarray:
        """Expected time for a newly admitted byte to reach the backend.

        ``drain_rate`` is the per-server drain bandwidth (bytes/s); servers
        with an (almost) idle backend report zero delay.
        """
        drain_rate = np.maximum(np.asarray(drain_rate, dtype=np.float64), 1e-9)
        return self.fill / drain_rate

    def pressure_fraction(self) -> np.ndarray:
        """Fraction of observed steps each server spent with a full buffer."""
        if self.observed_steps == 0:
            return np.zeros(self.n_servers, dtype=np.float64)
        return self.full_steps / float(self.observed_steps)

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def admit(
        self,
        offered: np.ndarray,
        weights: np.ndarray,
        extra_capacity: Optional[np.ndarray] = None,
        max_admission: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Admit offered bytes into the buffers.

        Parameters
        ----------
        offered:
            Bytes each connection offers this step.
        weights:
            Admission weights (established connections > newcomers).
        extra_capacity:
            Optional additional per-server capacity admitted this step beyond
            the currently free space (bytes drained during the same step may
            be re-used); defaults to zero.
        max_admission:
            Optional per-server cap on the bytes admitted this step (e.g. the
            server NIC capacity for the step).
        rng:
            Random generator for the weighted admission order.  If ``None``,
            admission falls back to purely proportional sharing (used by
            deterministic unit tests).

        Returns
        -------
        (admitted, oversubscribed):
            ``admitted`` — bytes accepted per connection;
            ``oversubscribed`` — boolean per connection, True when its server
            could not accept everything offered to it.
        """
        offered = np.asarray(offered, dtype=np.float64)
        if offered.shape[0] != self.n_connections:
            raise SimulationError("offered has the wrong number of connections")
        capacity = self.free_space()
        if extra_capacity is not None:
            capacity = capacity + np.maximum(np.asarray(extra_capacity, dtype=np.float64), 0.0)
        if max_admission is not None:
            capacity = np.minimum(
                capacity, np.maximum(np.asarray(max_admission, dtype=np.float64), 0.0)
            )

        offered_per_server = np.bincount(
            self.conn_server, weights=offered, minlength=self.n_servers
        )
        oversub_server = offered_per_server > capacity + 1e-9

        if rng is None:
            # Deterministic proportional fallback.
            from repro.network.allocation import proportional_share

            admitted = np.zeros_like(offered)
            for s in np.flatnonzero(offered_per_server > 0):
                mask = self.conn_server == s
                admitted[mask] = proportional_share(
                    offered[mask], float(capacity[s]), weights=np.asarray(weights)[mask]
                )
        else:
            keys = admission_order_keys(np.asarray(weights, dtype=np.float64), rng)
            admitted = allocate_greedy_in_order(offered, keys, self.conn_server, capacity)

        self.conn_bytes += admitted
        admitted_per_server = np.bincount(
            self.conn_server, weights=admitted, minlength=self.n_servers
        )
        self.fill += admitted_per_server
        self.total_admitted += admitted_per_server
        oversubscribed = oversub_server[self.conn_server]
        return admitted, oversubscribed

    # ------------------------------------------------------------------ #
    # Drain
    # ------------------------------------------------------------------ #

    def drain(self, drain_capacity: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Drain up to ``drain_capacity`` bytes per server toward the backend.

        Drained bytes are attributed to connections proportionally to their
        buffered bytes (a fluid approximation of FIFO service).

        Returns
        -------
        (drained_per_server, drained_per_conn)
        """
        drain_capacity = np.maximum(np.asarray(drain_capacity, dtype=np.float64), 0.0)
        if drain_capacity.shape[0] != self.n_servers:
            raise SimulationError("drain_capacity has the wrong number of servers")
        drained_per_server = np.minimum(self.fill, drain_capacity)
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = np.where(self.fill > 0, drained_per_server / np.maximum(self.fill, 1e-300), 0.0)
        drained_per_conn = self.conn_bytes * fraction[self.conn_server]
        self.conn_bytes -= drained_per_conn
        # Snap tiny residues to zero so fragments complete crisply.
        self.conn_bytes[self.conn_bytes < 1e-6] = 0.0
        self.fill = np.bincount(self.conn_server, weights=self.conn_bytes, minlength=self.n_servers)
        self.total_drained += drained_per_server
        return drained_per_server, drained_per_conn

    def note_step(self, full_threshold: float = 0.95, weight: float = 1.0) -> None:
        """Record occupancy statistics for one step (for root-cause analysis).

        ``weight`` is the step's worth in base-step units (1 under the fixed
        policy; ``dt / base_dt`` for an adaptive jump).
        """
        self.observed_steps += weight
        self.full_steps[self.occupancy_fraction() >= full_threshold] += weight

    def reset(self) -> None:
        """Clear all state (buffers and statistics)."""
        self.fill[:] = 0.0
        self.conn_bytes[:] = 0.0
        self.total_admitted[:] = 0.0
        self.total_drained[:] = 0.0
        self.full_steps[:] = 0.0
        self.observed_steps = 0.0
