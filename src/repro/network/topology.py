"""Storage-network topology.

The paper's testbed connects all compute nodes and storage servers through a
single 10 Gbps Ethernet switch, so the topology is a star: every node has an
uplink to the fabric and every server a downlink from it.  The fabric itself
is assumed non-blocking (the paper's server-partitioning experiment shows the
switch core is not the point of contention), but the class keeps per-link
accounting so that assumption can be checked a posteriori.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.config.network import NetworkConfig
from repro.errors import ConfigurationError, SimulationError
from repro.network.link import Link
from repro.network.nic import NIC

__all__ = ["StarTopology"]


class StarTopology:
    """A single-switch topology with per-endpoint links.

    Parameters
    ----------
    n_client_nodes:
        Number of compute nodes.
    n_servers:
        Number of storage servers.
    network:
        Link-rate configuration.
    """

    def __init__(self, n_client_nodes: int, n_servers: int, network: NetworkConfig) -> None:
        if n_client_nodes <= 0 or n_servers <= 0:
            raise ConfigurationError("topology needs at least one node and one server")
        self.network = network
        self.client_nics: List[NIC] = [
            NIC(node_id=i, line_rate=network.client_nic_bw, injection_bw=network.node_injection_bw)
            for i in range(n_client_nodes)
        ]
        self.server_downlinks: List[Link] = [
            Link(name=f"fabric->server{s}", capacity=network.server_nic_bw)
            for s in range(n_servers)
        ]
        # Per-link accounting lives in flat arrays so the per-step hot path
        # (record_step) is a handful of vectorized ops instead of a Python
        # loop over NIC/Link objects.  The objects above only carry names and
        # capacities (construction-time validation, report labels): their own
        # per-object counters are NOT fed by record_step — read utilization
        # through this class's report methods, never through the objects.
        self._node_capacity = np.array(
            [nic.effective_bw for nic in self.client_nics], dtype=np.float64
        )
        self._server_capacity = np.array(
            [link.capacity for link in self.server_downlinks], dtype=np.float64
        )
        self._node_busy = np.zeros(n_client_nodes, dtype=np.float64)
        self._node_transferred = np.zeros(n_client_nodes, dtype=np.float64)
        self._server_busy = np.zeros(n_servers, dtype=np.float64)
        self._server_transferred = np.zeros(n_servers, dtype=np.float64)
        self._observed_time = 0.0
        self._scratch_node = np.empty(n_client_nodes, dtype=np.float64)
        self._scratch_node2 = np.empty(n_client_nodes, dtype=np.float64)
        self._scratch_server = np.empty(n_servers, dtype=np.float64)
        self._scratch_server2 = np.empty(n_servers, dtype=np.float64)

    # ------------------------------------------------------------------ #

    @property
    def n_client_nodes(self) -> int:
        """Number of compute nodes in the topology."""
        return len(self.client_nics)

    @property
    def n_servers(self) -> int:
        """Number of storage servers in the topology."""
        return len(self.server_downlinks)

    def node_capacities(self) -> np.ndarray:
        """Per-node usable injection bandwidth (bytes/s)."""
        return np.array([nic.effective_bw for nic in self.client_nics], dtype=np.float64)

    def server_capacities(self) -> np.ndarray:
        """Per-server downlink bandwidth (bytes/s)."""
        return np.array([link.capacity for link in self.server_downlinks], dtype=np.float64)

    def record_step(
        self,
        per_node_bytes: np.ndarray,
        per_server_bytes: np.ndarray,
        dt: float,
    ) -> None:
        """Account for one step of traffic on every link.

        Bytes beyond a link's step capacity are clamped (the model's group
        caps already keep traffic within capacity; the clamp guards float
        round-off).  Negative byte counts are rejected.
        """
        per_node_bytes = np.asarray(per_node_bytes, dtype=np.float64)
        per_server_bytes = np.asarray(per_server_bytes, dtype=np.float64)
        if per_node_bytes.shape[0] != self.n_client_nodes:
            raise ConfigurationError("per_node_bytes has the wrong length")
        if per_server_bytes.shape[0] != self.n_servers:
            raise ConfigurationError("per_server_bytes has the wrong length")
        if dt <= 0:
            raise SimulationError("dt must be positive")
        if np.any(per_node_bytes < 0) or np.any(per_server_bytes < 0):
            raise SimulationError("cannot record a negative number of bytes")
        self._observed_time += dt
        self._record_group(
            per_node_bytes, self._node_capacity, self._node_transferred,
            self._node_busy, self._scratch_node, self._scratch_node2, dt,
        )
        self._record_group(
            per_server_bytes, self._server_capacity, self._server_transferred,
            self._server_busy, self._scratch_server, self._scratch_server2, dt,
        )

    @staticmethod
    def _record_group(
        nbytes: np.ndarray,
        capacity: np.ndarray,
        transferred: np.ndarray,
        busy: np.ndarray,
        limit: np.ndarray,
        clipped: np.ndarray,
        dt: float,
    ) -> None:
        np.multiply(capacity, dt, out=limit)
        np.minimum(nbytes, limit, out=clipped)
        transferred += clipped
        np.divide(clipped, limit, out=clipped)
        np.minimum(clipped, 1.0, out=clipped)
        clipped *= dt
        busy += clipped

    def _utilizations(self, busy: np.ndarray) -> np.ndarray:
        if self._observed_time == 0:
            return np.zeros_like(busy)
        return np.minimum(busy / self._observed_time, 1.0)

    def utilization_report(self) -> Dict[str, float]:
        """Utilization of every link, keyed by link name."""
        report: Dict[str, float] = {}
        node_util = self._utilizations(self._node_busy)
        for nic, value in zip(self.client_nics, node_util):
            report[nic.uplink.name] = float(value)
        server_util = self._utilizations(self._server_busy)
        for link, value in zip(self.server_downlinks, server_util):
            report[link.name] = float(value)
        return report

    def max_client_utilization(self) -> float:
        """Highest client-uplink utilization (root-cause indicator)."""
        if not self.client_nics:
            return 0.0
        return float(self._utilizations(self._node_busy).max())

    def max_server_utilization(self) -> float:
        """Highest server-downlink utilization (root-cause indicator)."""
        if not self.server_downlinks:
            return 0.0
        return float(self._utilizations(self._server_busy).max())
