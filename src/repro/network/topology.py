"""Storage-network topology.

The paper's testbed connects all compute nodes and storage servers through a
single 10 Gbps Ethernet switch, so the topology is a star: every node has an
uplink to the fabric and every server a downlink from it.  The fabric itself
is assumed non-blocking (the paper's server-partitioning experiment shows the
switch core is not the point of contention), but the class keeps per-link
accounting so that assumption can be checked a posteriori.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.config.network import NetworkConfig
from repro.errors import ConfigurationError
from repro.network.link import Link
from repro.network.nic import NIC

__all__ = ["StarTopology"]


class StarTopology:
    """A single-switch topology with per-endpoint links.

    Parameters
    ----------
    n_client_nodes:
        Number of compute nodes.
    n_servers:
        Number of storage servers.
    network:
        Link-rate configuration.
    """

    def __init__(self, n_client_nodes: int, n_servers: int, network: NetworkConfig) -> None:
        if n_client_nodes <= 0 or n_servers <= 0:
            raise ConfigurationError("topology needs at least one node and one server")
        self.network = network
        self.client_nics: List[NIC] = [
            NIC(node_id=i, line_rate=network.client_nic_bw, injection_bw=network.node_injection_bw)
            for i in range(n_client_nodes)
        ]
        self.server_downlinks: List[Link] = [
            Link(name=f"fabric->server{s}", capacity=network.server_nic_bw)
            for s in range(n_servers)
        ]

    # ------------------------------------------------------------------ #

    @property
    def n_client_nodes(self) -> int:
        """Number of compute nodes in the topology."""
        return len(self.client_nics)

    @property
    def n_servers(self) -> int:
        """Number of storage servers in the topology."""
        return len(self.server_downlinks)

    def node_capacities(self) -> np.ndarray:
        """Per-node usable injection bandwidth (bytes/s)."""
        return np.array([nic.effective_bw for nic in self.client_nics], dtype=np.float64)

    def server_capacities(self) -> np.ndarray:
        """Per-server downlink bandwidth (bytes/s)."""
        return np.array([link.capacity for link in self.server_downlinks], dtype=np.float64)

    def record_step(
        self,
        per_node_bytes: np.ndarray,
        per_server_bytes: np.ndarray,
        dt: float,
    ) -> None:
        """Account for one step of traffic on every link."""
        per_node_bytes = np.asarray(per_node_bytes, dtype=np.float64)
        per_server_bytes = np.asarray(per_server_bytes, dtype=np.float64)
        if per_node_bytes.shape[0] != self.n_client_nodes:
            raise ConfigurationError("per_node_bytes has the wrong length")
        if per_server_bytes.shape[0] != self.n_servers:
            raise ConfigurationError("per_server_bytes has the wrong length")
        for nic, nbytes in zip(self.client_nics, per_node_bytes):
            nic.record(min(float(nbytes), nic.effective_bw * dt), dt)
        for link, nbytes in zip(self.server_downlinks, per_server_bytes):
            link.record(min(float(nbytes), link.capacity * dt), dt)

    def utilization_report(self) -> Dict[str, float]:
        """Utilization of every link, keyed by link name."""
        report: Dict[str, float] = {}
        for nic in self.client_nics:
            report[nic.uplink.name] = nic.utilization()
        for link in self.server_downlinks:
            report[link.name] = link.utilization()
        return report

    def max_client_utilization(self) -> float:
        """Highest client-uplink utilization (root-cause indicator)."""
        return max((nic.utilization() for nic in self.client_nics), default=0.0)

    def max_server_utilization(self) -> float:
        """Highest server-downlink utilization (root-cause indicator)."""
        return max((link.utilization() for link in self.server_downlinks), default=0.0)
