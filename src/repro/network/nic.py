"""Network interface of a compute node.

The NIC is the first potential point of contention the paper identifies: all
cores of a node share it.  In the fluid model the sharing itself is applied
by :func:`repro.network.allocation.cap_by_group`; this class carries the
per-node capacity (line rate and effective injection goodput) and the
utilization accounting used by root-cause reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.network.link import Link

__all__ = ["NIC"]


@dataclass
class NIC:
    """The shared network interface of one compute node.

    Attributes
    ----------
    node_id:
        Index of the compute node.
    line_rate:
        Raw NIC bandwidth (bytes/s).
    injection_bw:
        Effective end-to-end injection goodput of the node's I/O stack
        (bytes/s); the usable capacity is the minimum of both.
    """

    node_id: int
    line_rate: float
    injection_bw: float
    uplink: Link = field(init=False)

    def __post_init__(self) -> None:
        if self.line_rate <= 0 or self.injection_bw <= 0:
            raise ConfigurationError("NIC rates must be positive")
        self.uplink = Link(name=f"node{self.node_id}->fabric", capacity=self.effective_bw)

    @property
    def effective_bw(self) -> float:
        """Usable injection bandwidth of the node (bytes/s)."""
        return min(self.line_rate, self.injection_bw)

    def record(self, nbytes: float, dt: float) -> None:
        """Account for bytes injected during one step."""
        self.uplink.record(nbytes, dt)

    def utilization(self) -> float:
        """Average utilization of the node's injection path."""
        return self.uplink.utilization()
