"""TCP-like per-connection congestion/flow-control window model.

The paper traces the window size of PVFS client connections with tcpdump and
shows that under contention with a slow backend the window collapses to
nearly zero (Figure 10) — the Incast problem — and that the collapse hits
the application that starts second much harder (Figure 11).

:class:`WindowState` holds the per-connection state as NumPy arrays and
implements one update per simulation step:

* **additive increase** while a connection receives (nearly) the bandwidth
  it asks for,
* **multiplicative decrease** when the server buffer throttles it,
* **timeout collapse** (window := minimum, stall for an exponentially
  backed-off RTO) when a connection is starved for a full RTO,
* recovery of the "established" status used by the admission model once a
  connection delivers again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.config.network import TransportConfig

__all__ = ["WindowState", "WindowUpdateResult"]


@dataclass
class WindowUpdateResult:
    """Summary of one window-update step (used for tracing and analysis).

    When :meth:`WindowState.update` runs with ``collect_stats=False`` (the
    stepper's hot path, which only consumes the collapse fields) the optional
    aggregates are not computed and report ``0``/``0.0``.
    """

    n_collapsed: int
    n_decreased: int
    n_increased: int
    stalled_fraction: float
    collapsed_indices: np.ndarray


class WindowState:
    """Vectorized per-connection transport state.

    Parameters
    ----------
    n_connections:
        Number of connections (client process / server pairs).
    transport:
        Transport parameters.
    rng:
        Random generator used to desynchronize timeout expirations slightly
        (avoids artificial lock-step retries that a fluid model would
        otherwise produce).
    """

    def __init__(
        self,
        n_connections: int,
        transport: TransportConfig,
        rng: np.random.Generator,
    ) -> None:
        if n_connections < 0:
            raise ValueError("n_connections must be non-negative")
        self.transport = transport
        self._rng = rng
        n = int(n_connections)
        self.n_connections = n
        #: Congestion window in bytes.
        self.cwnd = np.full(n, float(transport.window_init), dtype=np.float64)
        #: Simulated time until which the connection refrains from sending.
        #: Initialized to -inf so that runs starting at negative times
        #: (Δ-graph experiments with a negative delay) are not stalled.
        self.stall_until = np.full(n, -np.inf, dtype=np.float64)
        #: Consecutive timeouts (exponential backoff exponent).
        self.backoff = np.zeros(n, dtype=np.int64)
        #: Accumulated time (s) during which the connection was starved.
        self.starved_time = np.zeros(n, dtype=np.float64)
        #: Last simulated time the connection delivered bytes to its server.
        self.last_delivery = np.full(n, -np.inf, dtype=np.float64)
        #: Cumulative number of timeout collapses (for Incast detection).
        self.collapse_count = np.zeros(n, dtype=np.int64)
        #: Total bytes delivered per connection.
        self.delivered_bytes = np.zeros(n, dtype=np.float64)
        #: True for connections whose ACK clock is running (they delivered a
        #: full segment recently and have not timed out since).  Paced
        #: connections are largely immune to Incast losses; bursty ones are
        #: not.
        self.paced = np.zeros(n, dtype=bool)
        #: True for connections that have been paced at least once; they
        #: recover from a timeout much more easily than true newcomers.
        self.ever_paced = np.zeros(n, dtype=bool)
        # Scratch buffers for update(); reused every step so the hot path
        # allocates nothing.  They never leave this class.
        self._fraction = np.empty(n, dtype=np.float64)
        self._rtt = np.empty(n, dtype=np.float64)
        self._cwnd_next = np.empty(n, dtype=np.float64)
        self._starved_next = np.empty(n, dtype=np.float64)
        self._draws = np.empty(n, dtype=np.float64)
        self._empty_indices = np.zeros(0, dtype=np.int64)
        self._mask_active = np.empty(n, dtype=bool)
        self._mask_a = np.empty(n, dtype=bool)
        self._mask_b = np.empty(n, dtype=bool)
        self._mask_c = np.empty(n, dtype=bool)
        self._mask_d = np.empty(n, dtype=bool)

    # ------------------------------------------------------------------ #
    # Queries used by the admission model
    # ------------------------------------------------------------------ #

    def sending_allowed(self, now: float) -> np.ndarray:
        """Boolean mask of connections not currently stalled in an RTO."""
        return self.stall_until <= now

    def established_mask(self, now: float) -> np.ndarray:
        """Connections that delivered bytes within the established-memory window."""
        return (now - self.last_delivery) <= self.transport.established_memory

    def admission_weights(self, now: float) -> np.ndarray:
        """Admission weights: established connections count for more."""
        weights = np.ones(self.n_connections, dtype=np.float64)
        weights[self.established_mask(now)] = self.transport.established_weight
        return weights

    def force_timeout(self, indices: np.ndarray, now: float) -> int:
        """Collapse the given connections immediately (burst lost entirely).

        Used by the admission gate for bursty connections whose whole-window
        probe into a full buffer is dropped.  Returns how many connections
        were collapsed.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return 0
        t = self.transport
        self.cwnd[indices] = t.window_min
        backoff = np.minimum(self.backoff[indices], t.max_backoff_exponent)
        jitter = self._rng.uniform(0.5, 1.5, size=indices.shape[0])
        self.stall_until[indices] = now + t.rto * (2.0**backoff) * jitter
        self.backoff[indices] = backoff + 1
        self.starved_time[indices] = 0.0
        self.collapse_count[indices] += 1
        self.paced[indices] = False
        return int(indices.size)

    def desired_bytes(self, now: float, dt: float, rtt_eff: np.ndarray) -> np.ndarray:
        """Bytes each connection would like to send during this step.

        ``rtt_eff`` is the per-connection effective round-trip time (base RTT
        plus queueing delay at its server); the window-limited rate is
        ``cwnd / rtt_eff``.
        """
        rtt_eff = np.maximum(np.asarray(rtt_eff, dtype=np.float64), 1e-9)
        rate = self.cwnd / rtt_eff
        desired = rate * dt
        desired[~self.sending_allowed(now)] = 0.0
        return desired

    def stalled_fraction(self, now: float, active_mask: np.ndarray) -> float:
        """Fraction of active connections currently stalled in an RTO."""
        active = np.asarray(active_mask, dtype=bool)
        n_active = int(active.sum())
        if n_active == 0:
            return 0.0
        stalled = np.logical_and(active, ~self.sending_allowed(now))
        return float(stalled.sum()) / float(n_active)

    # ------------------------------------------------------------------ #
    # Update
    # ------------------------------------------------------------------ #

    def update(
        self,
        now: float,
        dt: float,
        requested: np.ndarray,
        admitted: np.ndarray,
        rtt_eff: np.ndarray,
        oversubscribed: np.ndarray,
        loss_prone: Optional[np.ndarray] = None,
        collect_stats: bool = True,
        rng_sites: Optional[Sequence[Tuple[slice, np.random.Generator]]] = None,
    ) -> WindowUpdateResult:
        """Apply one step of window dynamics.

        Parameters
        ----------
        now, dt:
            Current simulated time and step length.
        requested:
            Bytes each connection tried to send this step (0 for idle or
            stalled connections).
        admitted:
            Bytes actually admitted into the server buffer.
        rtt_eff:
            Per-connection effective RTT (seconds), used to pace the additive
            increase.
        oversubscribed:
            Boolean per-connection flag: True when the connection's server
            buffer could not accept all offered traffic this step (a
            congestion signal even for connections that individually got
            their share).
        loss_prone:
            Boolean per-connection flag: True when the connection is in a
            regime where a throttled step means *lost packets* (full-window
            burst into a full buffer with a window of only a few segments)
            rather than smooth backpressure.  Only loss-prone connections
            react to throttling with a multiplicative decrease and accumulate
            starvation toward a timeout collapse; connections that are merely
            backpressured (receiver window + queueing delay) keep their
            congestion window, as a self-clocked TCP sender would.  Defaults
            to "all active connections" (the most pessimistic assumption).
        collect_stats:
            When False, skip the aggregate counters (``n_decreased``,
            ``n_increased``, ``stalled_fraction``) that only tracing and
            analysis consume; the window dynamics themselves are unchanged.
        rng_sites:
            Random-draw ownership as ``(slice, generator)`` pairs covering
            disjoint connection ranges.  The batched kernel passes one site
            per batch member so each member consumes draws from *its own*
            transport stream exactly as it would alone; the default single
            site over all connections reproduces the scalar behaviour
            bit-for-bit.  A site only draws when at least one of its
            connections is a hazard candidate (resp. collapses), mirroring
            the scalar short-circuit.
        """
        t = self.transport
        requested = np.asarray(requested, dtype=np.float64)
        admitted = np.asarray(admitted, dtype=np.float64)
        rtt = self._rtt
        np.maximum(np.asarray(rtt_eff, dtype=np.float64), 1e-9, out=rtt)
        oversubscribed = np.asarray(oversubscribed, dtype=bool)
        mask_a, mask_b, mask_c, mask_d = (
            self._mask_a, self._mask_b, self._mask_c, self._mask_d,
        )

        active = self._mask_active
        np.greater(requested, 1e-9, out=active)
        if loss_prone is None:
            loss_prone = active
        else:
            loss_prone = np.asarray(loss_prone, dtype=bool)
        fraction = self._fraction
        fraction.fill(1.0)
        np.divide(admitted, requested, out=fraction, where=active)

        np.greater(admitted, 1e-9, out=mask_a)  # delivered
        self.delivered_bytes += admitted
        np.copyto(self.last_delivery, now, where=mask_a)
        np.greater_equal(fraction, 0.5, out=mask_b)
        np.logical_and(mask_a, mask_b, out=mask_b)
        np.copyto(self.backoff, 0, where=mask_b)
        # A connection that pushed at least a segment through has a running
        # ACK clock again.
        np.greater_equal(admitted, t.mss, out=mask_a)  # newly paced
        self.paced |= mask_a
        self.ever_paced |= mask_a

        # Additive increase: one segment per effective RTT of good progress.
        np.greater_equal(fraction, 0.9, out=mask_b)
        np.logical_and(active, mask_b, out=mask_b)  # good progress
        n_increased = int(mask_b.sum()) if collect_stats else 0
        grown = self._cwnd_next
        np.divide(dt, rtt, out=grown)
        grown *= t.additive_increase_segments * t.mss
        np.add(self.cwnd, grown, out=grown)
        np.minimum(grown, t.window_max, out=grown)
        np.copyto(self.cwnd, grown, where=mask_b)

        # Multiplicative decrease: only loss-prone connections interpret a
        # throttled step as packet loss.  A paced connection that gets less
        # than it asked for is experiencing flow control (advertised window,
        # queueing delay), which real TCP absorbs without shrinking cwnd;
        # treating it as loss makes low-connection-count configurations
        # (e.g. one writer per node) underutilize the backend.
        np.logical_and(active, loss_prone, out=mask_a)  # kept for starvation
        np.less(fraction, 0.5, out=mask_b)
        np.logical_and(mask_a, mask_b, out=mask_b)
        np.logical_and(mask_b, oversubscribed, out=mask_b)  # throttled
        n_decreased = int(mask_b.sum()) if collect_stats else 0
        shrunk = self._cwnd_next
        np.multiply(self.cwnd, t.multiplicative_decrease, out=shrunk)
        np.maximum(shrunk, t.window_min, out=shrunk)
        np.copyto(self.cwnd, shrunk, where=mask_b)

        # Starvation accounting and timeout collapse.  Only loss-prone
        # connections accumulate starvation: a burst that hit a full buffer
        # was lost, while a source-paced trickle was merely delayed.
        np.less(fraction, t.starvation_fraction, out=mask_b)
        np.logical_and(mask_a, mask_b, out=mask_b)  # starving
        starved = self._starved_next
        np.add(self.starved_time, dt, out=starved)
        np.copyto(self.starved_time, starved, where=mask_b)
        np.logical_not(mask_b, out=mask_c)
        np.logical_and(active, mask_c, out=mask_c)
        np.copyto(self.starved_time, 0.0, where=mask_c)
        timed_out = mask_b
        np.greater_equal(self.starved_time, t.rto, out=timed_out)

        # Residual whole-window losses for paced connections in the Incast
        # regime: rare, but they keep even the incumbent application from
        # being completely untouched (Figure 2(a) shows it slowed as well).
        np.logical_not(timed_out, out=mask_c)
        np.logical_and(mask_a, self.paced, out=mask_d)
        np.logical_and(mask_d, mask_c, out=mask_d)  # hazard candidates
        if rng_sites is None:
            rng_sites = ((slice(None), self._rng),)
        if t.paced_timeout_hazard > 0.0 and mask_d.any():
            p_step = 1.0 - (1.0 - t.paced_timeout_hazard) ** (dt / t.rto)
            for site, rng in rng_sites:
                if mask_d[site].any():
                    rng.random(out=self._draws[site])
            # Sites without candidates keep stale draws; the AND with
            # mask_d below discards them, so only drawn sites matter.
            np.less(self._draws, p_step, out=mask_c)
            np.logical_and(mask_d, mask_c, out=mask_c)
            np.logical_or(timed_out, mask_c, out=timed_out)

        n_collapsed = int(np.count_nonzero(timed_out))
        idx = np.flatnonzero(timed_out) if n_collapsed else self._empty_indices
        if n_collapsed:
            self.cwnd[idx] = t.window_min
            backoff = np.minimum(self.backoff[idx], t.max_backoff_exponent)
            # Randomize the retry instant a little to avoid artificial
            # lock-step retries among simultaneously collapsed connections.
            # Each site jitters its own collapsed connections (idx is
            # ascending, so a site's share is one contiguous run).
            jitter = np.empty(idx.shape[0], dtype=np.float64)
            for site, rng in rng_sites:
                a = (
                    0 if site.start is None
                    else int(np.searchsorted(idx, site.start, side="left"))
                )
                b = (
                    idx.shape[0] if site.stop is None
                    else int(np.searchsorted(idx, site.stop, side="left"))
                )
                if b > a:
                    jitter[a:b] = rng.uniform(0.5, 1.5, size=b - a)
            self.stall_until[idx] = now + t.rto * (2.0**backoff) * jitter
            self.backoff[idx] = backoff + 1
            self.starved_time[idx] = 0.0
            self.collapse_count[idx] += 1
            self.paced[idx] = False

        stalled = (
            self.stalled_fraction(now, active_mask=active | (~self.sending_allowed(now)))
            if collect_stats
            else 0.0
        )
        result = WindowUpdateResult(
            n_collapsed=n_collapsed,
            n_decreased=n_decreased,
            n_increased=n_increased,
            stalled_fraction=stalled,
            collapsed_indices=idx,
        )
        return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def total_collapses(self) -> int:
        """Total number of timeout collapses across all connections."""
        return int(self.collapse_count.sum())

    def window_snapshot(self) -> np.ndarray:
        """Copy of the current window sizes (bytes)."""
        return self.cwnd.copy()
