"""TCP-like per-connection congestion/flow-control window model.

The paper traces the window size of PVFS client connections with tcpdump and
shows that under contention with a slow backend the window collapses to
nearly zero (Figure 10) — the Incast problem — and that the collapse hits
the application that starts second much harder (Figure 11).

:class:`WindowState` holds the per-connection state as NumPy arrays and
implements one update per simulation step:

* **additive increase** while a connection receives (nearly) the bandwidth
  it asks for,
* **multiplicative decrease** when the server buffer throttles it,
* **timeout collapse** (window := minimum, stall for an exponentially
  backed-off RTO) when a connection is starved for a full RTO,
* recovery of the "established" status used by the admission model once a
  connection delivers again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config.network import TransportConfig

__all__ = ["WindowState", "WindowUpdateResult"]


@dataclass
class WindowUpdateResult:
    """Summary of one window-update step (used for tracing and analysis)."""

    n_collapsed: int
    n_decreased: int
    n_increased: int
    stalled_fraction: float
    collapsed_indices: np.ndarray


class WindowState:
    """Vectorized per-connection transport state.

    Parameters
    ----------
    n_connections:
        Number of connections (client process / server pairs).
    transport:
        Transport parameters.
    rng:
        Random generator used to desynchronize timeout expirations slightly
        (avoids artificial lock-step retries that a fluid model would
        otherwise produce).
    """

    def __init__(
        self,
        n_connections: int,
        transport: TransportConfig,
        rng: np.random.Generator,
    ) -> None:
        if n_connections < 0:
            raise ValueError("n_connections must be non-negative")
        self.transport = transport
        self._rng = rng
        n = int(n_connections)
        self.n_connections = n
        #: Congestion window in bytes.
        self.cwnd = np.full(n, float(transport.window_init), dtype=np.float64)
        #: Simulated time until which the connection refrains from sending.
        #: Initialized to -inf so that runs starting at negative times
        #: (Δ-graph experiments with a negative delay) are not stalled.
        self.stall_until = np.full(n, -np.inf, dtype=np.float64)
        #: Consecutive timeouts (exponential backoff exponent).
        self.backoff = np.zeros(n, dtype=np.int64)
        #: Accumulated time (s) during which the connection was starved.
        self.starved_time = np.zeros(n, dtype=np.float64)
        #: Last simulated time the connection delivered bytes to its server.
        self.last_delivery = np.full(n, -np.inf, dtype=np.float64)
        #: Cumulative number of timeout collapses (for Incast detection).
        self.collapse_count = np.zeros(n, dtype=np.int64)
        #: Total bytes delivered per connection.
        self.delivered_bytes = np.zeros(n, dtype=np.float64)
        #: True for connections whose ACK clock is running (they delivered a
        #: full segment recently and have not timed out since).  Paced
        #: connections are largely immune to Incast losses; bursty ones are
        #: not.
        self.paced = np.zeros(n, dtype=bool)
        #: True for connections that have been paced at least once; they
        #: recover from a timeout much more easily than true newcomers.
        self.ever_paced = np.zeros(n, dtype=bool)

    # ------------------------------------------------------------------ #
    # Queries used by the admission model
    # ------------------------------------------------------------------ #

    def sending_allowed(self, now: float) -> np.ndarray:
        """Boolean mask of connections not currently stalled in an RTO."""
        return self.stall_until <= now

    def established_mask(self, now: float) -> np.ndarray:
        """Connections that delivered bytes within the established-memory window."""
        return (now - self.last_delivery) <= self.transport.established_memory

    def admission_weights(self, now: float) -> np.ndarray:
        """Admission weights: established connections count for more."""
        weights = np.ones(self.n_connections, dtype=np.float64)
        weights[self.established_mask(now)] = self.transport.established_weight
        return weights

    def force_timeout(self, indices: np.ndarray, now: float) -> int:
        """Collapse the given connections immediately (burst lost entirely).

        Used by the admission gate for bursty connections whose whole-window
        probe into a full buffer is dropped.  Returns how many connections
        were collapsed.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return 0
        t = self.transport
        self.cwnd[indices] = t.window_min
        backoff = np.minimum(self.backoff[indices], t.max_backoff_exponent)
        jitter = self._rng.uniform(0.5, 1.5, size=indices.shape[0])
        self.stall_until[indices] = now + t.rto * (2.0**backoff) * jitter
        self.backoff[indices] = backoff + 1
        self.starved_time[indices] = 0.0
        self.collapse_count[indices] += 1
        self.paced[indices] = False
        return int(indices.size)

    def desired_bytes(self, now: float, dt: float, rtt_eff: np.ndarray) -> np.ndarray:
        """Bytes each connection would like to send during this step.

        ``rtt_eff`` is the per-connection effective round-trip time (base RTT
        plus queueing delay at its server); the window-limited rate is
        ``cwnd / rtt_eff``.
        """
        rtt_eff = np.maximum(np.asarray(rtt_eff, dtype=np.float64), 1e-9)
        rate = self.cwnd / rtt_eff
        desired = rate * dt
        desired[~self.sending_allowed(now)] = 0.0
        return desired

    def stalled_fraction(self, now: float, active_mask: np.ndarray) -> float:
        """Fraction of active connections currently stalled in an RTO."""
        active = np.asarray(active_mask, dtype=bool)
        n_active = int(active.sum())
        if n_active == 0:
            return 0.0
        stalled = np.logical_and(active, ~self.sending_allowed(now))
        return float(stalled.sum()) / float(n_active)

    # ------------------------------------------------------------------ #
    # Update
    # ------------------------------------------------------------------ #

    def update(
        self,
        now: float,
        dt: float,
        requested: np.ndarray,
        admitted: np.ndarray,
        rtt_eff: np.ndarray,
        oversubscribed: np.ndarray,
        loss_prone: Optional[np.ndarray] = None,
    ) -> WindowUpdateResult:
        """Apply one step of window dynamics.

        Parameters
        ----------
        now, dt:
            Current simulated time and step length.
        requested:
            Bytes each connection tried to send this step (0 for idle or
            stalled connections).
        admitted:
            Bytes actually admitted into the server buffer.
        rtt_eff:
            Per-connection effective RTT (seconds), used to pace the additive
            increase.
        oversubscribed:
            Boolean per-connection flag: True when the connection's server
            buffer could not accept all offered traffic this step (a
            congestion signal even for connections that individually got
            their share).
        loss_prone:
            Boolean per-connection flag: True when the connection is in a
            regime where a throttled step means *lost packets* (full-window
            burst into a full buffer with a window of only a few segments)
            rather than smooth backpressure.  Only loss-prone connections
            react to throttling with a multiplicative decrease and accumulate
            starvation toward a timeout collapse; connections that are merely
            backpressured (receiver window + queueing delay) keep their
            congestion window, as a self-clocked TCP sender would.  Defaults
            to "all active connections" (the most pessimistic assumption).
        """
        t = self.transport
        requested = np.asarray(requested, dtype=np.float64)
        admitted = np.asarray(admitted, dtype=np.float64)
        rtt_eff = np.maximum(np.asarray(rtt_eff, dtype=np.float64), 1e-9)
        oversubscribed = np.asarray(oversubscribed, dtype=bool)

        active = requested > 1e-9
        if loss_prone is None:
            loss_prone = active
        else:
            loss_prone = np.asarray(loss_prone, dtype=bool)
        fraction = np.ones_like(requested)
        np.divide(admitted, requested, out=fraction, where=active)

        delivered = admitted > 1e-9
        self.delivered_bytes += admitted
        self.last_delivery[delivered] = now
        self.backoff[np.logical_and(delivered, fraction >= 0.5)] = 0
        # A connection that pushed at least a segment through has a running
        # ACK clock again.
        newly_paced = admitted >= self.transport.mss
        self.paced[newly_paced] = True
        self.ever_paced[newly_paced] = True

        # Additive increase: one segment per effective RTT of good progress.
        good = np.logical_and(active, fraction >= 0.9)
        increase = t.additive_increase_segments * t.mss * (dt / rtt_eff)
        self.cwnd[good] = np.minimum(self.cwnd[good] + increase[good], t.window_max)

        # Multiplicative decrease: only loss-prone connections interpret a
        # throttled step as packet loss.  A paced connection that gets less
        # than it asked for is experiencing flow control (advertised window,
        # queueing delay), which real TCP absorbs without shrinking cwnd;
        # treating it as loss makes low-connection-count configurations
        # (e.g. one writer per node) underutilize the backend.
        throttled = active & loss_prone & (fraction < 0.5) & oversubscribed
        self.cwnd[throttled] = np.maximum(
            self.cwnd[throttled] * t.multiplicative_decrease, t.window_min
        )

        # Starvation accounting and timeout collapse.  Only loss-prone
        # connections accumulate starvation: a burst that hit a full buffer
        # was lost, while a source-paced trickle was merely delayed.
        starving = active & loss_prone & (fraction < t.starvation_fraction)
        self.starved_time[starving] += dt
        self.starved_time[active & ~starving] = 0.0
        timed_out = self.starved_time >= t.rto

        # Residual whole-window losses for paced connections in the Incast
        # regime: rare, but they keep even the incumbent application from
        # being completely untouched (Figure 2(a) shows it slowed as well).
        hazard_candidates = active & loss_prone & self.paced & ~timed_out
        if np.any(hazard_candidates) and t.paced_timeout_hazard > 0.0:
            p_step = 1.0 - (1.0 - t.paced_timeout_hazard) ** (dt / t.rto)
            draws = self._rng.random(self.n_connections)
            timed_out = timed_out | (hazard_candidates & (draws < p_step))

        n_collapsed = int(timed_out.sum())
        idx = np.flatnonzero(timed_out)
        if n_collapsed:
            self.cwnd[idx] = t.window_min
            backoff = np.minimum(self.backoff[idx], t.max_backoff_exponent)
            # Randomize the retry instant a little to avoid artificial
            # lock-step retries among simultaneously collapsed connections.
            jitter = self._rng.uniform(0.5, 1.5, size=idx.shape[0])
            self.stall_until[idx] = now + t.rto * (2.0**backoff) * jitter
            self.backoff[idx] = backoff + 1
            self.starved_time[idx] = 0.0
            self.collapse_count[idx] += 1
            self.paced[idx] = False

        result = WindowUpdateResult(
            n_collapsed=n_collapsed,
            n_decreased=int(throttled.sum()),
            n_increased=int(good.sum()),
            stalled_fraction=self.stalled_fraction(now, active_mask=active | (~self.sending_allowed(now))),
            collapsed_indices=idx,
        )
        return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def total_collapses(self) -> int:
        """Total number of timeout collapses across all connections."""
        return int(self.collapse_count.sum())

    def window_snapshot(self) -> np.ndarray:
        """Copy of the current window sizes (bytes)."""
        return self.cwnd.copy()
