"""Network substrate.

Vectorized building blocks for the I/O-path model:

* :mod:`repro.network.allocation` — bandwidth-sharing primitives (capped
  proportional shares, per-group capacity scaling, weighted admission under
  oversubscription),
* :mod:`repro.network.congestion` — the TCP-like per-connection congestion
  window state and its update rule (AIMD + timeout collapse),
* :mod:`repro.network.incast`     — the per-server receive buffer and the
  admission model whose breakdown is the Incast problem,
* :mod:`repro.network.link`, :mod:`repro.network.nic`,
  :mod:`repro.network.topology` — object-level descriptions of the physical
  network used for accounting and root-cause reporting.
"""

from repro.network.allocation import (
    admission_order_keys,
    allocate_greedy_in_order,
    cap_by_group,
    proportional_share,
)
from repro.network.congestion import WindowState, WindowUpdateResult
from repro.network.incast import ServerBuffers
from repro.network.link import Link
from repro.network.nic import NIC
from repro.network.topology import StarTopology

__all__ = [
    "proportional_share",
    "cap_by_group",
    "admission_order_keys",
    "allocate_greedy_in_order",
    "WindowState",
    "WindowUpdateResult",
    "ServerBuffers",
    "Link",
    "NIC",
    "StarTopology",
]
