"""A unidirectional network link with utilization accounting.

The fluid model does not route packets, but the root-cause analysis wants to
know how busy each physical resource was.  :class:`Link` is a small
accounting object: the model reports how many bytes crossed the link per
step, and the link reports its utilization over the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError

__all__ = ["Link"]


@dataclass
class Link:
    """A capacity-limited link.

    Attributes
    ----------
    name:
        Identifier used in reports (e.g. ``"node3->switch"``).
    capacity:
        Line rate in bytes/s.
    """

    name: str
    capacity: float
    transferred_bytes: float = field(default=0.0, init=False)
    busy_time: float = field(default=0.0, init=False)
    observed_time: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"link {self.name!r} needs a positive capacity")

    def max_bytes(self, dt: float) -> float:
        """Maximum bytes the link can carry in ``dt`` seconds."""
        if dt <= 0:
            raise SimulationError("dt must be positive")
        return self.capacity * dt

    def record(self, nbytes: float, dt: float) -> None:
        """Account for ``nbytes`` carried during a step of length ``dt``."""
        if nbytes < 0:
            raise SimulationError("cannot record a negative number of bytes")
        if dt <= 0:
            raise SimulationError("dt must be positive")
        limit = self.max_bytes(dt)
        if nbytes > limit * (1 + 1e-6):
            raise SimulationError(
                f"link {self.name!r} carried {nbytes:.0f} bytes in {dt}s, "
                f"exceeding its capacity ({limit:.0f} bytes)"
            )
        self.transferred_bytes += nbytes
        self.observed_time += dt
        self.busy_time += dt * min(nbytes / limit, 1.0)

    def utilization(self) -> float:
        """Average utilization over the observed time (0 if unobserved)."""
        if self.observed_time == 0:
            return 0.0
        return min(self.busy_time / self.observed_time, 1.0)

    def mean_throughput(self) -> float:
        """Average throughput (bytes/s) over the observed time."""
        if self.observed_time == 0:
            return 0.0
        return self.transferred_bytes / self.observed_time

    def reset(self) -> None:
        """Clear accounting state."""
        self.transferred_bytes = 0.0
        self.busy_time = 0.0
        self.observed_time = 0.0
