"""Vectorized bandwidth-allocation primitives.

These are pure functions over NumPy arrays; the model stepper composes them
every simulation step.  They implement three sharing disciplines:

* :func:`proportional_share` — divide a capacity among demands in proportion
  to weights, never giving anyone more than they asked for (water-filling of
  the excess);
* :func:`cap_by_group` — scale per-entity demands down so that each group's
  total respects that group's capacity (used for per-node NIC caps);
* :func:`admission_order_keys` + :func:`allocate_greedy_in_order` — the
  stochastic "winner" admission used at oversubscribed server buffers: a
  weighted random order is drawn and capacity is granted greedily, so that
  under heavy oversubscription some connections receive nothing at all in a
  step — the seed of timeout collapse (Incast).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "proportional_share",
    "cap_by_group",
    "admission_order_keys",
    "allocate_greedy_in_order",
]


def proportional_share(
    demands: np.ndarray,
    capacity: float,
    weights: Optional[np.ndarray] = None,
    iterations: int = 4,
) -> np.ndarray:
    """Split ``capacity`` among ``demands`` proportionally to ``weights``.

    No entity receives more than its demand; capacity freed by entities whose
    demand is below their proportional share is redistributed among the
    others (a few water-filling passes are enough for our purposes).

    Parameters
    ----------
    demands:
        Non-negative demands (same unit as capacity).
    capacity:
        Total capacity to distribute.
    weights:
        Optional positive weights (defaults to equal weights).
    iterations:
        Number of redistribution passes.

    Returns
    -------
    numpy.ndarray
        Allocation with ``0 <= alloc <= demands`` and
        ``alloc.sum() <= min(capacity, demands.sum())`` (equality up to
        floating-point error when demand exceeds capacity).
    """
    demands = np.asarray(demands, dtype=np.float64)
    if demands.ndim != 1:
        raise ValueError("demands must be one-dimensional")
    n = demands.shape[0]
    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != demands.shape:
            raise ValueError("weights must have the same shape as demands")
        if np.any(weights <= 0):
            raise ValueError("weights must be positive")
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    if capacity <= 0:
        return np.zeros(n, dtype=np.float64)
    total_demand = float(demands.sum())
    if total_demand <= capacity:
        return demands.copy()

    alloc = np.zeros(n, dtype=np.float64)
    remaining_capacity = float(capacity)
    unsatisfied = demands > 0
    for _ in range(max(iterations, 1)):
        if remaining_capacity <= 1e-12 or not np.any(unsatisfied):
            break
        w = np.where(unsatisfied, weights, 0.0)
        w_sum = w.sum()
        if w_sum <= 0:
            break
        offer = remaining_capacity * w / w_sum
        take = np.minimum(offer, demands - alloc)
        alloc += take
        remaining_capacity -= float(take.sum())
        unsatisfied = (demands - alloc) > 1e-9
    return alloc


def cap_by_group(
    demands: np.ndarray,
    group_ids: np.ndarray,
    group_capacities: np.ndarray,
) -> np.ndarray:
    """Scale demands so that each group's total stays within its capacity.

    Every member of an over-subscribed group is scaled by the same factor
    (proportional fairness within the group); groups under their capacity are
    untouched.

    Parameters
    ----------
    demands:
        Per-entity demands.
    group_ids:
        Integer group index of each entity (0-based, dense).
    group_capacities:
        Capacity of each group, indexed by group id.
    """
    demands = np.asarray(demands, dtype=np.float64)
    group_ids = np.asarray(group_ids)
    group_capacities = np.asarray(group_capacities, dtype=np.float64)
    if demands.shape != group_ids.shape:
        raise ValueError("demands and group_ids must have the same shape")
    if demands.size == 0:
        return demands.copy()
    n_groups = group_capacities.shape[0]
    totals = np.bincount(group_ids, weights=demands, minlength=n_groups)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        # The quotient overflows to inf for near-zero totals (long adaptive
        # steps make capacity * dt huge); such groups are under capacity and
        # np.where discards the quotient there, so the overflow is benign.
        factors = np.where(totals > group_capacities, group_capacities / np.maximum(totals, 1e-300), 1.0)
    factors = np.clip(factors, 0.0, 1.0)
    return demands * factors[group_ids]


def admission_order_keys(
    weights: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw keys whose ascending order is a weighted random permutation.

    Uses the exponential-race trick: ``key = Exp(1) / weight``; sorting by
    the key gives each entity a probability of coming first proportional to
    its weight.  Entities with higher weights (established connections) tend
    to be admitted earlier when capacity is scarce.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights <= 0):
        raise ValueError("weights must be positive")
    draws = rng.exponential(1.0, size=weights.shape)
    return draws / weights


def allocate_greedy_in_order(
    demands: np.ndarray,
    order_keys: np.ndarray,
    group_ids: np.ndarray,
    group_capacities: np.ndarray,
) -> np.ndarray:
    """Admit demands greedily in key order within each group.

    Entities are sorted by ``order_keys`` (ascending) within their group and
    each takes ``min(demand, remaining group capacity)``; later entities of
    an exhausted group receive nothing.  This models a drop-tail buffer where
    whoever's burst arrives first wins the free space.

    Returns
    -------
    numpy.ndarray
        Per-entity admitted amounts.
    """
    demands = np.asarray(demands, dtype=np.float64)
    order_keys = np.asarray(order_keys, dtype=np.float64)
    group_ids = np.asarray(group_ids)
    group_capacities = np.asarray(group_capacities, dtype=np.float64)
    if not (demands.shape == order_keys.shape == group_ids.shape):
        raise ValueError("demands, order_keys and group_ids must have the same shape")
    n = demands.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.float64)

    # Sort by (group, key) so each group's entities are contiguous in order.
    sorter = np.lexsort((order_keys, group_ids))
    sorted_groups = group_ids[sorter]
    sorted_demands = demands[sorter]

    # Cumulative demand within each group, exclusive of the current entity.
    cumulative = np.cumsum(sorted_demands)
    group_start_mask = np.ones(n, dtype=bool)
    group_start_mask[1:] = sorted_groups[1:] != sorted_groups[:-1]
    group_start_indices = np.flatnonzero(group_start_mask)
    # Offset of the cumulative sum at the start of each group.
    offsets = np.zeros(n, dtype=np.float64)
    start_cumulative = np.where(group_start_indices > 0, cumulative[group_start_indices - 1], 0.0)
    offsets[group_start_indices] = start_cumulative
    offsets = np.maximum.accumulate(offsets)
    before_me = cumulative - sorted_demands - offsets

    caps = group_capacities[sorted_groups]
    admitted_sorted = np.clip(caps - before_me, 0.0, sorted_demands)

    admitted = np.zeros(n, dtype=np.float64)
    admitted[sorter] = admitted_sorted
    return admitted


def split_capacity(total: float, weights: np.ndarray) -> np.ndarray:
    """Split ``total`` proportionally to ``weights`` (no demand caps).

    Small helper used by reporting code; kept here so the allocation
    behaviours live in one module.
    """
    weights = np.asarray(weights, dtype=np.float64)
    s = weights.sum()
    if s <= 0:
        return np.zeros_like(weights)
    return total * weights / s


def group_totals(values: np.ndarray, group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    """Sum ``values`` per group id (thin wrapper around ``np.bincount``)."""
    values = np.asarray(values, dtype=np.float64)
    group_ids = np.asarray(group_ids)
    return np.bincount(group_ids, weights=values, minlength=n_groups)
