"""End-to-end re-verification of a persisted run directory.

``repro-io reproduce RUN_DIR`` answers a stronger question than
``repro-io verify``: not just "are the stored bytes intact?" but "does
re-executing this run's recipe today still produce those bytes?".  Three
stages, each reported per check:

1. **integrity** — the manifest parses, carries every required field, and
   every recorded artifact re-hashes to its manifest checksum
   (:func:`repro.runner.store.sha256_file`, the same digest the store
   wrote);
2. **re-execution** — the task list is re-derived from the stored
   ``matrix.json`` (specs, scale, options, stepping travel inside it) and
   re-executed through the cached batched runner
   (:func:`repro.scenarios.matrix.rerun_matrix_document`) — with a warm
   cache every task is a hit and the stage costs milliseconds;
3. **byte comparison** — the regenerated ``matrix.json`` and
   ``EXPERIMENTS.md`` artifact texts (shared renderer:
   :func:`repro.scenarios.matrix.matrix_artifacts`) are diffed byte-for-byte
   against the stored files.

Telemetry artifacts (``telemetry.json``/``telemetry_events.jsonl``) and the
manifest's task table describe one concrete execution; they are checksummed
in stage 1 but never byte-compared — a reproduced run legitimately has its
own timeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro._version import __version__
from repro.errors import AnalysisError
from repro.runner.store import (
    MANIFEST_NAME,
    REQUIRED_MANIFEST_FIELDS,
    sha256_file,
)

__all__ = ["ReproduceCheck", "ReproduceReport", "reproduce_run"]

#: The artifacts a reproduced matrix regenerates and byte-compares.
REPRODUCIBLE_ARTIFACTS = ("matrix.json", "EXPERIMENTS.md")


@dataclass(frozen=True)
class ReproduceCheck:
    """One named pass/fail/skip verdict of the reproduce pipeline."""

    name: str
    status: str  # "ok" | "FAIL" | "skip"
    detail: str = ""


@dataclass
class ReproduceReport:
    """Every check of one ``reproduce_run``, renderable as the CLI report."""

    run_dir: str
    checks: List[ReproduceCheck] = field(default_factory=list)

    def add(self, name: str, status: str, detail: str = "") -> None:
        self.checks.append(ReproduceCheck(name, status, detail))

    @property
    def ok(self) -> bool:
        return all(check.status != "FAIL" for check in self.checks)

    @property
    def n_passed(self) -> int:
        return sum(1 for check in self.checks if check.status == "ok")

    def render(self) -> str:
        lines = []
        for check in self.checks:
            line = f"[reproduce] {check.status:4s} {check.name}"
            if check.detail:
                line += f": {check.detail}"
            lines.append(line)
        graded = [c for c in self.checks if c.status != "skip"]
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"[reproduce] {verdict} {self.run_dir}: "
            f"{self.n_passed}/{len(graded)} checks passed"
        )
        return "\n".join(lines)


def _first_difference(stored: bytes, regenerated: bytes) -> str:
    """Human-sized description of where two byte strings diverge."""
    limit = min(len(stored), len(regenerated))
    for i in range(limit):
        if stored[i] != regenerated[i]:
            return (
                f"first difference at byte {i} "
                f"(stored {len(stored)} bytes, regenerated {len(regenerated)})"
            )
    return (
        f"lengths differ after a common prefix of {limit} bytes "
        f"(stored {len(stored)}, regenerated {len(regenerated)})"
    )


def _check_integrity(report: ReproduceReport, run_path: Path) -> Optional[Dict]:
    """Stage 1: manifest fields + per-artifact checksums.  Returns manifest."""
    manifest_path = run_path / MANIFEST_NAME
    if not manifest_path.is_file():
        report.add("manifest", "FAIL", f"missing {manifest_path}")
        return None
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except ValueError as exc:
        report.add("manifest", "FAIL", f"unreadable: {exc}")
        return None

    missing = [f for f in REQUIRED_MANIFEST_FIELDS if f not in manifest]
    if missing:
        report.add("manifest", "FAIL", f"missing required fields {missing}")
    else:
        report.add(
            "manifest", "ok",
            f"{len(REQUIRED_MANIFEST_FIELDS)} required fields present",
        )

    artifacts = manifest.get("artifacts", {})
    if not isinstance(artifacts, dict):
        report.add("artifacts", "FAIL", "'artifacts' must be a mapping")
        return manifest
    for name in sorted(artifacts):
        entry = artifacts[name]
        if not isinstance(entry, dict):
            report.add(f"checksum {name}", "FAIL", "entry must be a mapping")
            continue
        artifact_path = run_path / entry.get("path", name)
        if not artifact_path.is_file():
            report.add(f"checksum {name}", "FAIL", "artifact missing")
            continue
        actual = sha256_file(artifact_path)
        recorded = entry.get("sha256")
        if actual != recorded:
            report.add(
                f"checksum {name}", "FAIL",
                f"manifest {recorded}, file {actual}",
            )
        elif "bytes" in entry and artifact_path.stat().st_size != entry["bytes"]:
            report.add(f"checksum {name}", "FAIL", "size mismatch")
        else:
            report.add(
                f"checksum {name}", "ok",
                f"{artifact_path.stat().st_size} bytes",
            )
    return manifest


def reproduce_run(
    run_dir: Union[str, Path],
    *,
    cache_dir: Optional[str] = None,
    jobs: int = 1,
    batch: bool = True,
    verify_only: bool = False,
) -> ReproduceReport:
    """Re-verify one run directory; see the module docstring for the stages.

    ``cache_dir`` feeds the re-execution through the content-addressed
    cache (the original run's cache makes the whole stage cache hits);
    ``verify_only`` stops after stage 1.  Never raises for a failing run —
    failures are checks in the returned report; callers exit non-zero on
    ``not report.ok``.
    """
    run_path = Path(run_dir)
    report = ReproduceReport(run_dir=str(run_dir))
    manifest = _check_integrity(report, run_path)
    if manifest is None or verify_only:
        return report

    artifacts = manifest.get("artifacts", {})
    if "matrix.json" not in artifacts:
        report.add(
            "re-execute", "FAIL",
            "run carries no matrix.json recipe; only matrix runs are "
            "end-to-end reproducible (use repro-io verify for "
            "checksum-only verification)",
        )
        return report

    try:
        with open(run_path / "matrix.json", "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        report.add("re-execute", "FAIL", f"unreadable matrix.json: {exc}")
        return report

    stored_version = document.get("version", "?")
    if stored_version == __version__:
        report.add("version", "ok", f"stored and running {__version__}")
    else:
        report.add(
            "version", "FAIL",
            f"stored by {stored_version}, running {__version__} — "
            "byte-identity is not expected across versions",
        )

    from repro.scenarios.matrix import matrix_artifacts, rerun_matrix_document

    tally = {"tasks": 0, "cached": 0}

    def progress(task_id: str, from_cache: bool) -> None:
        tally["tasks"] += 1
        tally["cached"] += 1 if from_cache else 0

    try:
        matrix = rerun_matrix_document(
            document, jobs=jobs, cache_dir=cache_dir,
            batch=batch, progress=progress,
        )
    except (AnalysisError, KeyError, TypeError, ValueError) as exc:
        report.add("re-execute", "FAIL", f"{type(exc).__name__}: {exc}")
        return report
    report.add(
        "re-execute", "ok",
        f"{tally['tasks']} tasks ({tally['cached']} cached)",
    )

    regenerated = matrix_artifacts(matrix)
    for name in REPRODUCIBLE_ARTIFACTS:
        if name not in artifacts:
            report.add(
                f"regenerated {name}", "skip",
                "not recorded in this run's manifest (stored by an older "
                "version)",
            )
            continue
        stored_bytes = (run_path / name).read_bytes()
        fresh_bytes = regenerated[name].encode("utf-8")
        if stored_bytes == fresh_bytes:
            report.add(
                f"regenerated {name}", "ok",
                f"byte-identical ({len(fresh_bytes)} bytes)",
            )
        else:
            report.add(
                f"regenerated {name}", "FAIL",
                _first_difference(stored_bytes, fresh_bytes),
            )
    return report
