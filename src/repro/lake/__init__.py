"""The queryable result lake over the content-addressed cache.

The cache (:mod:`repro.runner.cache`) stores one JSON object per finished
task and appends one headline line per store to ``index.jsonl``.  This
package turns that material into something a human (or the future oracle
service) can *ask questions of*:

* :mod:`repro.lake.index` — load the index, deduplicate it (last occurrence
  wins) and reconcile it against ``objects/`` so queries never report ghost
  entries or miss unindexed objects;
* :mod:`repro.lake.query` — filter/sort/aggregate over key material,
  headline metrics and derived cross-entry metrics (pair dilation and
  slowdowns joined against their alone baselines);
* :mod:`repro.lake.reproduce` — the ``repro-io reproduce`` verb: re-verify
  a persisted run directory end-to-end from its manifest (checksums, task
  re-execution through the cached batched runner, byte-for-byte artifact
  comparison).
"""

from repro.lake.index import LakeView, load_lake, scan_lake
from repro.lake.query import (
    QueryFilter,
    aggregate_entries,
    attach_derived,
    parse_sort,
    parse_where,
    run_query,
)
from repro.lake.reproduce import ReproduceReport, reproduce_run

__all__ = [
    "LakeView",
    "load_lake",
    "scan_lake",
    "QueryFilter",
    "parse_where",
    "parse_sort",
    "run_query",
    "aggregate_entries",
    "attach_derived",
    "ReproduceReport",
    "reproduce_run",
]
