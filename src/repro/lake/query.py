"""Filter / sort / aggregate queries over lake entries.

Fields are dotted paths into the entry dict — ``key.kind``,
``key.task_id``, ``headline.makespan``, ``fingerprint`` — resolved with a
longest-match rule so flattened headline names that themselves contain a
dot (``headline.phase_times.0``) still resolve.  ``derived.*`` fields are
cross-entry joins computed by :func:`attach_derived`: a ``matrix-pair``
entry whose two alone baselines are also in the lake gains
``derived.dilation``, ``derived.slowdown_a``/``_b`` and
``derived.asymmetry`` — which is what makes "worst observed dilation for
checkpoint x randomread across all runs" a one-liner::

    repro-io lake query --where key.kind=matrix-pair \\
        --where key.task_id~checkpoint --where key.task_id~randomread \\
        --sort derived.dilation:desc --limit 1

Filter grammar (one ``--where`` each): ``field=value``, ``field!=value``,
``field~substring``, ``field>num``, ``field>=num``, ``field<num``,
``field<=num``, or a bare ``field`` (present and non-null).  An entry
missing the field never matches — the lake answers about facts it has,
it does not invent nulls.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import UsageError
from repro.obs.telemetry import get_telemetry

__all__ = [
    "QueryFilter",
    "parse_where",
    "parse_sort",
    "parse_aggregate",
    "resolve_field",
    "attach_derived",
    "run_query",
    "aggregate_entries",
    "AGGREGATE_FUNCTIONS",
]

Entry = Dict[str, object]

#: Operator tokens, longest first so ``>=`` is not parsed as ``>``.
_OPERATORS: Tuple[str, ...] = (">=", "<=", "!=", "=", ">", "<", "~")

AGGREGATE_FUNCTIONS = ("min", "max", "mean", "sum", "count")


def resolve_field(entry: Entry, path: str):
    """The value at a dotted ``path``, or ``None`` when absent.

    At every level the full remaining path is tried as a literal key before
    descending one segment, so flattened metric names containing dots
    (``phase_times.0``) resolve under their section (``headline.``).
    """
    parts = path.split(".")
    node: object = entry
    i = 0
    while i < len(parts):
        if not isinstance(node, dict):
            return None
        remainder = ".".join(parts[i:])
        if remainder in node:
            return node[remainder]
        if parts[i] in node:
            node = node[parts[i]]
            i += 1
            continue
        return None
    return node


def _as_number(value) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


@dataclass(frozen=True)
class QueryFilter:
    """One parsed ``--where`` expression."""

    field: str
    op: str  # one of _OPERATORS, or "present" for a bare field
    value: str = ""

    def matches(self, entry: Entry) -> bool:
        actual = resolve_field(entry, self.field)
        if actual is None:
            return False
        if self.op == "present":
            return True
        if self.op == "~":
            return self.value in str(actual)
        if self.op in ("=", "!="):
            left, right = _as_number(actual), _as_number(self.value)
            equal = (
                left == right
                if left is not None and right is not None
                else str(actual) == self.value
            )
            return equal if self.op == "=" else not equal
        left, right = _as_number(actual), _as_number(self.value)
        if left is None or right is None:
            return False
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        if self.op == "<":
            return left < right
        return left <= right  # "<="


def parse_where(expr: str) -> QueryFilter:
    """Parse one filter expression; raises :class:`UsageError` when malformed."""
    text = expr.strip()
    if not text:
        raise UsageError("--where expects a non-empty expression")
    for op in _OPERATORS:
        index = text.find(op)
        if index > 0:
            field = text[:index].strip()
            value = text[index + len(op):].strip()
            if not field:
                break
            if op != "~" and not value:
                raise UsageError(
                    f"--where {expr!r} has operator {op!r} but no value"
                )
            return QueryFilter(field=field, op=op, value=value)
        if index == 0:
            raise UsageError(f"--where {expr!r} has no field before {op!r}")
    return QueryFilter(field=text, op="present")


def parse_sort(spec: str) -> Tuple[str, bool]:
    """Parse ``FIELD[:asc|:desc]`` into ``(field, reverse)``."""
    field, _, direction = spec.strip().partition(":")
    if not field:
        raise UsageError("--sort expects FIELD or FIELD:desc")
    direction = direction or "asc"
    if direction not in ("asc", "desc"):
        raise UsageError(
            f"--sort direction must be asc or desc, got {direction!r}"
        )
    return field, direction == "desc"


def parse_aggregate(spec: str) -> Tuple[str, str]:
    """Parse ``FN:FIELD`` into ``(fn, field)``."""
    fn, _, field = spec.strip().partition(":")
    if fn not in AGGREGATE_FUNCTIONS or not field:
        raise UsageError(
            f"--agg expects FN:FIELD with FN in {sorted(AGGREGATE_FUNCTIONS)}, "
            f"got {spec!r}"
        )
    return fn, field


# --------------------------------------------------------------------------- #
# Derived cross-entry metrics
# --------------------------------------------------------------------------- #


def _baseline_join_key(key: Dict[str, object], spec: object) -> str:
    """The identity under which a pair leg matches its alone baseline.

    Alone tasks normalize the pair start ``delay`` to zero (it cannot affect
    a single-workload run), so the join strips ``delay`` from the options on
    both sides; everything else — scale, stepping, deployment options and
    the spec itself — must match exactly.
    """
    options = key.get("options")
    options = {
        k: v for k, v in dict(options or {}).items() if k != "delay"
    }
    return json.dumps(
        {
            "scale": key.get("scale"),
            "stepping": key.get("stepping"),
            "options": options,
            "spec": spec,
        },
        sort_keys=True,
    )


def attach_derived(entries: Sequence[Entry]) -> List[Entry]:
    """Join pair entries with their alone baselines; returns ``entries``.

    Every ``matrix-pair`` entry whose two alone baselines are present in
    the lake (same scale/options/stepping, matched per spec) gains a
    ``derived`` section: ``alone_a``/``alone_b``, ``dilation`` (makespan
    over the longer alone phase), ``slowdown_a``/``slowdown_b`` (from the
    flattened ``phase_times.*`` headline) and ``asymmetry``.  Entries
    without a complete join are left untouched — derived fields never
    guess.
    """
    baselines: Dict[str, float] = {}
    for entry in entries:
        key = entry.get("key") or {}
        if not isinstance(key, dict) or key.get("kind") != "matrix-alone":
            continue
        headline = entry.get("headline") or {}
        phase = _as_number(
            headline.get("phase_time") if isinstance(headline, dict) else None
        )
        specs = key.get("specs") or []
        if phase is None or phase <= 0 or len(specs) != 1:
            continue
        baselines[_baseline_join_key(key, specs[0])] = phase

    for entry in entries:
        key = entry.get("key") or {}
        if not isinstance(key, dict) or key.get("kind") != "matrix-pair":
            continue
        specs = key.get("specs") or []
        if len(specs) != 2:
            continue
        alone_a = baselines.get(_baseline_join_key(key, specs[0]))
        alone_b = baselines.get(_baseline_join_key(key, specs[1]))
        if alone_a is None or alone_b is None:
            continue
        headline = entry.get("headline") or {}
        derived: Dict[str, float] = {"alone_a": alone_a, "alone_b": alone_b}
        makespan = _as_number(headline.get("makespan"))
        if makespan is not None:
            derived["dilation"] = makespan / max(alone_a, alone_b)
        pair_a = _as_number(headline.get("phase_times.0"))
        pair_b = _as_number(headline.get("phase_times.1"))
        if pair_a is not None:
            derived["slowdown_a"] = pair_a / alone_a
        if pair_b is not None:
            derived["slowdown_b"] = pair_b / alone_b
        if "slowdown_a" in derived and "slowdown_b" in derived:
            derived["asymmetry"] = derived["slowdown_a"] - derived["slowdown_b"]
        entry["derived"] = derived
    return list(entries)


# --------------------------------------------------------------------------- #
# Query execution
# --------------------------------------------------------------------------- #


def _sort_value(entry: Entry, field: str):
    """A totally ordered sort key: numbers first, then strings, absent last."""
    value = resolve_field(entry, field)
    number = _as_number(value)
    if number is not None:
        return (0, number, "")
    if value is None:
        return (2, 0.0, "")
    return (1, 0.0, str(value))


def run_query(
    entries: Sequence[Entry],
    where: Sequence[QueryFilter] = (),
    sort: Optional[Tuple[str, bool]] = None,
    limit: Optional[int] = None,
    derived: bool = True,
) -> List[Entry]:
    """Execute one query: derive, filter, sort, truncate."""
    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.count("lake.query")
    pool = attach_derived(list(entries)) if derived else list(entries)
    for query_filter in where:
        pool = [e for e in pool if query_filter.matches(e)]
    if sort is not None:
        field, reverse = sort
        # Entries missing the sort field go last in either direction — a
        # plain reverse=True sort would float them to the top of a :desc
        # query, ahead of every real value.
        present = [e for e in pool if resolve_field(e, field) is not None]
        absent = [e for e in pool if resolve_field(e, field) is None]
        present.sort(key=lambda e: _sort_value(e, field), reverse=reverse)
        pool = present + absent
    if limit is not None:
        pool = pool[: max(0, int(limit))]
    return pool


def aggregate_entries(
    entries: Sequence[Entry],
    specs: Sequence[Tuple[str, str]],
    group_by: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Aggregate rows ``{group?, aggregate, value, n}`` over the entries.

    ``count`` counts entries where the field resolves; the numeric
    functions skip entries whose field is absent or non-numeric (``n``
    reports how many contributed).
    """
    groups: Dict[str, List[Entry]] = {}
    if group_by is None:
        groups[""] = list(entries)
    else:
        for entry in entries:
            value = resolve_field(entry, group_by)
            if value is None:
                continue
            groups.setdefault(str(value), []).append(entry)

    rows: List[Dict[str, object]] = []
    for group in sorted(groups):
        for fn, field in specs:
            values = [
                number
                for entry in groups[group]
                for number in (_as_number(resolve_field(entry, field)),)
                if number is not None
            ]
            if fn == "count":
                present = sum(
                    1 for entry in groups[group]
                    if resolve_field(entry, field) is not None
                )
                value: object = present
                n = present
            elif not values:
                value = None
                n = 0
            elif fn == "min":
                value, n = min(values), len(values)
            elif fn == "max":
                value, n = max(values), len(values)
            elif fn == "sum":
                value, n = sum(values), len(values)
            else:  # mean
                value, n = sum(values) / len(values), len(values)
            row: Dict[str, object] = {
                "aggregate": f"{fn}({field})",
                "value": value,
                "n": n,
            }
            if group_by is not None:
                row = {group_by: group, **row}
            rows.append(row)
    return rows
