"""Loading and reconciling the result-lake index.

The contract (documented in DESIGN.md "The result lake"):

* ``index.jsonl`` is append-only; a fingerprint stored twice appears twice
  and **the last occurrence wins**;
* ``objects/`` is the single source of truth — an index line whose object
  no longer exists is a *ghost* and must never surface in query results; an
  object without an index line (a legacy entry stored before the index
  existed) is *missing* and must still surface;
* :func:`load_lake` therefore returns exactly one entry per object on disk:
  deduplicated index lines for the indexed ones, and entries rebuilt from
  the stored envelope (same headline extraction) for the missing ones.

Entries are plain dicts shaped like index lines::

    {"fingerprint": ..., "stored_at": ..., "key": {...}, "headline": {...}}

so the query layer, the JSONL on disk and a rescan of ``objects/`` all
speak one format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.telemetry import get_telemetry
from repro.runner.cache import headline_metrics

__all__ = ["LakeView", "load_lake", "scan_lake"]

#: One lake entry (an index-line-shaped dict).
Entry = Dict[str, object]


@dataclass
class LakeView:
    """The reconciled state of one cache directory.

    ``entries`` is authoritative: exactly one entry per object in
    ``objects/``, deterministically ordered by ``(stored_at, fingerprint)``.
    The remaining fields describe what reconciliation had to repair — the
    material for ``repro-io lake stats`` and the ``lake.reconcile.*``
    telemetry counters.
    """

    root: str
    entries: List[Entry] = field(default_factory=list)
    #: Fingerprints the index named but ``objects/`` no longer holds.
    ghosts: List[str] = field(default_factory=list)
    #: Fingerprints found in ``objects/`` with no index line (rebuilt here).
    backfilled: List[str] = field(default_factory=list)
    #: Raw index lines read (before dedup; corrupt lines excluded).
    index_lines: int = 0
    #: Index lines shadowed by a later line for the same fingerprint.
    duplicates: int = 0
    #: Objects whose stored envelope could not be parsed (skipped).
    unreadable: int = 0
    #: Torn/truncated/garbage index lines skipped (``compact`` heals them).
    corrupt_lines: int = 0

    @property
    def coherent(self) -> bool:
        """True when the index needed no repairs (no ghosts, no backfills)."""
        return not self.ghosts and not self.backfilled


def _index_path(root: Path) -> Path:
    return root / "index.jsonl"


def _read_index_lines(root: Path) -> Tuple[List[Entry], int]:
    """Parsed ``index.jsonl`` lines, oldest first, plus a corrupt-line count.

    A writer killed mid-append leaves a torn final line; disk corruption can
    inject binary garbage anywhere.  Neither may take the whole lake down:
    bad lines are skipped and counted, and the objects they described are
    healed by the backfill path of :func:`load_lake` (or permanently by
    ``repro-io lake compact``).  Undecodable bytes are replaced rather than
    raised so a single mangled line cannot poison the read of every other.
    """
    try:
        raw_bytes = _index_path(root).read_bytes()
    except OSError:
        return [], 0
    lines: List[Entry] = []
    corrupt = 0
    for raw in raw_bytes.decode("utf-8", errors="replace").splitlines():
        if not raw.strip():
            continue
        try:
            parsed = json.loads(raw)
        except ValueError:
            corrupt += 1
            continue
        if isinstance(parsed, dict) and "fingerprint" in parsed:
            lines.append(parsed)
        else:
            corrupt += 1
    return lines, corrupt


def _object_fingerprints(root: Path) -> List[str]:
    """Fingerprints of every object under ``objects/<aa>/`` (sorted)."""
    objects = root / "objects"
    if not objects.is_dir():
        return []
    return sorted(p.stem for p in objects.glob("*/*.json"))


def _entry_from_object(root: Path, fp: str) -> Optional[Entry]:
    """Rebuild one index-line-shaped entry from a stored object envelope."""
    path = root / "objects" / fp[:2] / f"{fp}.json"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(envelope, dict) or "payload" not in envelope:
        return None
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        return None
    return {
        "fingerprint": fp,
        "stored_at": envelope.get("stored_at", 0.0),
        "key": dict(envelope.get("key", {}) or {}),
        "headline": headline_metrics(payload),
    }


def _sort_key(entry: Entry):
    try:
        stored = float(entry.get("stored_at", 0.0))
    except (TypeError, ValueError):
        stored = 0.0
    return (stored, str(entry.get("fingerprint", "")))


def load_lake(cache_dir: Union[str, Path]) -> LakeView:
    """Reconcile ``index.jsonl`` against ``objects/`` and return the view.

    Fast path: indexed objects reuse their (deduplicated, last-wins) index
    line without touching the object file; only unindexed objects pay a
    full envelope read.  Ghost lines are dropped, never surfaced.
    """
    root = Path(cache_dir)
    lines, corrupt = _read_index_lines(root)
    deduped: Dict[str, Entry] = {}
    for line in lines:  # oldest first -> later lines overwrite: last wins
        deduped[str(line["fingerprint"])] = line
    live = _object_fingerprints(root)
    live_set = set(live)

    view = LakeView(
        root=str(root),
        index_lines=len(lines),
        duplicates=len(lines) - len(deduped),
        ghosts=sorted(set(deduped) - live_set),
        corrupt_lines=corrupt,
    )
    for fp in live:
        line = deduped.get(fp)
        if line is None:
            rebuilt = _entry_from_object(root, fp)
            if rebuilt is None:
                view.unreadable += 1
                continue
            view.backfilled.append(fp)
            view.entries.append(rebuilt)
        else:
            view.entries.append(line)
    view.entries.sort(key=_sort_key)

    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.count("lake.entries", len(view.entries))
        telemetry.count("lake.reconcile.ghosts", len(view.ghosts))
        telemetry.count("lake.reconcile.backfilled", len(view.backfilled))
        telemetry.count("lake.reconcile.duplicates", view.duplicates)
        if view.corrupt_lines:
            telemetry.count("lake.reconcile.corrupt_lines", view.corrupt_lines)
    return view


def scan_lake(cache_dir: Union[str, Path]) -> List[Entry]:
    """Ground-truth entries built purely from ``objects/`` (no index read).

    Every object envelope is parsed; the index file is ignored entirely.
    This is the oracle the reconciliation property tests compare
    :func:`load_lake` against — by construction it can contain neither
    ghosts nor missing entries.
    """
    root = Path(cache_dir)
    entries: List[Entry] = []
    for fp in _object_fingerprints(root):
        entry = _entry_from_object(root, fp)
        if entry is not None:
            entries.append(entry)
    entries.sort(key=_sort_key)
    return entries
