"""The PVFS server model.

A server's write path has two halves:

* the **ingest** half (network stack + request processing + Trove): limited
  by a byte rate (:attr:`~repro.config.server.ServerConfig.ingest_bw`) and a
  per-fragment CPU cost, and — crucially — with *no flow control of its own*:
  it accepts whatever the receive buffer holds and relies on TCP to throttle
  the clients, which is the design weakness the paper identifies;
* the **backend** half: with sync ON every byte must reach the device before
  it is acknowledged, so the device's effective bandwidth (which degrades
  under interleaving and small granularity) is on the critical path; with
  sync OFF bytes only have to reach the write-back cache; with null-aio they
  are discarded.

:class:`PVFSServer` computes the resulting drain capacity per simulation step
and keeps per-server accounting used by root-cause analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.config.filesystem import SyncMode
from repro.config.server import ServerConfig
from repro.errors import SimulationError
from repro.storage.device import DeviceSpec
from repro.storage.queueing import DeviceQueue
from repro.storage.writeback import WritebackCache

__all__ = ["PVFSServer"]

#: Size of the flow buffers PVFS uses to move data between the network and
#: Trove; request processing happens at (multiples of) this granularity.
FLOW_BUFFER_BYTES = 256 * units.KiB


@dataclass
class PVFSServer:
    """One storage server of the deployment.

    Attributes
    ----------
    server_id:
        Index of the server.
    config:
        Static resource description.
    device:
        Backend device specification.
    sync_mode:
        Synchronization policy.
    stripe_size:
        Striping unit of the deployment (sets the processing granularity).
    server_nic_bw:
        Downlink bandwidth of the server (bytes/s).
    """

    server_id: int
    config: ServerConfig
    device: DeviceSpec
    sync_mode: SyncMode
    stripe_size: float
    server_nic_bw: float
    cache: WritebackCache = field(init=False)
    device_queue: DeviceQueue = field(init=False)
    drained_bytes: float = field(default=0.0, init=False)
    busy_time: float = field(default=0.0, init=False)
    observed_time: float = field(default=0.0, init=False)
    # Optional shared drain-rate memo (see attach_rate_memo); deployments
    # install one across their servers, standalone servers run unmemoized.
    _rate_memo: Optional[dict] = field(default=None, init=False, repr=False)
    _memo_keyed_on_cache: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.stripe_size <= 0:
            raise SimulationError("stripe_size must be positive")
        if self.server_nic_bw <= 0:
            raise SimulationError("server_nic_bw must be positive")
        self.cache = WritebackCache(
            capacity_bytes=self.config.page_cache_bytes,
            memory_bw=self.config.memory_bw,
            device=self.device,
            flush_bw_fraction=self.config.flush_bw_fraction,
        )
        self.device_queue = DeviceQueue(device=self.device)

    # ------------------------------------------------------------------ #
    # Capacity laws
    # ------------------------------------------------------------------ #

    def processing_unit(self, avg_fragment_size: float) -> float:
        """Granularity (bytes) at which the server processes incoming data.

        Requests are handled in flow-buffer-sized pieces, but never larger
        than the fragments actually arriving (small strided fragments are
        processed one by one).
        """
        unit = max(self.stripe_size, FLOW_BUFFER_BYTES)
        if avg_fragment_size > 0:
            unit = min(unit, avg_fragment_size)
        return max(unit, 1.0)

    def backend_rate(self, n_streams: int, granularity: float) -> float:
        """Byte rate of the backend half of the write path.

        * sync ON  — the device's effective bandwidth for the current
          interleaving and granularity;
        * sync OFF — the write-back cache absorb rate (memory speed until the
          cache fills, then the flush rate);
        * null-aio — unbounded.
        """
        granularity = max(granularity, 1.0)
        if self.sync_mode is SyncMode.NULL_AIO:
            return float("inf")
        if self.sync_mode is SyncMode.SYNC_OFF:
            return self.cache.absorb_rate(n_streams, granularity)
        return self.device.effective_write_bw(n_streams, granularity)

    def ingest_rate(self) -> float:
        """Byte rate of the ingest half (request processing ceiling).

        The null-aio method bypasses the data-copy path (data is thrown away
        before it would be staged for Trove), so only the NIC limits it.
        """
        if self.sync_mode is SyncMode.NULL_AIO:
            return self.server_nic_bw
        return min(self.config.ingest_bw, self.server_nic_bw)

    def drain_rate(self, n_streams: int, avg_fragment_size: float) -> float:
        """Sustainable drain bandwidth (bytes/s) for the current workload mix.

        Combines the byte-rate ceiling (ingest and backend in series: the
        slower of the two) with the per-fragment CPU cost, charged once per
        processing unit:

            rate = 1 / (1 / byte_rate + op_cost / unit)
        """
        byte_rate = min(self.ingest_rate(), self.backend_rate(n_streams, avg_fragment_size))
        if byte_rate == float("inf"):
            byte_rate = self.server_nic_bw
        unit = self.processing_unit(avg_fragment_size)
        op_cost = self.config.fragment_op_cost
        if op_cost <= 0:
            return byte_rate
        return 1.0 / (1.0 / byte_rate + op_cost / unit)

    def attach_rate_memo(self, memo: dict, keyed_on_cache: bool) -> None:
        """Share a drain-rate memo across identically-resourced servers.

        ``memo`` maps ``(n_streams, granularity[, cache_is_full])`` to the
        drain rate; ``keyed_on_cache`` must be True for the Sync OFF path,
        whose rate depends on whether the write-back cache is full (the only
        mutable state the drain-rate law reads).
        """
        self._rate_memo = memo
        self._memo_keyed_on_cache = keyed_on_cache

    def drain_rate_cached(self, n_streams: int, avg_fragment_size: float) -> float:
        """Memoized :meth:`drain_rate`; identical values, evaluated once per key."""
        memo = self._rate_memo
        if memo is None:
            return self.drain_rate(n_streams, avg_fragment_size)
        if self._memo_keyed_on_cache:
            key = (n_streams, avg_fragment_size, self.cache.is_full)
        else:
            key = (n_streams, avg_fragment_size)
        rate = memo.get(key)
        if rate is None:
            rate = self.drain_rate(n_streams, avg_fragment_size)
            if len(memo) >= 4096:
                memo.clear()
            memo[key] = rate
        return rate

    # ------------------------------------------------------------------ #
    # Per-step state updates
    # ------------------------------------------------------------------ #

    def commit(self, nbytes: float, dt: float, n_streams: int, granularity: float) -> None:
        """Account for ``nbytes`` drained from the receive buffer this step.

        With sync ON the bytes go straight to the device; with sync OFF they
        enter the write-back cache (and the background flusher runs); with
        null-aio they vanish.
        """
        if nbytes < 0:
            raise SimulationError("cannot commit a negative number of bytes")
        if dt <= 0:
            raise SimulationError("dt must be positive")
        granularity = max(granularity, 1.0)
        self.observed_time += dt
        self.drained_bytes += nbytes
        if self.sync_mode is SyncMode.NULL_AIO:
            return
        if self.sync_mode is SyncMode.SYNC_OFF:
            self.cache.flush(dt, n_streams, granularity)
            if nbytes > 0:
                self.cache.absorb(nbytes, dt, n_streams, granularity)
        else:
            self.device_queue.commit_step(nbytes, dt, n_streams, granularity)
        if nbytes > 0:
            capacity = self.drain_rate_cached(n_streams, granularity) * dt
            if capacity > 0:
                self.busy_time += dt * min(nbytes / capacity, 1.0)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def utilization(self) -> float:
        """Fraction of observed time the server's drain path was busy."""
        if self.observed_time == 0:
            return 0.0
        return min(self.busy_time / self.observed_time, 1.0)

    def device_utilization(self) -> float:
        """Utilization of the backend device (sync ON path)."""
        return self.device_queue.utilization()

    def dirty_cache_bytes(self) -> float:
        """Bytes sitting in the write-back cache (sync OFF path)."""
        return self.cache.dirty_bytes

    def reset(self) -> None:
        """Clear all accounting and cached state."""
        self.cache.reset()
        self.device_queue.reset()
        self.drained_bytes = 0.0
        self.busy_time = 0.0
        self.observed_time = 0.0

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"server {self.server_id}: {self.device.name}, {self.sync_mode.label}, "
            f"ingest {units.bandwidth_to_human(self.config.ingest_bw)}, "
            f"buffer {units.bytes_to_human(self.config.buffer_bytes)}"
        )


def _optional_float(value: Optional[float], default: float) -> float:
    """Small helper for optional numeric parameters."""
    return default if value is None else float(value)
