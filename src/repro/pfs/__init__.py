"""Parallel-file-system substrate (an OrangeFS/PVFS2-like system).

* :mod:`repro.pfs.striping`   — round-robin striping arithmetic (file offsets
  to per-server byte counts),
* :mod:`repro.pfs.request`    — request and fragment records,
* :mod:`repro.pfs.client`     — the client library that turns application
  requests into per-server fragments,
* :mod:`repro.pfs.server`     — the server model (receive buffer, Trove-like
  ingest with per-fragment costs, sync ON/OFF/null backends),
* :mod:`repro.pfs.filesystem` — a deployment: a set of servers plus the
  striping configuration.
"""

from repro.pfs.striping import (
    extent_to_server_bytes,
    extents_to_server_matrix,
    server_of_stripe,
    stripe_span,
)
from repro.pfs.request import Fragment, WriteRequest
from repro.pfs.client import PVFSClient
from repro.pfs.server import PVFSServer
from repro.pfs.filesystem import PVFSDeployment

__all__ = [
    "server_of_stripe",
    "stripe_span",
    "extent_to_server_bytes",
    "extents_to_server_matrix",
    "Fragment",
    "WriteRequest",
    "PVFSClient",
    "PVFSServer",
    "PVFSDeployment",
]
