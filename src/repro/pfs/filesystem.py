"""A PVFS deployment: the set of servers plus striping configuration.

:class:`PVFSDeployment` instantiates one :class:`~repro.pfs.server.PVFSServer`
per configured server and offers vectorized queries (per-server drain rates,
utilizations) the model stepper and the root-cause analysis consume.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.config.filesystem import FileSystemConfig, SyncMode
from repro.errors import ConfigurationError
from repro.pfs.client import PVFSClient
from repro.pfs.server import PVFSServer

__all__ = ["PVFSDeployment"]


class PVFSDeployment:
    """All servers of one file-system deployment.

    Parameters
    ----------
    config:
        The file-system configuration.
    server_nic_bw:
        Downlink bandwidth of each server (bytes/s), taken from the network
        configuration of the scenario.
    """

    def __init__(self, config: FileSystemConfig, server_nic_bw: float) -> None:
        if server_nic_bw <= 0:
            raise ConfigurationError("server_nic_bw must be positive")
        self.config = config
        self.servers: List[PVFSServer] = [
            PVFSServer(
                server_id=s,
                config=config.server,
                device=config.device,
                sync_mode=config.sync_mode,
                stripe_size=config.stripe_size,
                server_nic_bw=server_nic_bw,
            )
            for s in range(config.n_servers)
        ]
        # Drain-rate memo: every server shares the same static resources, so
        # the drain-rate law is a pure function of (n_streams, granularity)
        # plus — for the Sync OFF path only — whether the server's write-back
        # cache is currently full.  One simulation step asks for the same few
        # keys across all servers; the memo collapses those to one evaluation.
        self._rate_memo: Dict[tuple, float] = {}
        keyed_on_cache = config.sync_mode is SyncMode.SYNC_OFF
        for server in self.servers:
            server.attach_rate_memo(self._rate_memo, keyed_on_cache)

    # ------------------------------------------------------------------ #

    @property
    def n_servers(self) -> int:
        """Number of servers in the deployment."""
        return len(self.servers)

    def make_client(self, app: str, rank: int, servers: Sequence[int] | None = None) -> PVFSClient:
        """Create a client handle for one application process."""
        targets = tuple(servers) if servers is not None else self.config.all_servers
        return PVFSClient(
            app=app,
            rank=rank,
            stripe_size=self.config.stripe_size,
            servers=targets,
            n_servers_total=self.n_servers,
        )

    # ------------------------------------------------------------------ #
    # Vectorized queries used by the model stepper
    # ------------------------------------------------------------------ #

    def drain_rates(
        self,
        n_streams: np.ndarray,
        avg_fragment_sizes: np.ndarray,
    ) -> np.ndarray:
        """Per-server drain bandwidth for the current workload mix."""
        n_streams = np.asarray(n_streams)
        avg_fragment_sizes = np.asarray(avg_fragment_sizes, dtype=np.float64)
        if n_streams.shape[0] != self.n_servers or avg_fragment_sizes.shape[0] != self.n_servers:
            raise ConfigurationError("per-server arrays have the wrong length")
        rates = np.empty(self.n_servers, dtype=np.float64)
        for i, server in enumerate(self.servers):
            rates[i] = server.drain_rate_cached(
                int(n_streams[i]), float(avg_fragment_sizes[i])
            )
        return rates

    def commit(
        self,
        drained: np.ndarray,
        dt: float,
        n_streams: np.ndarray,
        avg_fragment_sizes: np.ndarray,
    ) -> None:
        """Account for one step of drained bytes on every server."""
        for i, server in enumerate(self.servers):
            server.commit(
                float(drained[i]), dt, int(n_streams[i]), float(avg_fragment_sizes[i])
            )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def utilizations(self) -> np.ndarray:
        """Per-server drain-path utilization."""
        return np.array([s.utilization() for s in self.servers], dtype=np.float64)

    def device_utilizations(self) -> np.ndarray:
        """Per-server backend-device utilization."""
        return np.array([s.device_utilization() for s in self.servers], dtype=np.float64)

    def dirty_cache_bytes(self) -> np.ndarray:
        """Per-server dirty bytes in the write-back cache."""
        return np.array([s.dirty_cache_bytes() for s in self.servers], dtype=np.float64)

    def total_drained(self) -> float:
        """Total bytes drained by all servers."""
        return float(sum(s.drained_bytes for s in self.servers))

    def utilization_report(self) -> Dict[str, float]:
        """Utilization keyed by server name."""
        return {f"server{s.server_id}": s.utilization() for s in self.servers}

    def reset(self) -> None:
        """Reset every server's accounting state."""
        for server in self.servers:
            server.reset()

    def describe(self) -> Tuple[str, ...]:
        """Per-server one-line descriptions."""
        return tuple(server.describe() for server in self.servers)
