"""Round-robin striping arithmetic.

PVFS distributes a file's data across its I/O servers in fixed-size stripes
assigned round-robin: stripe ``k`` of a file lives on server
``servers[k % len(servers)]``.  The functions here convert byte extents of a
file into per-server byte counts; the model uses them to decide which
connections a request loads and by how much, and the Figure 8/9 experiments
rely on them to reproduce the stripe-size and request-size effects.

All functions accept an explicit tuple of server indices because an
application may target a subset of the deployment (the partitioned-server
experiment of Figure 7); striping is always round-robin over that tuple.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "server_of_stripe",
    "stripe_span",
    "extent_to_server_bytes",
    "extents_to_server_matrix",
    "servers_touched",
]


def server_of_stripe(stripe_index: int, servers: Sequence[int]) -> int:
    """Server storing stripe ``stripe_index`` of a file striped over ``servers``."""
    if not servers:
        raise ConfigurationError("servers must not be empty")
    return int(servers[int(stripe_index) % len(servers)])


def stripe_span(offset: float, length: float, stripe_size: float) -> Tuple[int, int]:
    """First and last stripe index touched by the extent ``[offset, offset+length)``.

    Returns ``(first, last)`` inclusive.  A zero-length extent returns
    ``(first, first - 1)`` (an empty span).
    """
    if offset < 0 or length < 0:
        raise ConfigurationError("offset and length must be non-negative")
    if stripe_size <= 0:
        raise ConfigurationError("stripe_size must be positive")
    first = int(offset // stripe_size)
    if length == 0:
        return first, first - 1
    last = int(math.ceil((offset + length) / stripe_size)) - 1
    return first, max(last, first)


def extent_to_server_bytes(
    offset: float,
    length: float,
    stripe_size: float,
    servers: Sequence[int],
    n_servers_total: int,
) -> np.ndarray:
    """Bytes written to each server of the deployment by one extent.

    Parameters
    ----------
    offset, length:
        The file extent (bytes).
    stripe_size:
        Striping unit (bytes).
    servers:
        Ordered server indices the file is striped over.
    n_servers_total:
        Total number of servers in the deployment (length of the returned
        array).

    Returns
    -------
    numpy.ndarray of shape ``(n_servers_total,)``
        Bytes of the extent that land on each server; servers not in
        ``servers`` receive zero.
    """
    if n_servers_total <= 0:
        raise ConfigurationError("n_servers_total must be positive")
    servers = tuple(int(s) for s in servers)
    if not servers:
        raise ConfigurationError("servers must not be empty")
    if any(s < 0 or s >= n_servers_total for s in servers):
        raise ConfigurationError("server indices out of range")
    out = np.zeros(n_servers_total, dtype=np.float64)
    if length <= 0:
        return out
    first, last = stripe_span(offset, length, stripe_size)
    stripe_indices = np.arange(first, last + 1, dtype=np.int64)
    sizes = np.full(stripe_indices.shape[0], float(stripe_size), dtype=np.float64)
    # Trim the first and last (possibly partial) stripes.
    sizes[0] = min(stripe_size - (offset - first * stripe_size), length)
    if stripe_indices.shape[0] > 1:
        end = offset + length
        sizes[-1] = end - last * stripe_size
    owner = np.asarray(servers, dtype=np.int64)[stripe_indices % len(servers)]
    np.add.at(out, owner, sizes)
    return out


def extents_to_server_matrix(
    offsets: np.ndarray,
    lengths: np.ndarray,
    stripe_size: float,
    servers: Sequence[int],
    n_servers_total: int,
) -> np.ndarray:
    """Per-extent, per-server byte counts.

    Vectorizes :func:`extent_to_server_bytes` over a batch of extents (one
    per process).  Returns an array of shape ``(len(offsets), n_servers_total)``.
    """
    offsets = np.asarray(offsets, dtype=np.float64)
    lengths = np.asarray(lengths, dtype=np.float64)
    if offsets.shape != lengths.shape:
        raise ConfigurationError("offsets and lengths must have the same shape")
    result = np.zeros((offsets.shape[0], n_servers_total), dtype=np.float64)
    for i in range(offsets.shape[0]):
        result[i] = extent_to_server_bytes(
            float(offsets[i]), float(lengths[i]), stripe_size, servers, n_servers_total
        )
    return result


def servers_touched(
    offset: float,
    length: float,
    stripe_size: float,
    servers: Sequence[int],
) -> Tuple[int, ...]:
    """Distinct servers touched by an extent, in round-robin order of first touch.

    The number of servers touched per request is the quantity the paper uses
    to explain why larger stripe sizes (Figure 8) and smaller request sizes
    (Figure 9) reduce interference: fewer servers per request means fewer
    opportunities for one slow server to stall the whole operation.
    """
    servers = tuple(int(s) for s in servers)
    if length <= 0:
        return ()
    first, last = stripe_span(offset, length, stripe_size)
    seen: list[int] = []
    for k in range(first, last + 1):
        s = servers[k % len(servers)]
        if s not in seen:
            seen.append(s)
        if len(seen) == len(servers):
            break
    return tuple(seen)
