"""PVFS client library.

The client's single job in the write path is to turn an application-level
request (offset, size, target file) into per-server fragments according to
the file's striping, and to track which requests are outstanding.  This
module provides that logic as an object API (used by examples, tests and the
mitigation baselines); the vectorized model uses the same striping functions
directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.pfs.request import Fragment, WriteRequest
from repro.pfs.striping import extent_to_server_bytes, stripe_span

__all__ = ["PVFSClient"]


class PVFSClient:
    """A minimal PVFS client for one application process.

    Parameters
    ----------
    app:
        Application name the client belongs to.
    rank:
        Process rank within the application.
    stripe_size:
        Striping unit of the deployment.
    servers:
        Server indices the application's file is striped over.
    n_servers_total:
        Total number of servers in the deployment.
    """

    def __init__(
        self,
        app: str,
        rank: int,
        stripe_size: float,
        servers: Sequence[int],
        n_servers_total: int,
    ) -> None:
        if stripe_size <= 0:
            raise ConfigurationError("stripe_size must be positive")
        if rank < 0:
            raise ConfigurationError("rank must be non-negative")
        self.app = app
        self.rank = int(rank)
        self.stripe_size = float(stripe_size)
        self.servers = tuple(int(s) for s in servers)
        self.n_servers_total = int(n_servers_total)
        self._next_request_id = 0
        self._outstanding: Dict[int, WriteRequest] = {}
        self._completed: List[WriteRequest] = []

    # ------------------------------------------------------------------ #
    # Request construction
    # ------------------------------------------------------------------ #

    def build_request(self, offset: float, nbytes: float) -> WriteRequest:
        """Create a request and split it into per-server fragments."""
        request_id = self._next_request_id
        self._next_request_id += 1
        per_server = extent_to_server_bytes(
            offset, nbytes, self.stripe_size, self.servers, self.n_servers_total
        )
        fragments = []
        for server in np.flatnonzero(per_server > 0):
            server = int(server)
            frag_bytes = float(per_server[server])
            pieces = max(int(np.ceil(frag_bytes / self.stripe_size)), 1)
            fragments.append(
                Fragment(
                    request_id=request_id,
                    server=server,
                    nbytes=frag_bytes,
                    n_stripe_pieces=pieces,
                )
            )
        request = WriteRequest(
            request_id=request_id,
            app=self.app,
            process_rank=self.rank,
            offset=float(offset),
            nbytes=float(nbytes),
            fragments=tuple(fragments),
        )
        return request

    def submit(self, offset: float, nbytes: float) -> WriteRequest:
        """Build a request and mark it outstanding."""
        request = self.build_request(offset, nbytes)
        self._outstanding[request.request_id] = request
        return request

    def complete(self, request_id: int) -> WriteRequest:
        """Mark an outstanding request as completed."""
        if request_id not in self._outstanding:
            raise KeyError(f"request {request_id} is not outstanding")
        request = self._outstanding.pop(request_id)
        self._completed.append(request)
        return request

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def outstanding(self) -> Tuple[WriteRequest, ...]:
        """Requests submitted but not yet completed."""
        return tuple(self._outstanding.values())

    @property
    def completed(self) -> Tuple[WriteRequest, ...]:
        """Requests completed so far."""
        return tuple(self._completed)

    def servers_touched_by(self, offset: float, nbytes: float) -> Tuple[int, ...]:
        """Servers a request at ``offset`` of ``nbytes`` would involve."""
        per_server = extent_to_server_bytes(
            offset, nbytes, self.stripe_size, self.servers, self.n_servers_total
        )
        return tuple(int(s) for s in np.flatnonzero(per_server > 0))

    def stripes_touched_by(self, offset: float, nbytes: float) -> int:
        """Number of stripe units a request spans."""
        first, last = stripe_span(offset, nbytes, self.stripe_size)
        return max(last - first + 1, 0)

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"client {self.app}:{self.rank} stripe={self.stripe_size:.0f}B "
            f"servers={list(self.servers)}"
        )


def _validate_optional_rank(rank: Optional[int]) -> None:
    """Helper kept for API symmetry (no-op today)."""
    if rank is not None and rank < 0:
        raise ConfigurationError("rank must be non-negative")
