"""Request and fragment records.

A :class:`WriteRequest` is one application-level write (one block of the
strided pattern, or the whole contiguous extent of a process).  The PVFS
client splits it into :class:`Fragment` objects — one per server touched —
which is the granularity the servers process and the transport carries.

The vectorized model does not allocate one Python object per fragment during
simulation (it keeps arrays); these records are used by the client library
API, by tests, and by analysis code that wants to reason about individual
requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError

__all__ = ["Fragment", "WriteRequest"]


@dataclass(frozen=True)
class Fragment:
    """The part of one request that lands on one server.

    Attributes
    ----------
    request_id:
        Identifier of the parent request.
    server:
        Destination server index.
    nbytes:
        Bytes of the parent request stored by that server.
    n_stripe_pieces:
        Number of stripe-sized pieces the fragment consists of (used for
        per-operation cost accounting at the server).
    """

    request_id: int
    server: int
    nbytes: float
    n_stripe_pieces: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ConfigurationError("a fragment must carry a positive number of bytes")
        if self.n_stripe_pieces <= 0:
            raise ConfigurationError("a fragment must contain at least one stripe piece")


@dataclass
class WriteRequest:
    """One application-level write request.

    Attributes
    ----------
    request_id:
        Unique identifier (per client).
    app:
        Application name issuing the request.
    process_rank:
        Rank of the issuing process within its application.
    offset:
        File offset (bytes).
    nbytes:
        Request size (bytes).
    fragments:
        Per-server fragments, filled in by the client library.
    """

    request_id: int
    app: str
    process_rank: int
    offset: float
    nbytes: float
    fragments: Tuple[Fragment, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ConfigurationError("offset must be non-negative")
        if self.nbytes <= 0:
            raise ConfigurationError("nbytes must be positive")
        if self.process_rank < 0:
            raise ConfigurationError("process_rank must be non-negative")

    @property
    def n_servers_touched(self) -> int:
        """Number of servers involved in this request."""
        return len(self.fragments)

    @property
    def bytes_by_server(self) -> Dict[int, float]:
        """Mapping server index -> bytes of this request on that server."""
        return {f.server: f.nbytes for f in self.fragments}

    def total_fragment_bytes(self) -> float:
        """Sum of fragment sizes (equals ``nbytes`` once fragments are built)."""
        return sum(f.nbytes for f in self.fragments)

    def is_consistent(self) -> bool:
        """True when the fragments exactly cover the request."""
        if not self.fragments:
            return False
        return abs(self.total_fragment_bytes() - self.nbytes) < 1e-6
