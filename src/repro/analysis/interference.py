"""Pairwise interference metrics and the matrix heatmap report.

The Δ-graph answers "how does interference between two *identical*
applications evolve with their relative start time"; the interference matrix
answers the orthogonal population question — "which *kinds* of workloads hurt
each other, and why".  This module holds the pure metric functions and the
markdown rendering; the campaign that produces the numbers lives in
:mod:`repro.scenarios.matrix`.

Metrics (per ordered pair ``(victim, aggressor)``):

* **slowdown** — victim phase time co-running over victim phase time alone
  (the interference factor of the paper, generalized to unequal workloads);
* **dilation** — pair makespan over the longer alone phase: how much the
  *machine* pays for co-scheduling, independent of who pays it;
* **asymmetry** — slowdown(victim) − slowdown(aggressor) from the same run:
  positive when the row workload suffers more than the column workload;
* **root cause** — the dominant contender of
  :func:`repro.core.rootcause.attribute_root_cause` for the pair run, so
  every cell of the heatmap is explained, not just measured.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.analysis.tables import rows_to_markdown
from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.model.results import RunResult
    from repro.scenarios.matrix import InterferenceMatrix

__all__ = [
    "slowdown",
    "dilation",
    "pair_asymmetry",
    "severity",
    "attribute_pair",
    "matrix_heatmap_markdown",
    "matrix_report_markdown",
    "update_experiments_section",
    "MATRIX_SECTION_BEGIN",
    "MATRIX_SECTION_END",
]


def slowdown(pair_time: float, alone_time: float) -> float:
    """Interference factor of one workload: co-running over alone phase time."""
    if alone_time <= 0:
        raise AnalysisError(f"alone time must be positive, got {alone_time}")
    if pair_time < 0:
        raise AnalysisError(f"pair time must be non-negative, got {pair_time}")
    return pair_time / alone_time


def dilation(pair_makespan: float, alone_a: float, alone_b: float) -> float:
    """Machine-level cost of co-scheduling: makespan over the longer phase."""
    longest = max(alone_a, alone_b)
    if longest <= 0:
        raise AnalysisError("alone times must include a positive phase")
    if pair_makespan < 0:
        raise AnalysisError("pair makespan must be non-negative")
    return pair_makespan / longest


def pair_asymmetry(slowdown_a: float, slowdown_b: float) -> float:
    """How much harder A is hit than B (positive: A suffers more)."""
    return float(slowdown_a) - float(slowdown_b)


#: Severity bands of a slowdown value, worst first: (threshold, label).
_SEVERITY_BANDS: Tuple[Tuple[float, str], ...] = (
    (2.0, "severe"),
    (1.5, "high"),
    (1.15, "moderate"),
    (1.05, "mild"),
    (0.0, "none"),
)


def severity(value: float) -> str:
    """Qualitative band of a slowdown value (``none`` ... ``severe``)."""
    for threshold, label in _SEVERITY_BANDS:
        if value >= threshold:
            return label
    return "none"


#: Slowdowns at or above the "high" band render bold in the heatmap; the
#: report prose quotes the same number, so retuning the bands moves both.
_BOLD_THRESHOLD = next(t for t, label in _SEVERITY_BANDS if label == "high")


def attribute_pair(result: "RunResult") -> Tuple[str, Dict[str, float]]:
    """Root-cause attribution hook for one pair run.

    Returns ``(dominant, scores)`` where ``dominant`` names the winning
    contender and ``scores`` maps every contender to its heuristic score —
    the explanation column of the matrix report.
    """
    from repro.core.rootcause import attribute_root_cause

    report = attribute_root_cause(result)
    scores = {
        contender.value: float(score) for contender, score in report.scores.items()
    }
    return report.dominant.value, scores


# --------------------------------------------------------------------------- #
# Markdown rendering
# --------------------------------------------------------------------------- #

MATRIX_SECTION_BEGIN = "<!-- repro:interference-matrix:begin -->"
MATRIX_SECTION_END = "<!-- repro:interference-matrix:end -->"


def _format_cell(value: float) -> str:
    """Heatmap cell: the slowdown, bold once it crosses the 'high' band."""
    text = f"{value:.2f}"
    return f"**{text}**" if value >= _BOLD_THRESHOLD else text


def matrix_heatmap_markdown(matrix: "InterferenceMatrix") -> str:
    """The NxN slowdown heatmap: rows are victims, columns aggressors.

    Pairs lost to quarantine (see ``matrix.failed_tasks``) render as ``—``
    so a degraded campaign still produces a complete table.
    """
    rows: List[Dict[str, object]] = []
    for victim in matrix.names:
        row: Dict[str, object] = {"slowdown of \\ with": victim}
        for aggressor in matrix.names:
            cell = matrix.cell_or_none(victim, aggressor)
            if cell is None or victim not in matrix.alone:
                row[aggressor] = "—"
            else:
                row[aggressor] = _format_cell(
                    matrix.slowdown_of(victim, aggressor)
                )
        rows.append(row)
    return rows_to_markdown(rows)


def matrix_report_markdown(matrix: "InterferenceMatrix") -> str:
    """The full, deterministic matrix section for EXPERIMENTS.md."""
    lines: List[str] = [
        f"## Interference matrix — scale `{matrix.scale}`",
        "",
        f"All-pairs co-scheduling of {len(matrix.names)} workload archetypes "
        f"({', '.join(f'`{n}`' for n in matrix.names)}) on one shared "
        f"`{matrix.options.get('device', 'hdd')}`/"
        f"`{matrix.options.get('sync_mode', 'sync-on')}` deployment.  Cell "
        "(row, column) is the *slowdown* of the row workload when co-running "
        "with the column workload (phase time together / phase time alone); "
        f"**bold** marks slowdowns of {_BOLD_THRESHOLD:g}x or worse.",
        "",
        matrix_heatmap_markdown(matrix),
        "",
        "Interference-free baselines:",
        "",
        rows_to_markdown([
            {
                "workload": name,
                "alone phase (s)": (
                    f"{matrix.alone[name]:.3f}"
                    if name in matrix.alone else "—"
                ),
            }
            for name in matrix.names
        ]),
        "",
        "Per-pair diagnosis (unordered pairs; asymmetry > 0 means the first "
        "workload suffers more):",
        "",
    ]
    detail_rows = []
    for cell in matrix.cells_in_order():
        detail_rows.append({
            "pair": f"{cell.a} + {cell.b}",
            "slowdown": f"{cell.slowdown_a:.2f} / {cell.slowdown_b:.2f}",
            "dilation": f"{cell.dilation:.2f}",
            "asymmetry": f"{cell.asymmetry:+.2f}",
            "severity": severity(max(cell.slowdown_a, cell.slowdown_b)),
            "dominant root cause": cell.root_cause,
            "window collapses": cell.window_collapses,
        })
    lines.append(rows_to_markdown(detail_rows))
    if getattr(matrix, "failed_tasks", None):
        lines.extend([
            "",
            "### Failed tasks (quarantined)",
            "",
            "These tasks exhausted their retries under the active fault "
            "policy; their cells render as `—` above.  Re-run the campaign "
            "to retry them (completed results are cache hits).",
            "",
            rows_to_markdown([
                {
                    "task": failure.get("task_id", "?"),
                    "kind": failure.get("kind", "?"),
                    "reason": failure.get("reason", "?"),
                    "attempts": failure.get("attempts", "?"),
                    "error": str(failure.get("error", ""))[:80],
                }
                for failure in matrix.failed_tasks
            ]),
        ])
    lines.append("")
    lines.append(f"Regenerate with: `{matrix.regenerate_command()}`.")
    return "\n".join(lines)


def update_experiments_section(path: str, section: str) -> str:
    """Insert or replace the marker-delimited matrix section in a report file.

    Idempotent by construction: the section is wrapped in begin/end marker
    comments, and a re-run with identical results rewrites the file
    byte-identically — which is what lets the warm-cache acceptance check
    (`repro-io matrix` twice) diff clean.  Returns the full file content.
    """
    block = f"{MATRIX_SECTION_BEGIN}\n{section}\n{MATRIX_SECTION_END}\n"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = handle.read()
    except FileNotFoundError:
        existing = ""

    if MATRIX_SECTION_BEGIN in existing and MATRIX_SECTION_END in existing:
        head, _, rest = existing.partition(MATRIX_SECTION_BEGIN)
        _, _, tail = rest.partition(MATRIX_SECTION_END)
        tail = tail.lstrip("\n")
        content = head + block + tail
    elif existing:
        joiner = "" if existing.endswith("\n\n") else ("\n" if existing.endswith("\n") else "\n\n")
        content = existing + joiner + block
    else:
        content = block
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    return content
