"""Analysis and presentation helpers.

* :mod:`repro.analysis.asciiplot`  — terminal plots of Δ-graphs and traces
  (the repository has no plotting dependency; every figure can still be
  eyeballed from a terminal),
* :mod:`repro.analysis.tables`     — CSV/JSON/markdown export of sweeps and
  results,
* :mod:`repro.analysis.traces`     — window/progress trace analytics used by
  the Figure 10/11 reproductions,
* :mod:`repro.analysis.paper`      — the paper's reported values and claims,
* :mod:`repro.analysis.comparison` — claim-by-claim grading of a reproduction,
* :mod:`repro.analysis.campaign`   — run every experiment and assemble
  ``EXPERIMENTS.md``,
* :mod:`repro.analysis.interference` — pairwise slowdown/dilation/asymmetry
  metrics and the interference-matrix heatmap report.
"""

from repro.analysis.asciiplot import ascii_plot, plot_delta_sweep, plot_series
from repro.analysis.campaign import (
    CampaignResult,
    ExperimentRecord,
    campaign_to_markdown,
    run_campaign,
    write_experiments_md,
)
from repro.analysis.comparison import ClaimCheck, check_experiment, format_checks
from repro.analysis.interference import (
    dilation,
    matrix_heatmap_markdown,
    matrix_report_markdown,
    pair_asymmetry,
    severity,
    slowdown,
    update_experiments_section,
)
from repro.analysis.paper import CLAIMS, TABLE1, TABLE2, PaperClaim, claims_for
from repro.analysis.tables import (
    rows_to_csv,
    rows_to_markdown,
    sweep_to_csv,
    summary_to_json,
)
from repro.analysis.traces import (
    progress_slowdown_point,
    window_statistics,
)

__all__ = [
    "ascii_plot",
    "plot_delta_sweep",
    "plot_series",
    "rows_to_csv",
    "rows_to_markdown",
    "sweep_to_csv",
    "summary_to_json",
    "window_statistics",
    "progress_slowdown_point",
    "CLAIMS",
    "TABLE1",
    "TABLE2",
    "PaperClaim",
    "claims_for",
    "ClaimCheck",
    "check_experiment",
    "format_checks",
    "CampaignResult",
    "ExperimentRecord",
    "run_campaign",
    "campaign_to_markdown",
    "write_experiments_md",
    "slowdown",
    "dilation",
    "pair_asymmetry",
    "severity",
    "matrix_heatmap_markdown",
    "matrix_report_markdown",
    "update_experiments_section",
]
