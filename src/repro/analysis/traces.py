"""Trace analytics for the window/progress figures.

Figure 10 of the paper compares the TCP window evolution of one client
connection running alone against the same connection under contention;
Figure 11 overlays window size and transfer progress for one client of each
application and reads off *where* each application's progress starts to slow
down.  The helpers here compute those quantities from recorded traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import AnalysisError
from repro.model.results import RunResult
from repro.sim.timeseries import TimeSeries

__all__ = ["WindowStatistics", "window_statistics", "progress_slowdown_point"]


@dataclass(frozen=True)
class WindowStatistics:
    """Summary of one traced connection's window evolution."""

    name: str
    mean: float
    minimum: float
    maximum: float
    final: float
    collapse_fraction: float

    def collapsed(self, threshold_fraction: float = 0.2) -> bool:
        """True when the window spent a meaningful time near its floor."""
        return self.collapse_fraction >= threshold_fraction


def window_statistics(
    series: TimeSeries, floor: Optional[float] = None
) -> WindowStatistics:
    """Summarize a window trace.

    Parameters
    ----------
    series:
        The recorded window series (bytes over time).
    floor:
        Window size considered "collapsed"; defaults to 10% of the series
        maximum.
    """
    if len(series) == 0:
        raise AnalysisError(f"window series {series.name!r} is empty")
    values = series.values
    peak = float(np.max(values))
    if floor is None:
        floor = 0.1 * peak if peak > 0 else 0.0
    collapse_fraction = float(np.mean(values <= floor)) if peak > 0 else 0.0
    return WindowStatistics(
        name=series.name,
        mean=float(np.mean(values)),
        minimum=float(np.min(values)),
        maximum=peak,
        final=float(values[-1]),
        collapse_fraction=collapse_fraction,
    )


def progress_slowdown_point(
    result: RunResult,
    app: str,
    threshold: float = 0.6,
    sustain_fraction: float = 0.15,
    reference_rate: Optional[float] = None,
) -> float:
    """Progress fraction at which an application's transfer slows down.

    Mirrors the reading of the paper's Figure 11: the first application only
    slows down at ~90% of its transfer while the second slows down at ~40%.
    The slowdown point is the progress fraction at the first moment from
    which the application's progress rate stays below ``threshold`` times the
    reference rate for a sustained stretch of its I/O phase (at least
    ``sustain_fraction`` of the phase).  Only the part of the trace before
    the transfer completes is considered.

    Parameters
    ----------
    result, app:
        The run and the application to analyse.
    threshold:
        Fraction of the reference rate below which progress counts as slow.
    sustain_fraction:
        Minimum fraction of the I/O phase the slow stretch must last; short
        dips (a single collective barrier, one flush) are ignored.
    reference_rate:
        Expected healthy progress rate (fraction of the transfer per second).
        Defaults to the application's own peak rate over the phase — for an
        application that is held back from the very start (the paper's second
        application) that peak is only reached once the contender has left,
        which is exactly the comparison Figure 11 makes.

    Returns 1.0 if the application never slows down.
    """
    series = result.progress_series(app)
    if len(series) < 3:
        raise AnalysisError(f"not enough progress samples for application {app!r}")
    times = series.times
    values = series.values
    # Only the active part of the phase: drop the flat tail after completion.
    done = values >= 1.0 - 1e-9
    if np.any(done):
        last = int(np.argmax(done)) + 1
        times = times[: last + 1]
        values = values[: last + 1]
    if values.shape[0] < 3:
        return 1.0
    rates = np.diff(values) / np.maximum(np.diff(times), 1e-12)
    if np.all(rates <= 0):
        return 1.0
    if reference_rate is None:
        reference_rate = float(np.max(rates))
    if reference_rate <= 0:
        raise AnalysisError("reference_rate must be positive")
    slow = rates < threshold * reference_rate
    sustain = max(int(np.ceil(sustain_fraction * rates.shape[0])), 2)
    # Earliest sample index from which the rate stays slow for `sustain`
    # consecutive samples (or slow until the end of the phase if fewer
    # samples remain).
    for i in range(rates.shape[0]):
        window = slow[i : i + sustain]
        if window.shape[0] == 0:
            break
        if np.all(window):
            return float(values[i])
    return 1.0


def compare_window_traces(result: RunResult) -> Dict[str, WindowStatistics]:
    """Window statistics for every traced connection of a run."""
    stats = {}
    for name in result.window_series_names():
        stats[name] = window_statistics(result.recorder.get_series(name))
    return stats
