"""The paper's reported results, as structured reference data.

Every quantitative number and every boxed "lesson learned" of the paper's
evaluation section (Section IV) is recorded here so that:

* the comparison module (:mod:`repro.analysis.comparison`) can grade a
  reproduction run claim by claim,
* the campaign runner (:mod:`repro.analysis.campaign`) can put the paper's
  value next to the measured value in ``EXPERIMENTS.md``,
* tests can assert that the reference data itself is consistent (e.g. the
  Table I slowdowns match the reported alone/interfering times).

Nothing in this module runs a simulation; it is pure data plus tiny lookup
helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import AnalysisError

__all__ = [
    "PaperDeviceRow",
    "PaperClaim",
    "TABLE1",
    "TABLE2",
    "CLAIMS",
    "claims_for",
    "claim_by_id",
    "paper_reference_tables",
    "EXPERIMENT_TITLES",
]


# --------------------------------------------------------------------------- #
# Quantitative tables
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PaperDeviceRow:
    """One row of the paper's Table I (local writes, one device)."""

    device: str
    alone_seconds: float
    interfering_seconds: float
    slowdown: float

    def consistent(self, tolerance: float = 0.02) -> bool:
        """True when the reported slowdown matches the reported times."""
        derived = self.interfering_seconds / self.alone_seconds
        return abs(derived - self.slowdown) <= tolerance * self.slowdown


#: Table I — "Time taken by an application running on one core to write 2 GB
#: locally using a contiguous pattern, alone and in the presence of another
#: application performing the same access to another file at the same moment."
TABLE1: Dict[str, PaperDeviceRow] = {
    "HDD": PaperDeviceRow("HDD", alone_seconds=13.4, interfering_seconds=33.4, slowdown=2.49),
    "SSD": PaperDeviceRow("SSD", alone_seconds=2.27, interfering_seconds=4.46, slowdown=1.96),
    "RAM": PaperDeviceRow("RAM", alone_seconds=1.32, interfering_seconds=2.09, slowdown=1.58),
}

#: Table II — "Peak interference factor observed by the application for
#: different numbers of storage servers." (sync OFF, contiguous pattern)
TABLE2: Dict[int, float] = {4: 2.22, 8: 2.28, 12: 2.07, 24: 2.00}


#: Human-readable titles for every reproduced experiment, keyed by the ids
#: used throughout the repository.
EXPERIMENT_TITLES: Dict[str, str] = {
    "table1": "Table I — local device-level interference",
    "figure2": "Figure 2 — contiguous pattern, backend devices",
    "figure3": "Figure 3 — strided pattern, backend devices",
    "figure4": "Figure 4 — writers per node (network interface)",
    "figure5": "Figure 5 — network bandwidth (10G vs 1G)",
    "figure6": "Figure 6 / Table II — number of storage servers",
    "figure7": "Figure 7 — targeted storage servers (partitioning)",
    "figure8": "Figure 8 — data distribution policy (stripe size)",
    "figure9": "Figure 9 — request size",
    "figure10": "Figure 10 — TCP window evolution (Incast)",
    "figure11": "Figure 11 — unfairness between first and second application",
    "figure12": "Figure 12 — Incast vs number of clients",
}


# --------------------------------------------------------------------------- #
# Qualitative claims
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PaperClaim:
    """One checkable statement the paper makes about an experiment.

    Attributes
    ----------
    claim_id:
        Stable identifier (``"<experiment>.<slug>"``) used by the comparison
        module and EXPERIMENTS.md.
    experiment_id:
        The experiment (table/figure) the claim belongs to.
    statement:
        The claim, paraphrasing the paper.
    paper_values:
        Optional quantitative values the paper reports for this claim.
    section:
        Paper section/figure the claim is drawn from.
    """

    claim_id: str
    experiment_id: str
    statement: str
    section: str
    paper_values: Mapping[str, float] = field(default_factory=dict)


CLAIMS: Tuple[PaperClaim, ...] = (
    # ----------------------------------------------------------------- Table I
    PaperClaim(
        "table1.ordering",
        "table1",
        "The local-write slowdown under contention is largest for HDD, then SSD, "
        "then RAM (2.49x / 1.96x / 1.58x).",
        "Table I",
        {"hdd": 2.49, "ssd": 1.96, "ram": 1.58},
    ),
    PaperClaim(
        "table1.hdd_exceeds_fair_share",
        "table1",
        "The HDD slowdown exceeds the fair-sharing factor of 2 because interleaved "
        "requests to distinct files add disk-head movement.",
        "Section IV-A1",
        {"hdd": 2.49},
    ),
    # ---------------------------------------------------------------- Figure 2
    PaperClaim(
        "figure2.peak_slowdown_2x",
        "figure2",
        "With a contiguous pattern the peak slowdown is about 2x regardless of the "
        "storage backend.",
        "Figure 2, Section IV-A1",
        {"peak_interference_factor": 2.0},
    ),
    PaperClaim(
        "figure2.hdd_sync_on_unfair",
        "figure2",
        "With HDDs and synchronization enabled the delta-graph is asymmetric: the "
        "application that enters its I/O phase first gets better performance.",
        "Figure 2(a)-(b)",
    ),
    PaperClaim(
        "figure2.null_aio_flat",
        "figure2",
        "The null-aio method (no disk I/O at all) shows essentially no interference.",
        "Figure 2(c)-(d)",
    ),
    PaperClaim(
        "figure2.faster_backends_faster",
        "figure2",
        "Local memory and SSD backends complete the same workload faster than HDDs.",
        "Figure 2",
    ),
    # ---------------------------------------------------------------- Figure 3
    PaperClaim(
        "figure3.hdd_sync_on_worst",
        "figure3",
        "With a strided pattern and synchronization enabled, HDDs are far slower "
        "than SSD/RAM and suffer a higher interference factor (random accesses "
        "amplify both).",
        "Figure 3(a)-(d)",
    ),
    PaperClaim(
        "figure3.sync_off_equalizes",
        "figure3",
        "With synchronization disabled all backends behave alike (the data stays "
        "in memory).",
        "Figure 3(e)-(f)",
    ),
    # ---------------------------------------------------------------- Figure 4
    PaperClaim(
        "figure4.fewer_writers_faster_alone",
        "figure4",
        "Using a single writer per node instead of all cores improves "
        "interference-free performance.",
        "Figure 4, Section IV-A2",
    ),
    PaperClaim(
        "figure4.fewer_writers_fairer",
        "figure4",
        "All cores writing not only produces more interference but also leads to "
        "unfairness; one writer per node removes the unfair behaviour.",
        "Figure 4, Section IV-A2",
    ),
    # ---------------------------------------------------------------- Figure 5
    PaperClaim(
        "figure5.sync_on_same_peak",
        "figure5",
        "With synchronization enabled the peak write time under contention is the "
        "same for the 10G and the 1G network (the disks are the bottleneck).",
        "Figure 5(a)",
    ),
    PaperClaim(
        "figure5.one_gig_restores_fairness",
        "figure5",
        "Throttling the network to 1G restores a symmetric (fair) interference "
        "behaviour with synchronization enabled.",
        "Figure 5(a)",
    ),
    PaperClaim(
        "figure5.one_gig_flat_sync_off",
        "figure5",
        "With synchronization disabled the 1G network eliminates the interference "
        "(flat delta-graph) because it limits each application to a rate the "
        "servers can sustain.",
        "Figure 5(b)",
    ),
    # ------------------------------------------------------- Figure 6 / Table II
    PaperClaim(
        "figure6.throughput_scales",
        "figure6",
        "The maximum aggregate throughput grows with the number of storage servers.",
        "Figure 6(a)",
    ),
    PaperClaim(
        "figure6.interference_constant",
        "figure6",
        "The peak interference factor stays close to 2 regardless of the number of "
        "servers (2.22 / 2.28 / 2.07 / 2.00 for 4/8/12/24 servers).",
        "Table II",
        {str(k): v for k, v in TABLE2.items()},
    ),
    # ---------------------------------------------------------------- Figure 7
    PaperClaim(
        "figure7.partitioning_removes_interference",
        "figure7",
        "Making each application target a distinct set of servers removes the "
        "interference (and the unfairness).",
        "Figure 7, Section IV-A5",
    ),
    PaperClaim(
        "figure7.partitioning_costs_alone_performance",
        "figure7",
        "Using half the servers decreases the performance of a single application.",
        "Figure 7",
    ),
    PaperClaim(
        "figure7.partitioning_can_beat_sharing",
        "figure7",
        "Under contention, partitioned servers can complete the workload faster "
        "than both applications interfering on all servers.",
        "Figure 7, Section IV-A5",
    ),
    # ---------------------------------------------------------------- Figure 8
    PaperClaim(
        "figure8.larger_stripes_faster",
        "figure8",
        "Stripe sizes larger than the 64 KiB default significantly improve "
        "performance for the strided workload.",
        "Figure 8",
    ),
    PaperClaim(
        "figure8.large_stripe_sync_off_interference_free",
        "figure8",
        "With synchronization disabled, a stripe size that maps each request to a "
        "single server makes the interference disappear.",
        "Figure 8(b), Section IV-A6",
    ),
    # ---------------------------------------------------------------- Figure 9
    PaperClaim(
        "figure9.small_requests_interference_free",
        "figure9",
        "With synchronization disabled, small request sizes (64/128 KiB) remove the "
        "interference because each request involves fewer servers.",
        "Figure 9(b), Section IV-A7",
    ),
    PaperClaim(
        "figure9.interference_free_is_not_optimal",
        "figure9",
        "The interference-free small-request configurations are far from optimal "
        "for a single application — no interference does not mean good performance.",
        "Section IV-A7",
    ),
    # --------------------------------------------------------------- Figure 10
    PaperClaim(
        "figure10.window_collapse_under_contention",
        "figure10",
        "Under contention the TCP window of a client connection repeatedly drops "
        "to nearly zero (Incast), while it stays high when the application runs "
        "alone.",
        "Figure 10, Section IV-B1",
    ),
    # --------------------------------------------------------------- Figure 11
    PaperClaim(
        "figure11.second_app_penalized",
        "figure11",
        "The application that starts second sees its windows collapse and its "
        "progress slowed from much earlier in its transfer than the application "
        "that started first (40% vs 90%).",
        "Figure 11, Section IV-B2",
        {"first_slowdown_progress": 0.9, "second_slowdown_progress": 0.4},
    ),
    # --------------------------------------------------------------- Figure 12
    PaperClaim(
        "figure12.incast_needs_many_clients",
        "figure12",
        "The Incast collapse and the resulting unfair behaviour appear only above "
        "a client-count threshold; at small client counts the interference is the "
        "symmetric sharing of the backend device.",
        "Figure 12, Section IV-B2",
    ),
)


# --------------------------------------------------------------------------- #
# Lookup helpers
# --------------------------------------------------------------------------- #


def claims_for(experiment_id: str) -> List[PaperClaim]:
    """All claims recorded for one experiment id (may be empty)."""
    key = experiment_id.strip().lower()
    return [claim for claim in CLAIMS if claim.experiment_id == key]


def claim_by_id(claim_id: str) -> PaperClaim:
    """Look one claim up by its stable identifier."""
    for claim in CLAIMS:
        if claim.claim_id == claim_id:
            return claim
    raise AnalysisError(f"unknown paper claim {claim_id!r}")


def paper_reference_tables() -> Dict[str, List[Dict[str, object]]]:
    """The paper's quantitative tables as row dictionaries (for reports)."""
    table1_rows = [
        {
            "device": row.device,
            "alone_s": row.alone_seconds,
            "interfering_s": row.interfering_seconds,
            "slowdown": row.slowdown,
        }
        for row in TABLE1.values()
    ]
    table2_rows = [
        {"servers": servers, "peak_interference_factor": factor}
        for servers, factor in sorted(TABLE2.items())
    ]
    return {"table1": table1_rows, "table2": table2_rows}


def expected_slowdown(device: str) -> Optional[float]:
    """The paper's Table I slowdown for a device name (case-insensitive)."""
    row = TABLE1.get(device.upper())
    return None if row is None else row.slowdown
