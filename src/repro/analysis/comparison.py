"""Grade a reproduction run against the paper's claims.

:func:`check_experiment` takes the :class:`~repro.experiments.base.ExperimentResult`
of one table/figure reproduction and evaluates every
:class:`~repro.analysis.paper.PaperClaim` recorded for that experiment,
returning a list of :class:`ClaimCheck` verdicts.  The verdicts power:

* the agreement column of ``EXPERIMENTS.md`` (via
  :mod:`repro.analysis.campaign`),
* the ``repro-io campaign`` CLI command,
* regression tests that pin the qualitative reproduction status.

The thresholds used here are deliberately a little looser than the benchmark
assertions: a benchmark failure should mean "the reproduction broke", while a
``passed=False`` verdict merely reports "this particular claim does not hold
at this scale / seed" without aborting the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional

from repro.analysis.paper import PaperClaim, claims_for
from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.experiments.base import ExperimentResult

__all__ = ["ClaimCheck", "check_experiment", "checks_to_rows", "format_checks"]


@dataclass(frozen=True)
class ClaimCheck:
    """Verdict for one paper claim evaluated against measured results."""

    claim: PaperClaim
    passed: bool
    measured: Mapping[str, float] = field(default_factory=dict)
    detail: str = ""

    @property
    def claim_id(self) -> str:
        """Stable identifier of the underlying claim."""
        return self.claim.claim_id

    @property
    def experiment_id(self) -> str:
        """Experiment the claim belongs to."""
        return self.claim.experiment_id

    def describe(self) -> str:
        """One-line human-readable verdict."""
        status = "PASS" if self.passed else "MISS"
        return f"[{status}] {self.claim.claim_id}: {self.detail or self.claim.statement}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (inverse of :meth:`from_dict`).

        The full claim is inlined (rather than stored by id) so a cached
        verdict remains readable even if the claim registry changes.
        """
        return {
            "claim": {
                "claim_id": self.claim.claim_id,
                "experiment_id": self.claim.experiment_id,
                "statement": self.claim.statement,
                "section": self.claim.section,
                "paper_values": {k: float(v) for k, v in self.claim.paper_values.items()},
            },
            "passed": bool(self.passed),
            "measured": {k: float(v) for k, v in self.measured.items()},
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClaimCheck":
        """Rebuild a verdict from :meth:`to_dict` output."""
        claim_data = data["claim"]
        claim = PaperClaim(
            claim_id=str(claim_data["claim_id"]),
            experiment_id=str(claim_data["experiment_id"]),
            statement=str(claim_data["statement"]),
            section=str(claim_data["section"]),
            paper_values={k: float(v) for k, v in claim_data.get("paper_values", {}).items()},
        )
        return cls(
            claim=claim,
            passed=bool(data["passed"]),
            measured={k: float(v) for k, v in data.get("measured", {}).items()},
            detail=str(data.get("detail", "")),
        )


# --------------------------------------------------------------------------- #
# Per-experiment checkers
# --------------------------------------------------------------------------- #


def _check(claim_id: str, passed: bool, measured: Dict[str, float], detail: str,
           claims: Mapping[str, PaperClaim]) -> Optional[ClaimCheck]:
    claim = claims.get(claim_id)
    if claim is None:  # claim not registered (e.g. trimmed data set)
        return None
    return ClaimCheck(claim=claim, passed=bool(passed), measured=measured, detail=detail)


def _claims_map(experiment_id: str) -> Dict[str, PaperClaim]:
    return {claim.claim_id: claim for claim in claims_for(experiment_id)}


def _table1_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("table1")
    rows = {str(row["device"]).upper(): row for row in result.table("table1")}
    slowdowns = {device: float(row["slowdown"]) for device, row in rows.items()}
    checks: List[ClaimCheck] = []
    ordering = (
        slowdowns.get("HDD", 0.0) > slowdowns.get("SSD", 0.0) > slowdowns.get("RAM", 0.0)
    )
    checks.append(_check(
        "table1.ordering",
        ordering,
        slowdowns,
        "measured slowdowns "
        + ", ".join(f"{d}={v:.2f}x" for d, v in sorted(slowdowns.items())),
        claims,
    ))
    hdd = slowdowns.get("HDD", 0.0)
    checks.append(_check(
        "table1.hdd_exceeds_fair_share",
        hdd > 2.0,
        {"hdd": hdd},
        f"HDD slowdown {hdd:.2f}x vs fair-sharing 2x",
        claims,
    ))
    return [c for c in checks if c is not None]


def _figure2_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("figure2")
    checks: List[ClaimCheck] = []
    devices = ("hdd", "ssd", "ram")
    peaks = {}
    for device in devices:
        for sync in ("sync-on", "sync-off"):
            name = f"{device}.{sync}"
            if name in result.sweeps:
                peaks[name] = result.sweep(name).peak_interference_factor()
    peak_ok = bool(peaks) and all(1.6 <= v <= 2.6 for v in peaks.values())
    checks.append(_check(
        "figure2.peak_slowdown_2x",
        peak_ok,
        peaks,
        "peak interference factors "
        + ", ".join(f"{k}={v:.2f}" for k, v in sorted(peaks.items())),
        claims,
    ))
    if "hdd.sync-on" in result.sweeps:
        sweep = result.sweep("hdd.sync-on")
        asym = sweep.asymmetry_index()
        collapses = sweep.total_collapses()
        checks.append(_check(
            "figure2.hdd_sync_on_unfair",
            asym > 0.03 and collapses > 0,
            {"asymmetry_index": asym, "window_collapses": float(collapses)},
            f"asymmetry {asym:+.3f} with {collapses} window collapses",
            claims,
        ))
    if "null-aio" in result.sweeps:
        sweep = result.sweep("null-aio")
        flat = sweep.flatness_index()
        checks.append(_check(
            "figure2.null_aio_flat",
            flat <= 0.25,
            {"flatness_index": flat},
            f"null-aio flatness index {flat:.2f}",
            claims,
        ))
    alone = {row["device"]: float(row["alone_s"]) for row in result.table("figure2_summary")
             if row["device"] in devices and row["sync"] == "Sync ON"}
    if {"hdd", "ssd", "ram"} <= set(alone):
        faster = alone["ssd"] <= alone["hdd"] and alone["ram"] <= alone["hdd"]
        checks.append(_check(
            "figure2.faster_backends_faster",
            faster,
            alone,
            "alone write times "
            + ", ".join(f"{d}={t:.2f}s" for d, t in sorted(alone.items())),
            claims,
        ))
    return [c for c in checks if c is not None]


def _figure3_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("figure3")
    checks: List[ClaimCheck] = []
    rows = {(row["device"], row["sync"]): row for row in result.table("figure3_summary")}
    on = {d: rows.get((d, "Sync ON")) for d in ("hdd", "ssd", "ram")}
    if all(on.values()):
        hdd_slow = float(on["hdd"]["alone_s"]) > 1.5 * float(on["ssd"]["alone_s"])
        hdd_if = float(on["hdd"]["peak_IF"]) >= max(
            float(on["ssd"]["peak_IF"]), float(on["ram"]["peak_IF"])
        ) - 0.05
        checks.append(_check(
            "figure3.hdd_sync_on_worst",
            hdd_slow and hdd_if,
            {
                "hdd_alone_s": float(on["hdd"]["alone_s"]),
                "ssd_alone_s": float(on["ssd"]["alone_s"]),
                "hdd_peak_if": float(on["hdd"]["peak_IF"]),
                "ssd_peak_if": float(on["ssd"]["peak_IF"]),
            },
            "HDD alone {:.1f}s vs SSD {:.1f}s; peak IF {:.2f} vs {:.2f}".format(
                float(on["hdd"]["alone_s"]), float(on["ssd"]["alone_s"]),
                float(on["hdd"]["peak_IF"]), float(on["ssd"]["peak_IF"]),
            ),
            claims,
        ))
    off = {d: rows.get((d, "Sync OFF")) for d in ("hdd", "ssd", "ram")}
    if all(off.values()):
        times = [float(r["alone_s"]) for r in off.values()]
        spread = (max(times) - min(times)) / max(max(times), 1e-9)
        checks.append(_check(
            "figure3.sync_off_equalizes",
            spread <= 0.3,
            {"alone_time_spread": spread},
            f"sync-OFF alone-time spread across devices {spread:.0%}",
            claims,
        ))
    return [c for c in checks if c is not None]


def _figure4_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("figure4")
    checks: List[ClaimCheck] = []
    rows = {row["configuration"]: row for row in result.table("figure4_summary")}
    all_cores = next((r for k, r in rows.items() if "1 writer" not in k), None)
    one = rows.get("1 writer per node")
    if all_cores and one:
        faster = float(one["alone_s"]) <= float(all_cores["alone_s"]) * 1.02
        checks.append(_check(
            "figure4.fewer_writers_faster_alone",
            faster,
            {"alone_one_writer": float(one["alone_s"]),
             "alone_all_cores": float(all_cores["alone_s"])},
            f"alone {float(one['alone_s']):.2f}s (1 writer) vs "
            f"{float(all_cores['alone_s']):.2f}s (all cores)",
            claims,
        ))
        fairer = (
            abs(float(one["asymmetry"])) < max(float(all_cores["asymmetry"]), 0.05)
            and int(one["collapses"]) < int(all_cores["collapses"])
        )
        checks.append(_check(
            "figure4.fewer_writers_fairer",
            fairer,
            {
                "asymmetry_one_writer": float(one["asymmetry"]),
                "asymmetry_all_cores": float(all_cores["asymmetry"]),
                "collapses_one_writer": float(one["collapses"]),
                "collapses_all_cores": float(all_cores["collapses"]),
            },
            f"asymmetry {float(one['asymmetry']):+.3f} vs "
            f"{float(all_cores['asymmetry']):+.3f}, collapses "
            f"{int(one['collapses'])} vs {int(all_cores['collapses'])}",
            claims,
        ))
    return [c for c in checks if c is not None]


def _figure5_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("figure5")
    checks: List[ClaimCheck] = []
    needed = {"10g.sync-on", "1g.sync-on", "10g.sync-off", "1g.sync-off"}
    if not needed <= set(result.sweeps):
        return checks
    ten_on, one_on = result.sweep("10g.sync-on"), result.sweep("1g.sync-on")
    ten_off, one_off = result.sweep("10g.sync-off"), result.sweep("1g.sync-off")
    peak10 = max(float(ten_on.write_times(a).max()) for a in ten_on.applications)
    peak1 = max(float(one_on.write_times(a).max()) for a in one_on.applications)
    same_peak = abs(peak10 - peak1) / max(peak10, 1e-9) < 0.3
    checks.append(_check(
        "figure5.sync_on_same_peak",
        same_peak,
        {"peak_write_time_10g": peak10, "peak_write_time_1g": peak1},
        f"sync-ON peak write time {peak10:.2f}s (10G) vs {peak1:.2f}s (1G)",
        claims,
    ))
    fair = one_on.asymmetry_index() < ten_on.asymmetry_index() + 0.02 and (
        one_on.total_collapses() < max(ten_on.total_collapses(), 1)
    )
    checks.append(_check(
        "figure5.one_gig_restores_fairness",
        fair,
        {
            "asymmetry_10g": ten_on.asymmetry_index(),
            "asymmetry_1g": one_on.asymmetry_index(),
            "collapses_10g": float(ten_on.total_collapses()),
            "collapses_1g": float(one_on.total_collapses()),
        },
        f"sync-ON asymmetry {ten_on.asymmetry_index():+.3f} (10G) vs "
        f"{one_on.asymmetry_index():+.3f} (1G)",
        claims,
    ))
    flat = one_off.flatness_index() <= 0.45 and (
        ten_off.peak_interference_factor() > one_off.peak_interference_factor() + 0.25
    )
    checks.append(_check(
        "figure5.one_gig_flat_sync_off",
        flat,
        {
            "flatness_1g_sync_off": one_off.flatness_index(),
            "peak_if_10g_sync_off": ten_off.peak_interference_factor(),
            "peak_if_1g_sync_off": one_off.peak_interference_factor(),
        },
        f"sync-OFF peak IF {ten_off.peak_interference_factor():.2f} (10G) vs "
        f"{one_off.peak_interference_factor():.2f} (1G)",
        claims,
    ))
    return [c for c in checks if c is not None]


def _figure6_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("figure6")
    checks: List[ClaimCheck] = []
    scaling = sorted(result.table("figure6a_scaling"), key=lambda r: int(r["servers"]))
    if len(scaling) >= 2:
        grows = float(scaling[-1]["max_throughput_GBps"]) > float(scaling[0]["max_throughput_GBps"])
        checks.append(_check(
            "figure6.throughput_scales",
            grows,
            {f"max_throughput_{r['servers']}": float(r["max_throughput_GBps"]) for r in scaling},
            "max throughput "
            + " -> ".join(f"{r['max_throughput_GBps']}GB/s@{r['servers']}" for r in scaling),
            claims,
        ))
    table2 = result.table("table2_interference")
    factors = {int(r["servers"]): float(r["peak_interference_factor"]) for r in table2}
    near_two = bool(factors) and all(1.6 <= v <= 2.6 for v in factors.values())
    spread = (max(factors.values()) - min(factors.values())) if factors else float("nan")
    checks.append(_check(
        "figure6.interference_constant",
        near_two and spread <= 0.6,
        {f"peak_if_{k}": v for k, v in factors.items()},
        "peak IF per server count "
        + ", ".join(f"{k}:{v:.2f}" for k, v in sorted(factors.items())),
        claims,
    ))
    return [c for c in checks if c is not None]


def _figure7_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("figure7")
    checks: List[ClaimCheck] = []
    rows = {row["device"]: row for row in result.table("figure7_summary")}
    if not rows:
        return checks
    removed = all(
        float(r["partitioned_peak_IF"]) <= 1.35 and
        float(r["partitioned_peak_IF"]) < float(r["shared_peak_IF"]) - 0.3
        for r in rows.values()
    )
    checks.append(_check(
        "figure7.partitioning_removes_interference",
        removed,
        {f"partitioned_peak_if_{d}": float(r["partitioned_peak_IF"]) for d, r in rows.items()},
        ", ".join(
            f"{d}: shared {float(r['shared_peak_IF']):.2f} -> partitioned "
            f"{float(r['partitioned_peak_IF']):.2f}" for d, r in rows.items()
        ),
        claims,
    ))
    costs = all(
        float(r["partitioned_alone_s"]) > float(r["shared_alone_s"]) * 1.2 for r in rows.values()
    )
    checks.append(_check(
        "figure7.partitioning_costs_alone_performance",
        costs,
        {f"alone_ratio_{d}": float(r["partitioned_alone_s"]) / float(r["shared_alone_s"])
         for d, r in rows.items()},
        ", ".join(
            f"{d}: alone {float(r['shared_alone_s']):.2f}s -> "
            f"{float(r['partitioned_alone_s']):.2f}s" for d, r in rows.items()
        ),
        claims,
    ))
    beats = any(
        float(r["partitioned_peak_time_s"]) < float(r["shared_peak_time_s"])
        for r in rows.values()
    )
    checks.append(_check(
        "figure7.partitioning_can_beat_sharing",
        beats,
        {f"peak_time_ratio_{d}":
         float(r["partitioned_peak_time_s"]) / float(r["shared_peak_time_s"])
         for d, r in rows.items()},
        ", ".join(
            f"{d}: contended peak {float(r['shared_peak_time_s']):.2f}s shared vs "
            f"{float(r['partitioned_peak_time_s']):.2f}s partitioned"
            for d, r in rows.items()
        ),
        claims,
    ))
    return [c for c in checks if c is not None]


def _figure8_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("figure8")
    checks: List[ClaimCheck] = []
    rows = result.table("figure8_summary")
    by_sync: Dict[str, List[dict]] = {}
    for row in rows:
        by_sync.setdefault(str(row["sync"]), []).append(row)
    faster = True
    measured: Dict[str, float] = {}
    for sync, sync_rows in by_sync.items():
        ordered = sorted(sync_rows, key=lambda r: r["servers_per_request"], reverse=True)
        times = [float(r["alone_s"]) for r in ordered]
        measured.update({f"alone_{sync}_{r['stripe']}": float(r["alone_s"]) for r in ordered})
        faster = faster and times[-1] <= times[0] * 1.02
    checks.append(_check(
        "figure8.larger_stripes_faster",
        faster,
        measured,
        "larger stripes never slower alone: "
        + ", ".join(f"{k.split('_', 1)[1]}={v:.1f}s" for k, v in sorted(measured.items())),
        claims,
    ))
    off_rows = by_sync.get("Sync OFF", [])
    single_server = [r for r in off_rows if int(r["servers_per_request"]) == 1]
    multi_server = [r for r in off_rows if int(r["servers_per_request"]) > 1]
    if single_server and multi_server:
        # "Disappear" at the reduced scale: the single-server stripe must be
        # close to interference-free AND clearly below the multi-server
        # stripes (the paper's absolute contrast is larger because its
        # sync-OFF baseline interferes more at full scale).
        vanished = all(float(r["peak_IF"]) <= 1.35 for r in single_server) and any(
            float(r["peak_IF"]) >= min(float(s["peak_IF"]) for s in single_server) + 0.15
            for r in multi_server
        )
        checks.append(_check(
            "figure8.large_stripe_sync_off_interference_free",
            vanished,
            {f"peak_if_{r['stripe']}": float(r["peak_IF"]) for r in off_rows},
            "sync-OFF peak IF "
            + ", ".join(f"{r['stripe']}={float(r['peak_IF']):.2f}" for r in off_rows),
            claims,
        ))
    return [c for c in checks if c is not None]


def _figure9_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("figure9")
    checks: List[ClaimCheck] = []
    rows = result.table("figure9_summary")
    off_rows = [r for r in rows if r["sync"] == "Sync OFF"]
    if off_rows:
        small = [r for r in off_rows if int(r["servers_per_request"]) <= 2]
        large = [r for r in off_rows if int(r["servers_per_request"]) > 2]
        if small and large:
            interference_free = all(float(r["peak_IF"]) <= 1.45 for r in small) and any(
                float(r["peak_IF"]) > 1.5 for r in large
            )
            checks.append(_check(
                "figure9.small_requests_interference_free",
                interference_free,
                {f"peak_if_{r['request']}": float(r["peak_IF"]) for r in off_rows},
                "sync-OFF peak IF "
                + ", ".join(f"{r['request']}={float(r['peak_IF']):.2f}" for r in off_rows),
                claims,
            ))
            best_alone = min(float(r["alone_s"]) for r in off_rows)
            small_alone = min(float(r["alone_s"]) for r in small)
            not_optimal = small_alone > best_alone * 1.15
            checks.append(_check(
                "figure9.interference_free_is_not_optimal",
                not_optimal,
                {"best_alone_s": best_alone, "small_request_alone_s": small_alone},
                f"interference-free request sizes are {small_alone / best_alone:.2f}x "
                "slower alone than the best configuration",
                claims,
            ))
    return [c for c in checks if c is not None]


def _figure10_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("figure10")
    checks: List[ClaimCheck] = []
    rows = {row["run"]: row for row in result.table("figure10_windows")}
    alone, contended = rows.get("alone"), rows.get("interfering")
    if alone and contended:
        collapse = (
            int(contended["window_collapses"]) > 10 * max(int(alone["window_collapses"]), 1)
            and float(contended["time_near_floor"]) >= float(alone["time_near_floor"])
        )
        checks.append(_check(
            "figure10.window_collapse_under_contention",
            collapse,
            {
                "collapses_alone": float(alone["window_collapses"]),
                "collapses_interfering": float(contended["window_collapses"]),
                "time_near_floor_interfering": float(contended["time_near_floor"]),
            },
            f"window collapses {int(alone['window_collapses'])} alone vs "
            f"{int(contended['window_collapses'])} under contention",
            claims,
        ))
    return [c for c in checks if c is not None]


def _figure11_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("figure11")
    checks: List[ClaimCheck] = []
    rows = {row["application"]: row for row in result.table("figure11_summary")}
    first, second = rows.get("A"), rows.get("B")
    if first and second:
        penalized = (
            int(second["window_collapses"]) > int(first["window_collapses"])
            and float(second["progress_at_slowdown"]) <= float(first["progress_at_slowdown"]) + 0.05
        )
        checks.append(_check(
            "figure11.second_app_penalized",
            penalized,
            {
                "first_slowdown_progress": float(first["progress_at_slowdown"]),
                "second_slowdown_progress": float(second["progress_at_slowdown"]),
                "first_collapses": float(first["window_collapses"]),
                "second_collapses": float(second["window_collapses"]),
            },
            f"slowdown at {float(first['progress_at_slowdown']):.0%} of the transfer for the "
            f"first application vs {float(second['progress_at_slowdown']):.0%} for the second",
            claims,
        ))
    return [c for c in checks if c is not None]


def _figure12_checks(result: ExperimentResult) -> List[ClaimCheck]:
    claims = _claims_map("figure12")
    checks: List[ClaimCheck] = []
    rows = sorted(result.table("figure12_summary"), key=lambda r: int(r["total_clients"]))
    if len(rows) >= 2:
        threshold = (
            int(rows[0]["collapses"]) < int(rows[-1]["collapses"])
            and int(rows[-1]["collapses"]) > 100
        )
        checks.append(_check(
            "figure12.incast_needs_many_clients",
            threshold,
            {f"collapses_{r['total_clients']}": float(r["collapses"]) for r in rows},
            "window collapses per client count "
            + ", ".join(f"{r['total_clients']}:{r['collapses']}" for r in rows),
            claims,
        ))
    return [c for c in checks if c is not None]


_CHECKERS: Dict[str, Callable[[ExperimentResult], List[ClaimCheck]]] = {
    "table1": _table1_checks,
    "figure2": _figure2_checks,
    "figure3": _figure3_checks,
    "figure4": _figure4_checks,
    "figure5": _figure5_checks,
    "figure6": _figure6_checks,
    "figure7": _figure7_checks,
    "figure8": _figure8_checks,
    "figure9": _figure9_checks,
    "figure10": _figure10_checks,
    "figure11": _figure11_checks,
    "figure12": _figure12_checks,
}


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #


def check_experiment(result: ExperimentResult) -> List[ClaimCheck]:
    """Evaluate every recorded paper claim against one experiment result.

    Unknown experiment ids raise :class:`~repro.errors.AnalysisError`;
    missing tables or sweeps simply skip the claims that need them.
    """
    checker = _CHECKERS.get(result.experiment_id)
    if checker is None:
        raise AnalysisError(
            f"no paper-claim checker registered for experiment {result.experiment_id!r}; "
            f"known: {sorted(_CHECKERS)}"
        )
    return checker(result)


def checks_to_rows(checks: List[ClaimCheck]) -> List[Dict[str, object]]:
    """Flatten claim checks into table rows (for CSV/markdown export)."""
    rows = []
    for check in checks:
        rows.append(
            {
                "claim": check.claim_id,
                "section": check.claim.section,
                "agrees": "yes" if check.passed else "no",
                "measured": check.detail,
            }
        )
    return rows


def format_checks(checks: List[ClaimCheck]) -> str:
    """Plain-text listing of claim verdicts."""
    if not checks:
        return "(no claims registered)"
    return "\n".join(check.describe() for check in checks)
