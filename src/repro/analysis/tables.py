"""CSV / JSON export of experiment results."""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.delta import DeltaSweep
from repro.errors import AnalysisError

__all__ = ["rows_to_csv", "rows_to_markdown", "sweep_to_csv", "summary_to_json"]


def rows_to_csv(
    rows: Iterable[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Serialize a list of flat dictionaries as CSV text.

    Columns default to the union of keys in first-appearance order.
    """
    rows = list(rows)
    if not rows:
        raise AnalysisError("cannot export zero rows")
    if columns is None:
        seen = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({k: row.get(k, "") for k in columns})
    return buffer.getvalue()


def rows_to_markdown(
    rows: Iterable[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Serialize a list of flat dictionaries as a GitHub-style markdown table.

    Columns default to the union of keys in first-appearance order.  Floats
    are rendered with a compact precision suitable for EXPERIMENTS.md.
    """
    rows = list(rows)
    if not rows:
        raise AnalysisError("cannot export zero rows")
    if columns is None:
        seen = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)

    def render(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value != value:  # NaN
                return ""
            if abs(value) >= 1000:
                return f"{value:.0f}"
            return f"{value:.3g}"
        return str(value)

    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "|" + "|".join(" --- " for _ in columns) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(render(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


def sweep_to_csv(sweep: DeltaSweep) -> str:
    """Serialize a Δ-graph sweep as CSV (one row per delay)."""
    return rows_to_csv(sweep.rows())


def summary_to_json(summary: Mapping[str, object], indent: int = 2) -> str:
    """Serialize a metric summary as pretty JSON."""
    return json.dumps(dict(summary), indent=indent, sort_keys=True, default=float)
