"""Run the full reproduction campaign and assemble ``EXPERIMENTS.md``.

A *campaign* is one pass over every registered table/figure reproduction
(:mod:`repro.experiments.registry`), each graded against the paper's claims
(:mod:`repro.analysis.comparison`).  The result can be rendered as the
markdown report the repository ships as ``EXPERIMENTS.md``: for every
experiment the paper's reported values, the measured values, and a claim-by-
claim agreement verdict.

Typical use::

    from repro.analysis.campaign import run_campaign, campaign_to_markdown

    campaign = run_campaign(scale="reduced", jobs=4, cache_dir=".repro-cache")
    print(campaign.summary_rows())
    open("EXPERIMENTS.md", "w").write(campaign_to_markdown(campaign))

or from the command line::

    repro-io campaign --scale reduced --jobs 4 --output EXPERIMENTS.md

Experiments fan out across worker processes (:mod:`repro.runner.executor`)
and every result is persisted in a content-addressed cache
(:mod:`repro.runner.cache`) when ``cache_dir`` is given, so a repeated or
resumed campaign only re-runs what changed.  The rendered markdown is
deterministic by default (timing lines are opt-in), so a parallel campaign
produces byte-identical output to a serial one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro._version import __version__
from repro.analysis.comparison import ClaimCheck
from repro.config.control import SteppingPolicy
from repro.analysis.paper import EXPERIMENT_TITLES, paper_reference_tables
from repro.analysis.tables import rows_to_markdown
from repro.errors import ExperimentError
from repro.runner.cache import ResultCache, fingerprint
from repro.runner.executor import TaskSpec, execute_cached

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.experiments.base import ExperimentResult

__all__ = [
    "ExperimentRecord",
    "CampaignResult",
    "run_campaign",
    "campaign_to_markdown",
    "write_experiments_md",
]


@dataclass
class ExperimentRecord:
    """One experiment's outcome within a campaign."""

    experiment_id: str
    result: ExperimentResult
    checks: List[ClaimCheck]
    wall_time: float
    error: Optional[str] = None
    from_cache: bool = False

    @property
    def n_claims(self) -> int:
        """Number of paper claims evaluated."""
        return len(self.checks)

    @property
    def n_agreeing(self) -> int:
        """Number of claims that agree with the paper."""
        return sum(1 for check in self.checks if check.passed)

    @property
    def title(self) -> str:
        """Human-readable experiment title."""
        return EXPERIMENT_TITLES.get(self.experiment_id, self.result.title)

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable representation (what the runner cache stores)."""
        return {
            "experiment_id": self.experiment_id,
            "result": self.result.to_dict(),
            "checks": [check.to_dict() for check in self.checks],
            "wall_time": float(self.wall_time),
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, object], from_cache: bool = False
    ) -> "ExperimentRecord":
        """Rebuild a record from :meth:`to_payload` output (or a worker's)."""
        from repro.experiments.base import ExperimentResult as _Result

        return cls(
            experiment_id=str(payload["experiment_id"]),
            result=_Result.from_dict(payload["result"]),
            checks=[ClaimCheck.from_dict(c) for c in payload["checks"]],
            wall_time=float(payload["wall_time"]),
            from_cache=from_cache,
        )


@dataclass
class CampaignResult:
    """Outcome of one full reproduction campaign."""

    scale: str
    records: List[ExperimentRecord] = field(default_factory=list)
    started_at: float = 0.0
    wall_time: float = 0.0

    # ------------------------------------------------------------------ #

    @property
    def n_experiments(self) -> int:
        """Number of experiments that ran."""
        return len(self.records)

    @property
    def n_claims(self) -> int:
        """Total number of paper claims evaluated."""
        return sum(record.n_claims for record in self.records)

    @property
    def n_agreeing(self) -> int:
        """Total number of claims that agree with the paper."""
        return sum(record.n_agreeing for record in self.records)

    @property
    def n_cached(self) -> int:
        """Number of experiments served from the result cache."""
        return sum(1 for record in self.records if record.from_cache)

    def record(self, experiment_id: str) -> ExperimentRecord:
        """The record of one experiment."""
        for rec in self.records:
            if rec.experiment_id == experiment_id:
                return rec
        raise ExperimentError(f"campaign has no record for {experiment_id!r}")

    def summary_rows(self, include_timing: bool = True) -> List[Dict[str, object]]:
        """One row per experiment: title, claims evaluated/agreeing, runtime.

        ``include_timing=False`` drops the runtime column, making the rows
        deterministic across runs (used by the markdown report so serial and
        parallel campaigns render byte-identically).
        """
        rows = []
        for rec in self.records:
            row: Dict[str, object] = {
                "experiment": rec.experiment_id,
                "paper reference": rec.result.paper_reference,
                "claims agreeing": f"{rec.n_agreeing}/{rec.n_claims}",
            }
            if include_timing:
                row["runtime (s)"] = round(rec.wall_time, 1)
            rows.append(row)
        return rows

    def describe(self) -> str:
        """One-paragraph plain-text summary."""
        cached = f" ({self.n_cached} from cache)" if self.n_cached else ""
        return (
            f"campaign at scale {self.scale!r}: {self.n_experiments} experiments"
            f"{cached}, {self.n_agreeing}/{self.n_claims} paper claims reproduced, "
            f"{self.wall_time:.0f}s wall time"
        )


def run_campaign(
    scale: str = "reduced",
    quick: bool = False,
    experiments: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str, ExperimentRecord], None]] = None,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    stepping: Optional[SteppingPolicy] = None,
) -> CampaignResult:
    """Run every (or a subset of the) table/figure reproduction and grade it.

    Parameters
    ----------
    scale:
        Scale preset passed to each experiment (``"tiny"``, ``"reduced"``,
        ``"paper"``).
    quick:
        Use each experiment's reduced sweep-point count.
    experiments:
        Optional explicit list of experiment ids; defaults to all registered
        experiments in presentation order.
    progress:
        Optional callback invoked as ``progress(experiment_id, record)`` after
        each experiment completes (used by the CLI to stream status lines).
        Under ``jobs > 1`` it fires in completion order; the campaign's
        ``records`` always keep presentation order.
    jobs:
        Worker processes to fan the experiments across (1 = in-process
        serial execution, identical to the historical behavior).
    cache_dir:
        When given, completed experiments are stored in (and served from) a
        content-addressed cache there, keyed by
        ``(experiment_id, scale, quick, overrides, version)`` — so repeating
        or resuming a killed campaign only re-runs what is missing.
    stepping:
        Optional :class:`~repro.config.control.SteppingPolicy` applied to
        every simulation of the campaign (the experiments build their
        scenarios internally, so the policy travels as the process-wide
        default — set in each worker).  Non-default policies are part of the
        cache fingerprint, so fixed and adaptive results never mix.
    """
    # Imported here (not at module level) so that `import repro.analysis`
    # does not drag every experiment module in — and so that the experiment
    # package, which itself uses repro.analysis helpers, can be imported
    # first without creating an import cycle.
    from repro.experiments.registry import get_experiment, list_experiments

    ids = (
        [get_experiment(e).experiment_id for e in experiments]
        if experiments is not None
        else [entry.experiment_id for entry in list_experiments()]
    )
    campaign = CampaignResult(scale=scale, started_at=time.time())
    t0 = time.perf_counter()

    cache = ResultCache(cache_dir) if cache_dir else None
    # An explicit fixed policy is the default behaviour (tolerance/max_dt are
    # ignored outside adaptive mode): normalize it to None so it shares the
    # default cache fingerprint instead of re-simulating everything.
    if stepping is not None and not stepping.is_adaptive:
        stepping = None
    stepping_dict = None if stepping is None else stepping.to_dict()
    overrides = {} if stepping is None else {"stepping": stepping_dict}
    tasks = [
        TaskSpec(
            task_id=experiment_id,
            kind="experiment",
            payload={"experiment_id": experiment_id, "scale": scale, "quick": quick,
                     "stepping": stepping_dict},
        )
        for experiment_id in ids
    ]

    records: Dict[str, ExperimentRecord] = {}

    def on_result(task: TaskSpec, payload: Dict[str, object], from_cache: bool) -> None:
        record = ExperimentRecord.from_payload(payload, from_cache=from_cache)
        records[task.task_id] = record
        if progress is not None:
            progress(task.task_id, record)

    execute_cached(
        tasks,
        jobs=jobs,
        cache=cache,
        fingerprint_for=lambda task: fingerprint(
            task.task_id, scale, quick, overrides=overrides
        ),
        key_material_for=lambda task: {"experiment_id": task.task_id, "scale": scale,
                                       "quick": quick, "overrides": overrides,
                                       "version": __version__},
        progress=on_result,
    )

    campaign.records = [records[experiment_id] for experiment_id in ids]
    campaign.wall_time = time.perf_counter() - t0
    return campaign


# --------------------------------------------------------------------------- #
# Markdown rendering
# --------------------------------------------------------------------------- #


_PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Reproduction report for *On the Root Causes of Cross-Application I/O
Interference in HPC Storage Systems* (Yildiz, Dorier, Ibrahim, Ross, Antoniu —
IPDPS 2016), generated by `repro-io campaign` (repro version {version}).

The paper's campaign ran on Grid'5000 (2 x 480 cores against a 12-server
OrangeFS deployment); this repository replays every experiment against the
simulated I/O path described in `DESIGN.md`.  Absolute write times therefore
differ from the paper's — the comparison targets the *shape* of each result:
which configuration wins, by roughly what factor, whether the Δ-graph is
triangular/flat/asymmetric, and where the qualitative crossovers fall.
All runs below use the `{scale}` scale preset (see `repro.config.presets`).

Regenerate with:

```bash
repro-io campaign --scale {scale} --output EXPERIMENTS.md
# or, per experiment:
pytest benchmarks/ --benchmark-only
```
"""


def campaign_to_markdown(campaign: CampaignResult, include_timing: bool = False) -> str:
    """Render a campaign as the EXPERIMENTS.md document.

    Timing lines are opt-in (``include_timing=True``): the default report is
    fully deterministic, so serial, parallel, and cache-served campaigns all
    render byte-identical markdown.
    """
    lines: List[str] = [
        _PREAMBLE.format(version=__version__, scale=campaign.scale),
        "## Summary",
        "",
        f"- experiments reproduced: **{campaign.n_experiments}**",
        f"- paper claims evaluated: **{campaign.n_claims}**, agreeing: "
        f"**{campaign.n_agreeing}**",
    ]
    if include_timing:
        lines.append(f"- campaign wall time: {campaign.wall_time:.0f} s")
    lines += [
        "",
        rows_to_markdown(campaign.summary_rows(include_timing=include_timing)),
        "",
    ]

    reference = paper_reference_tables()
    for record in campaign.records:
        result = record.result
        lines.append(f"## {record.title}")
        lines.append("")
        runtime = f"; runtime {record.wall_time:.1f} s" if include_timing else ""
        lines.append(f"*Paper reference: {result.paper_reference}{runtime}.*")
        lines.append("")

        # Paper-reported quantitative values, when we have them.
        if record.experiment_id == "table1":
            lines.append("Paper-reported values (Table I):")
            lines.append("")
            lines.append(rows_to_markdown(reference["table1"]))
            lines.append("")
        if record.experiment_id == "figure6":
            lines.append("Paper-reported values (Table II):")
            lines.append("")
            lines.append(rows_to_markdown(reference["table2"]))
            lines.append("")

        # Measured tables.
        for name, rows in result.tables.items():
            lines.append(f"Measured — `{name}`:")
            lines.append("")
            lines.append(rows_to_markdown(rows))
            lines.append("")

        # Headline sweep metrics, if any sweeps were recorded.
        if result.sweeps:
            sweep_rows = []
            for name, sweep in result.sweeps.items():
                sweep_rows.append(
                    {
                        "sweep": name,
                        "peak interference factor": round(sweep.peak_interference_factor(), 2),
                        "asymmetry index": round(sweep.asymmetry_index(), 3),
                        "flat": sweep.is_flat(),
                        "window collapses": sweep.total_collapses(),
                    }
                )
            lines.append("Δ-graph headline metrics:")
            lines.append("")
            lines.append(rows_to_markdown(sweep_rows))
            lines.append("")

        # Claim-by-claim agreement.
        if record.checks:
            lines.append("Agreement with the paper:")
            lines.append("")
            claim_rows = []
            for check in record.checks:
                claim_rows.append(
                    {
                        "claim": check.claim.statement,
                        "agrees": check.passed,
                        "measured": check.detail,
                    }
                )
            lines.append(rows_to_markdown(claim_rows, columns=["claim", "agrees", "measured"]))
            lines.append("")

        for note in result.notes:
            lines.append(f"> {note}")
            lines.append("")

    return "\n".join(lines)


def write_experiments_md(
    path: str, campaign: CampaignResult, include_timing: bool = False
) -> str:
    """Write the campaign report to ``path`` and return the rendered text."""
    text = campaign_to_markdown(campaign, include_timing=include_timing)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
