"""Terminal (ASCII) plots.

The repository deliberately avoids a plotting dependency; these helpers
render Δ-graphs and time series as fixed-width character plots that are good
enough to see the triangular/flat/asymmetric shapes the paper discusses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.delta import DeltaSweep
from repro.errors import AnalysisError
from repro.sim.timeseries import TimeSeries

__all__ = ["ascii_plot", "plot_delta_sweep", "plot_series"]

_MARKERS = "xo+*#@%&"


def ascii_plot(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render one or more series over a shared x axis as an ASCII plot."""
    x = np.asarray(list(x), dtype=np.float64)
    if x.size == 0:
        raise AnalysisError("cannot plot an empty x axis")
    if not series:
        raise AnalysisError("cannot plot zero series")
    if width < 20 or height < 5:
        raise AnalysisError("plot area too small")
    ys = {name: np.asarray(list(vals), dtype=np.float64) for name, vals in series.items()}
    for name, vals in ys.items():
        if vals.shape != x.shape:
            raise AnalysisError(f"series {name!r} length does not match the x axis")
    y_all = np.concatenate(list(ys.values()))
    y_min, y_max = float(np.min(y_all)), float(np.max(y_all))
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(np.min(x)), float(np.max(x))
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, vals) in enumerate(ys.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for xv, yv in zip(x, vals):
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} [{y_min:.3g} .. {y_max:.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.3g} .. {x_max:.3g}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(ys)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def plot_delta_sweep(sweep: DeltaSweep, title: str = "", width: int = 72, height: int = 16) -> str:
    """ASCII Δ-graph: write time of every application versus the delay."""
    deltas = sweep.deltas
    series = {app: sweep.write_times(app) for app in sweep.applications}
    return ascii_plot(
        deltas,
        series,
        width=width,
        height=height,
        x_label="dt (s)",
        y_label="write time (s)",
        title=title or sweep.label,
    )


def plot_series(
    series: TimeSeries,
    title: str = "",
    width: int = 72,
    height: int = 14,
    other: Optional[TimeSeries] = None,
) -> str:
    """ASCII plot of one (optionally two) recorded time series."""
    if len(series) == 0:
        raise AnalysisError(f"series {series.name!r} is empty")
    data = {series.name or "series": series.values}
    x = series.times
    if other is not None and len(other) > 0:
        resampled = other.resample(x)
        data[other.name or "other"] = resampled
    return ascii_plot(
        x,
        data,
        width=width,
        height=height,
        x_label="time (s)",
        y_label=series.unit or "value",
        title=title,
    )
