"""Exception hierarchy for the :mod:`repro` package.

Keeping a small, explicit hierarchy lets callers distinguish configuration
mistakes (their fault, fix the inputs) from simulation failures (our fault or
a genuinely impossible scenario) without string matching.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SchedulingError",
    "ExperimentError",
    "AnalysisError",
    "UsageError",
    "PerfError",
    "TelemetryError",
    "TaskTimeout",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid platform, file-system, or workload configuration.

    Raised during validation, before any simulation starts, so that a bad
    parameter set never produces silently wrong results.
    """


class SimulationError(ReproError, RuntimeError):
    """The simulation engine reached an inconsistent state.

    Examples: the event queue ran dry while applications still had pending
    I/O, a step produced negative remaining bytes, or the run exceeded its
    configured maximum simulated time.
    """


class SchedulingError(SimulationError):
    """An event was scheduled in the past or after the simulation horizon."""


class ExperimentError(ReproError, RuntimeError):
    """A reproduction experiment could not be assembled or executed."""


class TaskTimeout(ExperimentError):
    """A supervised task exceeded its wall-clock deadline.

    Raised inside the worker (or the serial executor path) by the
    signal-based deadline guard of :mod:`repro.runner.executor`; the
    supervisor counts it as a timeout and retries or quarantines the task
    according to the active :class:`~repro.runner.executor.FaultPolicy`.
    Module-level and payload-free so it pickles cleanly across the pool
    boundary.
    """


class AnalysisError(ReproError, ValueError):
    """Raised by analysis helpers when given malformed or empty results."""


class PerfError(ReproError, ValueError):
    """A malformed benchmark document or a failed perf-regression check.

    Raised by :mod:`repro.perf` when a ``BENCH_*.json`` document does not
    match its schema or when a measured throughput falls below the committed
    baseline by more than the allowed margin.
    """


class TelemetryError(ReproError, ValueError):
    """A malformed telemetry document, event log, or exported trace.

    Raised by :mod:`repro.obs` when a ``telemetry.json`` document does not
    match its schema, when a run directory carries no telemetry artifacts,
    or when an exported Chrome trace fails structural validation.
    """


class UsageError(ReproError, ValueError):
    """An invalid command-line argument value.

    Every CLI validator raises this with a message that names the *current*
    flag spelling (``--points``, ``--jobs``, ``--archetypes``, ...); the CLI
    layer converts it into the argparse error path, so all bad-argument
    messages and exit codes (2) are uniform across subcommands.
    """
