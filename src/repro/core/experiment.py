"""The canonical two-application experiment.

:class:`TwoApplicationExperiment` wraps the scenario construction of
:func:`repro.config.presets.make_scenario` together with the Δ-graph sweep of
:mod:`repro.core.delta` and the interference-free baseline, so a complete
paper-style experiment reads:

.. code-block:: python

    exp = TwoApplicationExperiment("reduced", device="hdd", sync_mode="sync-on")
    sweep = exp.run_sweep()
    print(sweep.peak_interference_factor(), sweep.asymmetry_index())
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.config.presets import make_scenario
from repro.config.scenario import ScenarioConfig
from repro.core.delta import DeltaSweep, default_deltas, run_delta_sweep
from repro.errors import ExperimentError
from repro.model.results import RunResult
from repro.model.simulator import simulate_scenario

__all__ = ["TwoApplicationExperiment"]


class TwoApplicationExperiment:
    """Two identical applications contending on one PVFS deployment.

    Parameters
    ----------
    scale:
        Scale preset name (``"tiny"``, ``"reduced"``, ``"paper"``) or a
        :class:`~repro.config.presets.ScalePreset`.
    scenario:
        Optional fully built scenario; when given, ``scale`` and the keyword
        arguments are ignored.
    **scenario_kwargs:
        Passed straight to :func:`repro.config.presets.make_scenario`
        (device, sync_mode, pattern, stripe_size, network, ...).
    """

    def __init__(
        self,
        scale: str = "reduced",
        scenario: Optional[ScenarioConfig] = None,
        **scenario_kwargs: Any,
    ) -> None:
        if scenario is not None:
            if len(scenario.applications) < 2:
                raise ExperimentError(
                    "TwoApplicationExperiment needs a scenario with two applications"
                )
            self.scenario = scenario
        else:
            self.scenario = make_scenario(scale, **scenario_kwargs)
        self._alone_result: Optional[RunResult] = None
        self._seed = self.scenario.control.seed

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #

    def baseline(self, force: bool = False) -> RunResult:
        """Interference-free run of the first application (cached)."""
        if self._alone_result is None or force:
            alone = self.scenario.with_applications(self.scenario.applications[:1])
            self._alone_result = simulate_scenario(alone, seed=self._seed)
        return self._alone_result

    def alone_time(self) -> float:
        """Interference-free write time of one application."""
        first = self.scenario.applications[0].name
        return self.baseline().write_time(first)

    def run_point(self, delay: float) -> RunResult:
        """Run both applications with the given start delay."""
        return simulate_scenario(self.scenario.with_delay(float(delay)), seed=self._seed)

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #

    def pick_deltas(self, n_points: int = 9) -> List[float]:
        """Delays spanning the interference window of this configuration."""
        return default_deltas(self.alone_time(), n_points=n_points)

    def run_sweep(
        self,
        deltas: Optional[Sequence[float]] = None,
        n_points: int = 9,
        label: str = "",
        jobs: int = 1,
    ) -> DeltaSweep:
        """Run a full Δ-graph sweep (delays default to :meth:`pick_deltas`).

        ``jobs > 1`` fans the individual sweep points across worker
        processes (useful at the ``paper`` scale, where each point is an
        expensive simulation); the result is identical to the serial sweep.
        """
        if deltas is None:
            deltas = self.pick_deltas(n_points=n_points)
        if jobs > 1:
            # Imported here: repro.runner depends on repro.core, not vice versa.
            from repro.runner.executor import run_delta_sweep_parallel

            return run_delta_sweep_parallel(
                self.scenario,
                deltas,
                jobs=jobs,
                alone_result=self.baseline(),
                seed=self._seed,
                label=label or self.scenario.label,
            )
        return run_delta_sweep(
            self.scenario,
            deltas,
            alone_result=self.baseline(),
            seed=self._seed,
            label=label or self.scenario.label,
        )

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #

    def headline_metrics(
        self, deltas: Optional[Sequence[float]] = None, n_points: int = 7
    ) -> Dict[str, float]:
        """Peak interference factor, asymmetry and flatness for this setup."""
        sweep = self.run_sweep(deltas=deltas, n_points=n_points)
        summary = sweep.summary()
        summary["alone_time"] = self.alone_time()
        return summary

    def describe(self) -> str:
        """Multi-line description of the experiment configuration."""
        return self.scenario.describe()
