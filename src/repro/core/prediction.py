"""Analytic Δ-graph prediction.

The CALCioM paper (the source of the Δ-graph methodology this work uses)
models two interfering applications analytically: while their I/O bursts
overlap each gets a share of the storage system's throughput, and once one of
them finishes the other recovers the full bandwidth.  Under *fair*
proportional sharing this produces the symmetric triangular Δ-graphs the
paper observes whenever a single component is the bottleneck (Figures 2, 5,
9 with sync ON).

This module provides that analytic model so that:

* experiments can sanity-check the simulator (a fair-sharing configuration
  must stay close to the analytic triangle),
* deviations from the triangle — a flat graph (no interference) or an
  asymmetric one (flow-control unfairness) — can be *quantified* as the
  distance from the prediction,
* users can predict interference cheaply (microseconds instead of a
  simulation) when the fair-sharing assumption is good enough.

The central function is :func:`predict_write_times`, the closed-form solution
of the two-application fluid sharing problem; :func:`predict_sweep` evaluates
it over a set of delays and :func:`compare_with_sweep` scores a measured
:class:`~repro.core.delta.DeltaSweep` against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.delta import DeltaSweep
from repro.errors import AnalysisError

__all__ = [
    "predict_write_times",
    "predict_sweep",
    "PredictionComparison",
    "compare_with_sweep",
]


def predict_write_times(
    delta: float,
    alone_first: float,
    alone_second: Optional[float] = None,
    share_first: float = 0.5,
) -> Tuple[float, float]:
    """Closed-form write times of two applications sharing one bottleneck.

    Both applications are modelled as fluid transfers through a single shared
    resource.  The application that is alone progresses at rate 1 (it finishes
    its phase in ``alone`` seconds); while both are active the first receives
    ``share_first`` of the resource and the second the remainder.

    Parameters
    ----------
    delta:
        Start of the second application's burst relative to the first
        (seconds; negative when the second application actually starts first).
    alone_first / alone_second:
        Interference-free write times of the two applications
        (``alone_second`` defaults to ``alone_first``, the paper's symmetric
        setup).
    share_first:
        Fraction of the shared resource granted to the *earlier* application
        while both are active (0.5 = fair sharing; larger values model the
        first-application advantage the paper observes under Incast).

    Returns
    -------
    (write_time_first, write_time_second)
        Predicted write times, where "first" is the application whose burst
        begins at time 0 and "second" the one whose burst begins at ``delta``.
    """
    if alone_first <= 0:
        raise AnalysisError("alone_first must be positive")
    alone_second = alone_first if alone_second is None else float(alone_second)
    if alone_second <= 0:
        raise AnalysisError("alone_second must be positive")
    if not 0.0 < share_first < 1.0:
        raise AnalysisError("share_first must be in (0, 1)")

    if delta < 0:
        # The "second" application actually starts first: solve the mirrored
        # problem and swap the answer back.
        second, first = predict_write_times(
            -delta, alone_second, alone_first, share_first=share_first
        )
        return first, second

    # Work in units of "fraction of the phase per second".
    rate_first_alone = 1.0 / alone_first
    rate_second_alone = 1.0 / alone_second

    # Phase 1: the first application runs alone during [0, delta].
    head_start = min(delta, alone_first)
    progress_first = head_start * rate_first_alone
    if progress_first >= 1.0 - 1e-12:
        # No overlap at all: both run alone.
        return alone_first, alone_second

    # Phase 2: both applications are active; shares apply.
    t = float(delta)
    remaining_first = 1.0 - progress_first
    remaining_second = 1.0
    rate_first = share_first * rate_first_alone
    rate_second = (1.0 - share_first) * rate_second_alone

    finish_first = t + remaining_first / rate_first
    finish_second = t + remaining_second / rate_second
    if finish_first <= finish_second:
        # First finishes while sharing; second then recovers the full rate.
        overlap_end = finish_first
        remaining_second -= (overlap_end - t) * rate_second
        finish_second = overlap_end + remaining_second / rate_second_alone
    else:
        overlap_end = finish_second
        remaining_first -= (overlap_end - t) * rate_first
        finish_first = overlap_end + remaining_first / rate_first_alone

    return float(finish_first), float(finish_second - delta)


def predict_sweep(
    deltas: Sequence[float],
    alone_time: float,
    share_first: float = 0.5,
    names: Tuple[str, str] = ("A", "B"),
) -> Dict[str, np.ndarray]:
    """Predicted write times of both applications over a set of delays.

    Application ``names[0]`` is the one whose burst starts at time 0;
    ``names[1]`` starts at each delay in turn (the paper's convention).
    """
    firsts, seconds = [], []
    for delta in deltas:
        first, second = predict_write_times(
            float(delta), alone_time, alone_time, share_first=share_first
        )
        firsts.append(first)
        seconds.append(second)
    return {names[0]: np.asarray(firsts), names[1]: np.asarray(seconds)}


@dataclass(frozen=True)
class PredictionComparison:
    """How closely a measured Δ-graph follows the analytic sharing model."""

    share_first: float
    mean_absolute_error: float
    max_relative_error: float
    measured_peak_if: float
    predicted_peak_if: float

    def follows_fair_sharing(self, tolerance: float = 0.15) -> bool:
        """True when the measured sweep stays within ``tolerance`` of the model."""
        return self.max_relative_error <= tolerance

    def summary(self) -> Dict[str, float]:
        """Flat dictionary for tables."""
        return {
            "share_first": self.share_first,
            "mean_absolute_error": self.mean_absolute_error,
            "max_relative_error": self.max_relative_error,
            "measured_peak_if": self.measured_peak_if,
            "predicted_peak_if": self.predicted_peak_if,
        }


def _errors_for_share(sweep: DeltaSweep, share_first: float) -> Tuple[float, float, float]:
    apps = sweep.applications
    if len(apps) < 2:
        raise AnalysisError("prediction comparison needs a two-application sweep")
    first_name, second_name = apps[0], apps[1]
    alone = sweep.alone_time(first_name)
    deltas = sweep.deltas
    predicted = predict_sweep(deltas, alone, share_first=share_first,
                              names=(first_name, second_name))
    abs_errors: List[float] = []
    rel_errors: List[float] = []
    predicted_peak = 1.0
    for app in (first_name, second_name):
        measured = sweep.write_times(app)
        model = predicted[app]
        abs_errors.extend(np.abs(measured - model).tolist())
        rel_errors.extend((np.abs(measured - model) / np.maximum(measured, 1e-12)).tolist())
        predicted_peak = max(predicted_peak, float(np.max(model)) / sweep.alone_time(app))
    return float(np.mean(abs_errors)), float(np.max(rel_errors)), predicted_peak


def compare_with_sweep(
    sweep: DeltaSweep,
    share_first: Optional[float] = None,
    candidate_shares: Iterable[float] = (0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8),
) -> PredictionComparison:
    """Score a measured Δ sweep against the analytic sharing model.

    Parameters
    ----------
    sweep:
        The measured Δ-graph (two applications).
    share_first:
        Share of the bottleneck granted to the earlier application while both
        are active.  ``None`` (default) fits it by choosing, among
        ``candidate_shares``, the one with the smallest mean absolute error —
        a fitted share well above 0.5 is another way of reading the paper's
        unfairness off a Δ-graph.
    candidate_shares:
        Candidate values explored when fitting.
    """
    if share_first is not None:
        mae, max_rel, predicted_peak = _errors_for_share(sweep, share_first)
        best_share = share_first
    else:
        best_share, best = None, None
        for candidate in candidate_shares:
            errors = _errors_for_share(sweep, candidate)
            if best is None or errors[0] < best[0]:
                best, best_share = errors, candidate
        assert best is not None and best_share is not None
        mae, max_rel, predicted_peak = best
    return PredictionComparison(
        share_first=float(best_share),
        mean_absolute_error=mae,
        max_relative_error=max_rel,
        measured_peak_if=sweep.peak_interference_factor(),
        predicted_peak_if=predicted_peak,
    )
