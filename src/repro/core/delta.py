"""Δ-graph sweeps.

The paper's main experimental instrument (borrowed from the CALCioM paper,
its reference [1]) is the Δ-graph: run the two-application experiment many
times, varying the delay ``dt`` between the start of the first and the second
application's I/O burst, and plot each application's write time against
``dt``.  Each point of a Δ-graph is an independent experiment, not a
timeline.

:func:`run_delta_sweep` executes such a sweep against the simulator and
returns a :class:`DeltaSweep`, which carries the raw points plus the metrics
of :mod:`repro.core.metrics` (peak interference factor, asymmetry, flatness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.scenario import ScenarioConfig
from repro.core import metrics
from repro.errors import AnalysisError, ExperimentError
from repro.model.results import RunResult
from repro.model.simulator import simulate_scenario

__all__ = [
    "DeltaPoint",
    "DeltaSweep",
    "run_delta_sweep",
    "default_deltas",
    "alone_times_for",
    "jsonify",
]


def jsonify(value):
    """Recursively convert numpy scalars/arrays to plain Python types.

    Result payloads travel through ``json`` (the runner cache and the run
    store) and across process boundaries; numpy scalars are not JSON
    serializable, so every ``to_dict`` below funnels through this helper.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return value


@dataclass(frozen=True)
class DeltaPoint:
    """One point of a Δ-graph (one two-application run)."""

    delta: float
    write_times: Dict[str, float]
    throughputs: Dict[str, float]
    window_collapses: Dict[str, int]
    simulated_time: float

    def write_time(self, app: str) -> float:
        """Write time of one application at this delay."""
        try:
            return self.write_times[app]
        except KeyError as exc:
            raise AnalysisError(f"no application {app!r} at delta {self.delta}") from exc

    def first_application(self) -> str:
        """Name of the application that starts first at this delay."""
        names = sorted(self.write_times)
        if len(names) < 2:
            return names[0]
        # By convention application "A" starts at 0 and the second at `delta`.
        return names[0] if self.delta >= 0 else names[1]

    def second_application(self) -> str:
        """Name of the application that starts second at this delay."""
        names = sorted(self.write_times)
        if len(names) < 2:
            return names[0]
        return names[1] if self.delta >= 0 else names[0]

    @classmethod
    def from_run_result(cls, delta: float, result: RunResult) -> "DeltaPoint":
        """Build the point for one simulated two-application run."""
        return cls(
            delta=float(delta),
            write_times={name: app.write_time for name, app in result.applications.items()},
            throughputs={name: app.throughput for name, app in result.applications.items()},
            window_collapses={
                name: app.window_collapses for name, app in result.applications.items()
            },
            simulated_time=result.simulated_time,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return {
            "delta": jsonify(self.delta),
            "write_times": jsonify(self.write_times),
            "throughputs": jsonify(self.throughputs),
            "window_collapses": {k: int(v) for k, v in self.window_collapses.items()},
            "simulated_time": jsonify(self.simulated_time),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeltaPoint":
        """Rebuild a point from :meth:`to_dict` output."""
        return cls(
            delta=float(data["delta"]),
            write_times={k: float(v) for k, v in data["write_times"].items()},
            throughputs={k: float(v) for k, v in data["throughputs"].items()},
            window_collapses={k: int(v) for k, v in data["window_collapses"].items()},
            simulated_time=float(data["simulated_time"]),
        )


@dataclass
class DeltaSweep:
    """A complete Δ-graph: points plus interference-free baselines."""

    points: List[DeltaPoint]
    alone_times: Dict[str, float]
    label: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Raw accessors
    # ------------------------------------------------------------------ #

    @property
    def deltas(self) -> np.ndarray:
        """Delays of the sweep (sorted ascending)."""
        return np.array([p.delta for p in self.points], dtype=np.float64)

    @property
    def applications(self) -> Tuple[str, ...]:
        """Application names present in the sweep."""
        if not self.points:
            return tuple(sorted(self.alone_times))
        return tuple(sorted(self.points[0].write_times))

    def write_times(self, app: str) -> np.ndarray:
        """Write times of one application across the sweep."""
        return np.array([p.write_time(app) for p in self.points], dtype=np.float64)

    def interference_factors(self, app: str) -> np.ndarray:
        """Interference factors of one application across the sweep."""
        alone = self.alone_time(app)
        return self.write_times(app) / alone

    def alone_time(self, app: str) -> float:
        """Interference-free write time of one application."""
        try:
            return self.alone_times[app]
        except KeyError as exc:
            raise AnalysisError(f"no interference-free baseline for {app!r}") from exc

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    def peak_interference_factor(self, app: Optional[str] = None) -> float:
        """Largest interference factor over the sweep (Table II)."""
        apps = [app] if app else list(self.applications)
        return max(
            metrics.peak_interference_factor(self.write_times(a), self.alone_time(a))
            for a in apps
        )

    def flatness_index(self, app: Optional[str] = None) -> float:
        """Peak interference factor minus one (0 = perfectly flat graph)."""
        return self.peak_interference_factor(app) - 1.0

    def is_flat(self, tolerance: float = 0.15) -> bool:
        """True when no application ever exceeds ``1 + tolerance`` slowdown."""
        return self.flatness_index() <= tolerance

    def asymmetry_index(self) -> float:
        """Mean relative penalty of the second application versus the first.

        Positive values reproduce the paper's observation that the
        application entering its I/O phase first gets better performance.
        Points where the phases do not overlap (both applications run at
        their interference-free time) are excluded.
        """
        firsts, seconds, deltas = [], [], []
        for p in self.points:
            if len(p.write_times) < 2:
                continue
            first_app, second_app = p.first_application(), p.second_application()
            t_first, t_second = p.write_time(first_app), p.write_time(second_app)
            alone_first = self.alone_time(first_app)
            alone_second = self.alone_time(second_app)
            overlap = (t_first > 1.05 * alone_first) or (t_second > 1.05 * alone_second)
            if not overlap:
                continue
            firsts.append(t_first)
            seconds.append(t_second)
            deltas.append(p.delta)
        if not firsts:
            return 0.0
        return metrics.asymmetry_index(deltas, firsts, seconds)

    def total_collapses(self) -> int:
        """Window collapses summed over every point of the sweep."""
        return int(
            sum(sum(p.window_collapses.values()) for p in self.points)
        )

    def point_at(self, delta: float) -> DeltaPoint:
        """The sweep point closest to ``delta``."""
        if not self.points:
            raise AnalysisError("the sweep has no points")
        return min(self.points, key=lambda p: abs(p.delta - delta))

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def rows(self) -> List[Dict[str, float]]:
        """One flat dictionary per point (for tables / CSV export)."""
        rows = []
        for p in self.points:
            row: Dict[str, float] = {"delta": p.delta}
            for app, t in sorted(p.write_times.items()):
                row[f"write_time.{app}"] = t
                row[f"interference_factor.{app}"] = t / self.alone_time(app)
            rows.append(row)
        return rows

    def summary(self) -> Dict[str, float]:
        """Headline metrics of the sweep."""
        out: Dict[str, float] = {
            "peak_interference_factor": self.peak_interference_factor(),
            "asymmetry_index": self.asymmetry_index(),
            "flatness_index": self.flatness_index(),
            "total_window_collapses": float(self.total_collapses()),
        }
        for app in self.applications:
            out[f"alone_time.{app}"] = self.alone_time(app)
        out.update(self.extra)
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return {
            "points": [p.to_dict() for p in self.points],
            "alone_times": jsonify(self.alone_times),
            "label": self.label,
            "extra": jsonify(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeltaSweep":
        """Rebuild a sweep from :meth:`to_dict` output."""
        return cls(
            points=[DeltaPoint.from_dict(p) for p in data["points"]],
            alone_times={k: float(v) for k, v in data["alone_times"].items()},
            label=str(data.get("label", "")),
            extra={k: float(v) for k, v in data.get("extra", {}).items()},
        )


def default_deltas(alone_time: float, n_points: int = 9) -> List[float]:
    """Pick a symmetric set of delays spanning the interference window.

    The interference window of a Δ-graph is roughly ``[-alone, +alone]``
    (beyond that the two phases no longer overlap); the paper samples it
    symmetrically.  ``n_points`` is forced to be odd so that dt = 0 is
    included.
    """
    if alone_time <= 0:
        raise ExperimentError("alone_time must be positive")
    if n_points < 3:
        raise ExperimentError("a delta sweep needs at least 3 points")
    if n_points % 2 == 0:
        n_points += 1
    span = 1.2 * alone_time
    return [float(d) for d in np.linspace(-span, span, n_points)]


def alone_times_for(scenario: ScenarioConfig, alone_result: RunResult) -> Dict[str, float]:
    """Per-application interference-free baselines from one alone run.

    Both applications are identically configured in the paper's methodology;
    the first application's measured baseline is reused for any application
    the provided result does not cover.
    """
    baseline = alone_result.applications[scenario.applications[0].name]
    return {
        app.name: (
            alone_result.applications[app.name].write_time
            if app.name in alone_result.applications
            else baseline.write_time
        )
        for app in scenario.applications
    }


def run_delta_sweep(
    scenario: ScenarioConfig,
    deltas: Sequence[float],
    *,
    alone_result: Optional[RunResult] = None,
    seed: Optional[int] = None,
    label: str = "",
    progress: Optional[Callable[[float, RunResult], None]] = None,
) -> DeltaSweep:
    """Run a Δ-graph sweep for a two-application scenario.

    Parameters
    ----------
    scenario:
        The base two-application scenario; its second application's start
        time is replaced by each delay in turn.
    deltas:
        Delays (seconds) between the first and the second application.
    alone_result:
        Optional pre-computed interference-free run (first application only).
        If omitted, it is simulated here.
    seed:
        Seed override applied to every point (common random numbers across
        the Δ axis reduce point-to-point noise).
    label:
        Label stored on the resulting sweep.
    progress:
        Optional callback invoked as ``progress(delta, result)`` after each
        point (used by the CLI for progress reporting).
    """
    if len(scenario.applications) < 2:
        raise ExperimentError("a delta sweep needs a two-application scenario")

    if alone_result is None:
        alone_scenario = scenario.with_applications(scenario.applications[:1])
        alone_result = simulate_scenario(alone_scenario, seed=seed)
    alone_times = alone_times_for(scenario, alone_result)

    points: List[DeltaPoint] = []
    for delta in deltas:
        run_scenario = scenario.with_delay(float(delta))
        result = simulate_scenario(run_scenario, seed=seed)
        points.append(DeltaPoint.from_run_result(delta, result))
        if progress is not None:
            progress(float(delta), result)

    points.sort(key=lambda p: p.delta)
    return DeltaSweep(points=points, alone_times=alone_times, label=label or scenario.label)
