"""Scalar metrics read off Δ-graphs.

The paper quantifies interference with a small set of numbers:

* the **interference factor** (the paper's "slowdown"): write time under
  contention divided by the interference-free write time (Table I, Table II,
  Figures 2/3),
* the **peak interference factor** over a Δ sweep (Table II),
* **unfairness / asymmetry**: how differently the application that enters its
  I/O phase first is treated compared with the one that enters second
  (Figures 2(a), 4, 11, 12),
* **flatness**: whether a Δ-graph is flat (no interference at any delay),
  which the paper observes with null-aio, a throttled network, or partitioned
  servers.

All functions are pure and operate on plain floats/arrays so they can be unit
tested and reused outside the simulator.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError

__all__ = [
    "slowdown",
    "interference_factor",
    "peak_interference_factor",
    "asymmetry_index",
    "unfairness_ratio",
    "flatness_index",
    "is_flat",
]


def slowdown(contended_time: float, alone_time: float) -> float:
    """Ratio of contended to interference-free write time.

    >>> slowdown(33.4, 13.4)
    2.4925...
    """
    if alone_time <= 0:
        raise AnalysisError(f"alone_time must be positive, got {alone_time}")
    if contended_time < 0:
        raise AnalysisError(f"contended_time must be non-negative, got {contended_time}")
    return contended_time / alone_time


def interference_factor(contended_time: float, alone_time: float) -> float:
    """The paper's interference factor — an alias of :func:`slowdown`.

    A value of 1 means interference-free behaviour; 2 means the application
    took twice as long as when running alone.
    """
    return slowdown(contended_time, alone_time)


def peak_interference_factor(
    contended_times: Iterable[float], alone_time: float
) -> float:
    """Largest interference factor over a Δ sweep (Table II)."""
    times = [float(t) for t in contended_times]
    if not times:
        raise AnalysisError("contended_times must not be empty")
    return max(interference_factor(t, alone_time) for t in times)


def asymmetry_index(
    deltas: Sequence[float],
    first_app_times: Sequence[float],
    second_app_times: Sequence[float],
) -> float:
    """Signed unfairness of a Δ-graph.

    For every delay the *first* application is the one that entered its I/O
    phase earlier and the *second* is the one that entered later.  The index
    is the mean of ``(second - first) / first`` over all delays where the two
    phases actually overlap (both are slowed down).

    * positive — the application that starts second is penalized (the
      behaviour the paper observes with HDD backends and sync ON),
    * ~zero    — fair, symmetric interference,
    * negative — the second application is favoured.
    """
    deltas = [float(d) for d in deltas]
    first = [float(t) for t in first_app_times]
    second = [float(t) for t in second_app_times]
    if not (len(deltas) == len(first) == len(second)):
        raise AnalysisError("deltas and time sequences must have equal length")
    if not deltas:
        raise AnalysisError("asymmetry_index needs at least one delta point")
    ratios = []
    for _d, t_first, t_second in zip(deltas, first, second):
        if t_first <= 0 or t_second <= 0:
            raise AnalysisError("write times must be positive")
        ratios.append((t_second - t_first) / t_first)
    return float(np.mean(ratios))


def unfairness_ratio(first_app_time: float, second_app_time: float) -> float:
    """Ratio of the second application's write time to the first's.

    Values above 1 mean the late-comer is penalized.
    """
    if first_app_time <= 0 or second_app_time <= 0:
        raise AnalysisError("write times must be positive")
    return second_app_time / first_app_time


def flatness_index(contended_times: Sequence[float], alone_time: float) -> float:
    """How flat a Δ-graph is: the peak interference factor minus one.

    0 means perfectly flat (no interference at any delay); the paper's
    null-aio and 1G sync-OFF graphs are nearly flat, while the HDD sync-ON
    graph peaks around one (a 2x slowdown).
    """
    return peak_interference_factor(contended_times, alone_time) - 1.0


def is_flat(
    contended_times: Sequence[float], alone_time: float, tolerance: float = 0.15
) -> bool:
    """True when the Δ-graph never exceeds ``1 + tolerance`` times the baseline."""
    return flatness_index(contended_times, alone_time) <= tolerance


def crossover_delay(
    deltas: Sequence[float],
    times: Sequence[float],
    alone_time: float,
    threshold: float = 1.1,
) -> Tuple[float, float]:
    """Delays beyond which interference disappears on each side of a Δ-graph.

    Returns ``(negative_side, positive_side)``: the most negative and most
    positive delay at which the interference factor still exceeds
    ``threshold``.  Useful for measuring how wide the interference window is
    (roughly the interference-free write time on each side).
    """
    deltas = np.asarray([float(d) for d in deltas])
    times = np.asarray([float(t) for t in times])
    if deltas.shape != times.shape or deltas.size == 0:
        raise AnalysisError("deltas and times must be non-empty and equal length")
    factors = times / float(alone_time)
    affected = deltas[factors > threshold]
    if affected.size == 0:
        return (0.0, 0.0)
    return (float(affected.min()), float(affected.max()))
