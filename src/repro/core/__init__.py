"""The paper's characterization methodology as a library.

* :mod:`repro.core.metrics`     — interference factor, unfairness/asymmetry,
  flatness, and the other scalar metrics the paper reads off its Δ-graphs,
* :mod:`repro.core.delta`       — Δ-graph sweeps (the paper's main instrument),
* :mod:`repro.core.experiment`  — the canonical two-application experiment,
* :mod:`repro.core.scenarios`   — the "rule a component out" scenario builders
  of Section III-A,
* :mod:`repro.core.rootcause`   — root-cause attribution from component
  utilizations,
* :mod:`repro.core.flowcontrol` — Incast / flow-control breakdown detection,
* :mod:`repro.core.prediction`  — the analytic fair-sharing Δ-graph model
  (CALCioM-style) used to quantify how far a measured sweep deviates from
  plain proportional sharing,
* :mod:`repro.core.reporting`   — plain-text reports of all of the above.
"""

from repro.core.metrics import (
    asymmetry_index,
    flatness_index,
    interference_factor,
    peak_interference_factor,
    slowdown,
)
from repro.core.delta import DeltaPoint, DeltaSweep, run_delta_sweep
from repro.core.experiment import TwoApplicationExperiment
from repro.core.flowcontrol import FlowControlDiagnosis, diagnose_flow_control
from repro.core.prediction import (
    PredictionComparison,
    compare_with_sweep,
    predict_sweep,
    predict_write_times,
)
from repro.core.rootcause import BottleneckReport, attribute_root_cause
from repro.core.scenarios import (
    colocated_filesystem_scenario,
    dedicated_writer_scenario,
    fast_backend_scenario,
    partitioned_servers_scenario,
    throttled_network_scenario,
)

__all__ = [
    "interference_factor",
    "slowdown",
    "peak_interference_factor",
    "asymmetry_index",
    "flatness_index",
    "DeltaPoint",
    "DeltaSweep",
    "run_delta_sweep",
    "TwoApplicationExperiment",
    "FlowControlDiagnosis",
    "diagnose_flow_control",
    "BottleneckReport",
    "attribute_root_cause",
    "PredictionComparison",
    "compare_with_sweep",
    "predict_sweep",
    "predict_write_times",
    "colocated_filesystem_scenario",
    "dedicated_writer_scenario",
    "fast_backend_scenario",
    "partitioned_servers_scenario",
    "throttled_network_scenario",
]
