"""Rule-out scenario builders (the paper's Section III-A methodology).

The paper does not benchmark components in isolation; instead it *rules out*
or reconfigures one potential point of contention at a time and observes the
interference that remains:

1. the **network interface** is ruled out by letting a single core per node
   issue all of the node's I/O,
2. the **network** is studied by throttling its bandwidth (10 G -> 1 G),
3. the **servers** are ruled out by giving each application a disjoint set of
   servers,
4. the **disks** are ruled out with faster backends (SSD/RAM), the null-aio
   method, or by disabling synchronization.

Each helper below transforms a baseline scenario accordingly, so experiments
and examples can express the methodology literally.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.config.presets import grid5000_platform, make_scenario
from repro.config.scenario import ScenarioConfig
from repro.errors import ExperimentError

__all__ = [
    "dedicated_writer_scenario",
    "throttled_network_scenario",
    "partitioned_servers_scenario",
    "fast_backend_scenario",
    "colocated_filesystem_scenario",
]


def dedicated_writer_scenario(scenario: ScenarioConfig) -> ScenarioConfig:
    """Rule out the network interface: one writer per node.

    Every application keeps its node count and total data volume, but a
    single process per node performs all of that node's I/O — the paper's
    "1 client per node writes 16 blocks of 64 MB" configuration (Figure 4).
    """
    new_apps = []
    for app in scenario.applications:
        new_apps.append(app.with_writers(app.n_nodes, 1, keep_total_bytes=True))
    return scenario.with_applications(new_apps)


def throttled_network_scenario(
    scenario: ScenarioConfig, network: str = "1g", scale: Optional[str] = None
) -> ScenarioConfig:
    """Throttle the storage network (the paper's 1 G Ethernet configuration).

    ``scale`` defaults to the scale implied by the scenario's platform name
    (``grid5000-<scale>``); pass it explicitly for custom platforms.
    """
    name = scale
    if name is None:
        platform_name = scenario.platform.name
        if "-" in platform_name:
            name = platform_name.rsplit("-", 1)[1]
        else:
            raise ExperimentError(
                "cannot infer the scale preset from the platform name; pass scale="
            )
    platform = grid5000_platform(name, network=network)
    if platform.n_client_nodes < scenario.platform.n_client_nodes:
        platform = platform.with_nodes(scenario.platform.n_client_nodes)
    return scenario.with_platform(platform)


def partitioned_servers_scenario(scenario: ScenarioConfig) -> ScenarioConfig:
    """Rule out servers and disks as shared components (Figure 7).

    The deployment's servers are split into as many equal groups as there are
    applications and each application is restricted to its own group, leaving
    the network as the only shared resource.
    """
    groups = scenario.filesystem.server_groups(len(scenario.applications))
    new_apps = [
        app.with_target_servers(group)
        for app, group in zip(scenario.applications, groups)
    ]
    return scenario.with_applications(new_apps)


def fast_backend_scenario(
    scenario: ScenarioConfig, backend: str = "ram", sync: Optional[bool] = None
) -> ScenarioConfig:
    """Rule out the storage device: RAM/SSD backend and/or sync OFF.

    Parameters
    ----------
    backend:
        Device preset name (``"ram"``, ``"ssd"``, ``"null"``).
    sync:
        Optionally force synchronization on/off as well.
    """
    fs = scenario.filesystem.with_device(backend)
    if sync is not None:
        fs = fs.with_sync(sync)
    return scenario.with_filesystem(fs)


def colocated_filesystem_scenario(
    device: str = "hdd",
    bytes_per_process: float = 2 * units.GiB,
    scale: str = "reduced",
) -> ScenarioConfig:
    """Single-node configuration used for the device-level study (Table I).

    One single-process application writes to a single-server deployment, so
    the network plays no role and any interference observed with a second
    application is attributable to the backend device.
    """
    return make_scenario(
        scale,
        device=device,
        sync_mode="sync-on",
        nodes_per_app=1,
        procs_per_node=1,
        n_servers=1,
        bytes_per_process=bytes_per_process,
        label=f"local/{device}",
    )
