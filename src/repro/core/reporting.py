"""Plain-text reports for experiments.

Everything the experiment modules print — Δ-graph tables, the Table I / II
layouts, headline metric summaries — is produced here so that benchmarks,
the CLI, and the examples share one formatting path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro import units
from repro.core.delta import DeltaSweep

__all__ = [
    "format_table",
    "format_delta_sweep",
    "format_summary",
    "format_comparison",
]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple fixed-width text table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        return f"{cell:.3g}" if abs(cell) < 10 else f"{cell:.2f}"
    return str(cell)


def format_delta_sweep(sweep: DeltaSweep, title: str = "") -> str:
    """Render a Δ-graph sweep as the table of points plus headline metrics."""
    apps = sweep.applications
    headers = ["dt (s)"]
    for app in apps:
        headers += [f"t_{app} (s)", f"IF_{app}"]
    rows = []
    for point in sweep.points:
        row: List[object] = [point.delta]
        for app in apps:
            t = point.write_time(app)
            row += [t, t / sweep.alone_time(app)]
        rows.append(row)
    table = format_table(headers, rows, title=title or sweep.label)
    summary = sweep.summary()
    extra = [
        "",
        f"alone time: {sweep.alone_time(apps[0]):.3f} s",
        f"peak interference factor: {summary['peak_interference_factor']:.2f}",
        f"asymmetry index: {summary['asymmetry_index']:+.3f}",
        f"flatness index: {summary['flatness_index']:.2f}",
    ]
    return table + "\n" + "\n".join(extra)


def format_summary(summary: Mapping[str, float], title: str = "") -> str:
    """Render a flat metric dictionary as an aligned key/value listing."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(k) for k in summary), default=0)
    for key in sorted(summary):
        value = summary[key]
        if isinstance(value, float):
            lines.append(f"  {key.ljust(width)}  {value:.4g}")
        else:
            lines.append(f"  {key.ljust(width)}  {value}")
    return "\n".join(lines)


def format_comparison(
    rows: Mapping[str, Mapping[str, float]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a {row_label: {column: value}} mapping as a table.

    Used for Table I (device x alone/interfering/slowdown) and Table II
    (server count x interference factor).
    """
    if columns is None:
        seen: Dict[str, None] = {}
        for row in rows.values():
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)
    headers = [""] + list(columns)
    table_rows = []
    for label, row in rows.items():
        table_rows.append([label] + [row.get(col, float("nan")) for col in columns])
    return format_table(headers, table_rows, title=title)


def human_bytes(value: float) -> str:
    """Convenience re-export of :func:`repro.units.bytes_to_human`."""
    return units.bytes_to_human(value)
