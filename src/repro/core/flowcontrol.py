"""Flow-control breakdown (Incast) detection.

Section IV-B of the paper shows, with tcpdump traces, that the unfair
interference cases coincide with the TCP window of the affected clients
collapsing to nearly zero — the Incast problem — and that this happens when
the component draining the data (Trove plus a slow disk) cannot keep up while
the transport keeps pushing.

:func:`diagnose_flow_control` reproduces that diagnosis from a simulation
run: it combines the collapse counters, the window traces (when recorded) and
the buffer pressure into a single verdict, and reports the per-application
split that reveals unfairness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import AnalysisError
from repro.model.results import RunResult

__all__ = ["FlowControlDiagnosis", "diagnose_flow_control"]


@dataclass(frozen=True)
class FlowControlDiagnosis:
    """Outcome of the Incast diagnosis for one run."""

    incast_detected: bool
    collapses_per_app: Dict[str, int]
    collapse_rate: float
    buffer_pressure: float
    min_window_fraction: Optional[float]
    victim: Optional[str]

    def unfairness_ratio(self) -> float:
        """Ratio between the most- and least-collapsed application (>= 1)."""
        counts = sorted(self.collapses_per_app.values())
        if len(counts) < 2 or counts[0] == 0:
            return 1.0 if not counts or counts[-1] == 0 else float("inf")
        return counts[-1] / counts[0]

    def describe(self) -> str:
        """Multi-line human-readable diagnosis."""
        lines = [
            "Incast detected" if self.incast_detected else "no Incast signature",
            f"  collapse rate: {self.collapse_rate:.2f} per application-second",
            f"  buffer pressure: {self.buffer_pressure:.2f}",
        ]
        for app, count in sorted(self.collapses_per_app.items()):
            lines.append(f"  collapses[{app}]: {count}")
        if self.min_window_fraction is not None:
            lines.append(f"  minimum traced window: {self.min_window_fraction:.3f} of its peak")
        if self.victim is not None:
            lines.append(f"  main victim: application {self.victim}")
        return "\n".join(lines)


def diagnose_flow_control(
    result: RunResult,
    *,
    collapse_rate_threshold: float = 5.0,
    pressure_threshold: float = 0.5,
) -> FlowControlDiagnosis:
    """Diagnose whether a run exhibits the Incast flow-control breakdown.

    Parameters
    ----------
    result:
        The simulation run to analyse.
    collapse_rate_threshold:
        Minimum number of window collapses per application-second for the run
        to count as Incast-affected.
    pressure_threshold:
        Minimum fraction of time the server buffers had to be (nearly) full.

    Returns
    -------
    FlowControlDiagnosis
    """
    if not result.applications:
        raise AnalysisError("the run has no applications to diagnose")
    collapses = {name: app.window_collapses for name, app in result.applications.items()}
    span = max(result.simulated_time, 1e-9)
    rate = sum(collapses.values()) / (span * max(len(collapses), 1))
    pressure = result.components.mean_buffer_pressure()

    # Window traces (optional): how far the traced windows dropped relative
    # to their peak — the visual signature of the paper's Figure 10(b).
    min_window_fraction: Optional[float] = None
    window_names = result.window_series_names()
    if window_names:
        fractions = []
        for name in window_names:
            series = result.recorder.get_series(name)
            if len(series) == 0:
                continue
            peak = series.max()
            if peak > 0:
                fractions.append(series.min() / peak)
        if fractions:
            min_window_fraction = float(np.min(fractions))

    incast = rate >= collapse_rate_threshold and pressure >= pressure_threshold
    victim: Optional[str] = None
    if incast and collapses:
        worst = max(collapses, key=collapses.get)
        best = min(collapses, key=collapses.get)
        if collapses[worst] > 1.5 * max(collapses[best], 1):
            victim = worst

    return FlowControlDiagnosis(
        incast_detected=bool(incast),
        collapses_per_app=collapses,
        collapse_rate=float(rate),
        buffer_pressure=float(pressure),
        min_window_fraction=min_window_fraction,
        victim=victim,
    )
