"""Root-cause attribution.

The paper's Figure 1 identifies four potential points of contention: the
compute node's network interface, the storage network, the file-system
servers, and the backend storage devices.  A fifth failure mode — the one the
paper ultimately blames for the worst behaviours — is not a saturated
component at all but *bad flow control* (Incast) arising from the interplay
of a slow backend and the transport.

:func:`attribute_root_cause` turns the component statistics of a
:class:`~repro.model.results.RunResult` into a ranked report that names the
dominant cause, mirroring the diagnostic reasoning of Section IV.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import AnalysisError
from repro.model.results import RunResult

__all__ = ["Contender", "BottleneckReport", "attribute_root_cause"]


class Contender(enum.Enum):
    """The candidate root causes of interference."""

    CLIENT_NIC = "client network interface"
    STORAGE_NETWORK = "storage network"
    SERVERS = "file-system servers"
    DEVICES = "backend storage devices"
    FLOW_CONTROL = "flow control (Incast)"
    NONE = "no contention"


@dataclass(frozen=True)
class BottleneckReport:
    """Ranked root-cause attribution for one run."""

    scores: Dict[Contender, float]
    dominant: Contender
    utilization_summary: Dict[str, float]

    def ranked(self) -> List[Tuple[Contender, float]]:
        """Contenders sorted by score, highest first."""
        return sorted(self.scores.items(), key=lambda kv: kv[1], reverse=True)

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"dominant root cause: {self.dominant.value}"]
        for contender, score in self.ranked():
            lines.append(f"  {contender.value:32s} score {score:5.2f}")
        for key, value in sorted(self.utilization_summary.items()):
            lines.append(f"  {key:32s} {value:6.3f}")
        return "\n".join(lines)


def attribute_root_cause(
    result: RunResult,
    *,
    saturation_threshold: float = 0.85,
    collapse_significance: float = 0.05,
) -> BottleneckReport:
    """Rank the candidate root causes for one simulation run.

    The scores are heuristic but interpretable:

    * each physical component scores its peak utilization (0..1),
    * flow control scores the fraction of connection-steps spent collapsed,
      amplified by how full the server buffers were — this is what separates
      "the disk is simply the bottleneck" (high device utilization, no
      collapses) from "flow control broke down" (collapses plus full
      buffers), the distinction at the heart of the paper.
    """
    if not result.applications:
        raise AnalysisError("the run has no applications to attribute causes for")
    comp = result.components
    total_collapses = comp.total_window_collapses
    # Normalize collapses by the run length and application count: one
    # collapse per application per simulated second is already significant.
    span = max(result.simulated_time, 1e-9)
    collapse_rate = total_collapses / (span * max(len(result.applications), 1))
    collapse_score = min(collapse_rate / 50.0, 1.0)
    buffer_pressure = comp.mean_buffer_pressure()

    scores: Dict[Contender, float] = {
        Contender.CLIENT_NIC: float(comp.client_nic_utilization),
        Contender.STORAGE_NETWORK: float(comp.server_nic_utilization),
        Contender.SERVERS: float(comp.mean_server_utilization()),
        Contender.DEVICES: float(comp.mean_device_utilization()),
        Contender.FLOW_CONTROL: float(min(1.0, collapse_score * (0.5 + buffer_pressure))),
    }

    dominant = max(scores, key=scores.get)
    if scores[dominant] < collapse_significance and scores[dominant] < saturation_threshold:
        dominant = Contender.NONE

    summary = {
        "client_nic_utilization": float(comp.client_nic_utilization),
        "server_nic_utilization": float(comp.server_nic_utilization),
        "mean_server_utilization": comp.mean_server_utilization(),
        "mean_device_utilization": comp.mean_device_utilization(),
        "mean_buffer_pressure": buffer_pressure,
        "window_collapses": float(total_collapses),
        "collapse_rate_per_app_second": float(collapse_rate),
    }
    return BottleneckReport(scores=scores, dominant=dominant, utilization_summary=summary)
