"""Single-node write model (the paper's Table I).

The paper's first experiment removes the network entirely: the microbenchmark
and a single-server PVFS instance run on the same node, each application is a
single client writing 2 GB contiguously to its own file, and the only shared
resource is the backend device.

This model reproduces that setting with a small fluid simulation on the
discrete-event engine:

* each application's data passes through a private client-side copy stage
  (bandwidth :attr:`~repro.config.platform.PlatformConfig.process_copy_bw`)
  and a shared device stage in series,
* the device's aggregate bandwidth follows the
  :meth:`~repro.storage.device.DeviceSpec.effective_write_bw` law: when two
  applications interleave writes to two files, an HDD loses bandwidth to head
  movement, which is why its slowdown exceeds the fair-sharing factor of 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro import units
from repro.errors import ConfigurationError, SimulationError
from repro.obs.telemetry import get_telemetry
from repro.sim.engine import Simulator
from repro.storage.device import DeviceSpec

__all__ = ["LocalWriteResult", "simulate_local_writes"]


@dataclass(frozen=True)
class LocalWriteResult:
    """Outcome of one local-write experiment."""

    device: str
    write_times: Tuple[float, ...]
    start_times: Tuple[float, ...]
    bytes_per_app: float

    @property
    def n_apps(self) -> int:
        """Number of applications that wrote concurrently."""
        return len(self.write_times)

    @property
    def mean_write_time(self) -> float:
        """Mean write time across applications."""
        return float(np.mean(self.write_times))

    @property
    def max_write_time(self) -> float:
        """Slowest application's write time."""
        return float(np.max(self.write_times))

    def slowdown_versus(self, alone: "LocalWriteResult") -> float:
        """Slowdown of this run relative to an interference-free run."""
        if alone.mean_write_time <= 0:
            raise SimulationError("alone write time must be positive")
        return self.mean_write_time / alone.mean_write_time

    def as_dict(self) -> Dict[str, float]:
        """Flat summary used by reports."""
        out = {"bytes_per_app": self.bytes_per_app, "mean_write_time": self.mean_write_time}
        for i, t in enumerate(self.write_times):
            out[f"write_time.{i}"] = t
        return out


def simulate_local_writes(
    device: DeviceSpec,
    n_apps: int = 1,
    bytes_per_app: float = 2 * units.GiB,
    process_copy_bw: float = 3600 * units.MiB,
    start_times: Sequence[float] | None = None,
    step: float = 10.0e-3,
    max_time: float = 3600.0,
) -> LocalWriteResult:
    """Simulate ``n_apps`` single-process applications writing locally.

    Parameters
    ----------
    device:
        Backend device shared by the applications (each writes its own file).
    n_apps:
        Number of concurrent applications.
    bytes_per_app:
        Bytes each application writes (the paper uses 2 GB).
    process_copy_bw:
        Per-process client-side copy bandwidth (not shared across
        applications running on different cores).
    start_times:
        Optional per-application start times (default: all start at 0).
    step:
        Fluid-model step (seconds).
    max_time:
        Safety limit on the simulated time.

    Returns
    -------
    LocalWriteResult
        Per-application write times.
    """
    if n_apps <= 0:
        raise ConfigurationError("n_apps must be positive")
    if bytes_per_app <= 0:
        raise ConfigurationError("bytes_per_app must be positive")
    if process_copy_bw <= 0:
        raise ConfigurationError("process_copy_bw must be positive")
    if step <= 0:
        raise ConfigurationError("step must be positive")
    if start_times is None:
        starts = np.zeros(n_apps, dtype=np.float64)
    else:
        starts = np.asarray(list(start_times), dtype=np.float64)
        if starts.shape[0] != n_apps:
            raise ConfigurationError("start_times must have one entry per application")

    remaining = np.full(n_apps, float(bytes_per_app), dtype=np.float64)
    end_times = np.full(n_apps, np.nan, dtype=np.float64)
    granule = device.interleave_granule_cap

    sim = Simulator(start_time=float(starts.min()) if starts.size else 0.0)

    def tick(s: Simulator) -> None:
        now = s.now
        active = (remaining > 0) & (starts <= now)
        n_active = int(active.sum())
        if n_active == 0:
            if np.all(remaining <= 0):
                s.stop("all local writers finished")
            return
        if device.is_unlimited:
            per_app_device_bw = np.full(n_apps, process_copy_bw * 1e3)
        else:
            aggregate = device.effective_write_bw(n_active, granule)
            per_app_device_bw = np.full(n_apps, aggregate / n_active)
        # Client copy and device write proceed in series for each chunk.
        rate = 1.0 / (1.0 / process_copy_bw + 1.0 / per_app_device_bw)
        progress = np.where(active, rate * step, 0.0)
        np.minimum(progress, remaining, out=progress)
        remaining[:] = remaining - progress
        finished_now = active & (remaining <= 1e-6)
        end_times[finished_now] = now
        if np.all(remaining <= 1e-6):
            s.stop("all local writers finished")

    sim.schedule_periodic(step, tick, start=float(starts.min()) + step, label="local.tick")
    telemetry = get_telemetry()
    if telemetry.enabled:
        with telemetry.span(
            f"local:{device.name}x{n_apps}",
            category="simulation",
            device=device.name,
            n_apps=n_apps,
            bytes_per_app=float(bytes_per_app),
        ):
            sim.run(until=float(starts.min()) + max_time)
        for name, value in sim.stats().items():
            telemetry.count(name, value)
        telemetry.count("sim.steps", sim.events_processed)
    else:
        sim.run(until=float(starts.min()) + max_time)
    if np.any(np.isnan(end_times)):
        raise SimulationError(
            "local write simulation did not finish within max_time; "
            "increase max_time or check the device configuration"
        )
    write_times = tuple(float(end_times[i] - starts[i]) for i in range(n_apps))
    return LocalWriteResult(
        device=device.name,
        write_times=write_times,
        start_times=tuple(float(t) for t in starts),
        bytes_per_app=float(bytes_per_app),
    )
