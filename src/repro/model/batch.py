"""Batched lockstep stepping: advance B same-shape simulations per NumPy call.

The scalar kernel (:mod:`repro.model.stepper`) is dispatch-bound at small
scale: each phase is a handful of vectorized ops over a few hundred elements,
so Python/NumPy call overhead dominates the step.  Every campaign this repo
runs (interference matrices, parameter grids, seed replications) is
embarrassingly many *independent* simulations of the same deployment shape,
which makes the batch axis free: concatenate the per-connection, per-server
and per-node state of B member simulations into flat arrays and run the same
seven phases once per step over ``B * N`` elements.

Exactness
---------
The batched kernel is bit-for-bit identical to running every member alone,
by construction rather than by tolerance:

* every elementwise ufunc is trivially independent per lane;
* ``bincount`` accumulates per bin in input order, and each member's
  connections occupy a contiguous flat range in their original relative
  order, so per-bin partial-sum order is unchanged;
* the admission water-filling operates row-per-server on a ``(B*S, k)``
  matrix; row reductions only combine elements of one member's server, and
  dead rows are frozen exactly (``take[~live] = 0.0``), so extra iterations
  driven by *other* members' rows are exact no-ops;
* RNG draw order is preserved per member: the burst-escape gate draws from
  each member's own admission stream, and ``WindowState.update`` receives
  ``rng_sites`` so hazard draws and collapse jitter come from each member's
  own transport stream, gated and sized exactly as a member-alone run;
* a finished member steps on as an exact no-op (zero outstanding bytes means
  zero offers, zero admissions, no window motion — the post-step invariant
  ``starved_time < rto`` rules out late timeouts), so no per-lane masking is
  needed; only member-local scalars (observed time, pressure step counts,
  backend commits, completion handling) are gated on liveness.

Driver
------
Each member keeps its own discrete-event engine for the control plane
(application starts, operation issues, trace sampling) — those are exact
scalar code paths on member-local state.  A periodic NORMAL-priority marker
event (the same ``schedule_periodic`` arithmetic the scalar driver uses)
stops each engine at every step boundary; the batched kernel then advances
all members at once and the engines resume.  Event ordering within a step
instant (CONTROL < NORMAL < OBSERVE) is therefore identical to the scalar
run, including trace samples observing post-step state.

Bucketing
---------
:func:`plan_buckets` groups scenarios that can share a flat state: same
resolved step, start time and horizon, and the same platform/filesystem
configuration.  Connection counts and per-server group sizes are free to
differ — the admission water-filling pads ragged groups into width classes
(:class:`~repro.network.incast.ServerBuffers`), so mixed deployments batch
together and ``batch.padded_slots`` accounts the masked waste.  Only
adaptive stepping (no fixed lockstep cadence) and buckets smaller than
``min_batch`` fall back to the scalar kernel.  :func:`simulate_many` is the
front end: it plans, runs each bucket batched, runs the fallbacks scalar,
and emits ``batch.*`` telemetry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config.scenario import ScenarioConfig
from repro.errors import SimulationError
from repro.model.results import RunResult
from repro.model.simulator import IOPathSimulator, simulate_scenario
from repro.model.stepper import ModelStepper, StepContext
from repro.network.congestion import WindowState
from repro.network.incast import ServerBuffers
from repro.network.topology import StarTopology
from repro.obs.telemetry import get_telemetry
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.rng import RandomStreams

__all__ = [
    "BatchSimulator",
    "BatchedStepper",
    "BucketShape",
    "count_fallback",
    "plan_buckets",
    "run_bucket",
    "simulate_many",
]

#: Member arrays re-pointed at flat slices (state stays bitwise equal because
#: both sides are freshly constructed with identical initial values).
_WINDOW_ARRAYS = (
    "cwnd", "stall_until", "backoff", "starved_time", "last_delivery",
    "collapse_count", "delivered_bytes", "paced", "ever_paced",
)
_BUFFER_SERVER_ARRAYS = ("fill", "total_admitted", "total_drained")


# ---------------------------------------------------------------------- #
# Shape bucketing
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class BucketShape:
    """The lockstep cadence a batch bucket shares.

    ``dt`` and ``t0`` pin the cadence; members with different resolved steps
    or start anchors cannot share marker events.  ``n_servers`` and
    ``n_client_nodes`` are informational (the platform/filesystem equality
    check in :func:`_compatible` already pins them); connection counts and
    per-server group sizes are deliberately absent — ragged and mixed-width
    members pad into one bucket.
    """

    n_servers: int
    n_client_nodes: int
    dt: float
    t0: float
    max_time: float


@dataclass
class _Bucket:
    shape: BucketShape
    reference: ScenarioConfig
    indices: List[int] = field(default_factory=list)


def _shape_of(scenario: ScenarioConfig) -> Optional[BucketShape]:
    """Deployment shape of ``scenario``, or ``None`` when it cannot batch
    (adaptive stepping has no fixed lockstep cadence)."""
    control = scenario.control
    if control.resolve_stepping().is_adaptive:
        return None
    dt = control.resolve_step(scenario.estimate_duration())
    t0 = min(0.0, min(app.start_time for app in scenario.applications))
    return BucketShape(
        n_servers=scenario.filesystem.n_servers,
        n_client_nodes=scenario.platform.n_client_nodes,
        dt=float(dt),
        t0=float(t0),
        max_time=float(control.max_time),
    )


def _compatible(reference: ScenarioConfig, scenario: ScenarioConfig) -> bool:
    """True when two same-shape scenarios can share one flat batch state.

    Platform and filesystem configs (frozen dataclasses) must compare equal —
    they feed the stepper's cached constants.  Seeds, workloads and trace
    configs are member-local and free to differ.
    """
    return (
        scenario.platform == reference.platform
        and scenario.filesystem == reference.filesystem
    )


def plan_buckets(
    scenarios: Sequence[ScenarioConfig], *, min_batch: int = 2
) -> Tuple[List[_Bucket], List[Tuple[int, str]]]:
    """Group ``scenarios`` into batchable buckets.

    Returns ``(buckets, fallback)`` where every input index appears in
    exactly one bucket's ``indices`` or once in ``fallback`` as an
    ``(index, reason)`` pair with reason ``"adaptive"`` or ``"singleton"``
    (bucket smaller than ``min_batch``).
    """
    buckets: List[_Bucket] = []
    fallback: List[Tuple[int, str]] = []
    for i, scenario in enumerate(scenarios):
        shape = _shape_of(scenario)
        if shape is None:
            fallback.append((i, "adaptive"))
            continue
        for bucket in buckets:
            if bucket.shape == shape and _compatible(bucket.reference, scenario):
                bucket.indices.append(i)
                break
        else:
            buckets.append(_Bucket(shape=shape, reference=scenario, indices=[i]))
    full: List[_Bucket] = []
    for bucket in buckets:
        if len(bucket.indices) >= max(min_batch, 1):
            full.append(bucket)
        else:
            fallback.extend((i, "singleton") for i in bucket.indices)
    fallback.sort()
    return full, fallback


# ---------------------------------------------------------------------- #
# Flat-state facades
# ---------------------------------------------------------------------- #


@dataclass
class _BatchMember:
    """One member simulation and its lanes in the flat state."""

    sim: IOPathSimulator
    engine: Simulator
    conn_sl: slice
    srv_sl: slice
    node_sl: slice
    until: float
    admission_rng: np.random.Generator
    live: bool = True
    n_steps: int = 0
    end_time: float = float("nan")


class _BatchedTopology:
    """Flat per-link accounting shared by every member.

    Busy/transferred arrays are the storage the members' own topologies view
    into; ``_observed_time`` stays member-local (it advances only while the
    member is live) so utilization denominators freeze at member finish.
    """

    def __init__(self, node_capacity: np.ndarray, server_capacity: np.ndarray) -> None:
        self._node_capacity = node_capacity
        self._server_capacity = server_capacity
        n_nodes = node_capacity.shape[0]
        n_servers = server_capacity.shape[0]
        self.node_busy = np.zeros(n_nodes, dtype=np.float64)
        self.node_transferred = np.zeros(n_nodes, dtype=np.float64)
        self.server_busy = np.zeros(n_servers, dtype=np.float64)
        self.server_transferred = np.zeros(n_servers, dtype=np.float64)
        self._scratch_node = np.empty(n_nodes, dtype=np.float64)
        self._scratch_node2 = np.empty(n_nodes, dtype=np.float64)
        self._scratch_server = np.empty(n_servers, dtype=np.float64)
        self._scratch_server2 = np.empty(n_servers, dtype=np.float64)

    @property
    def n_client_nodes(self) -> int:
        return self._node_capacity.shape[0]

    def node_capacities(self) -> np.ndarray:
        return self._node_capacity.copy()

    def server_capacities(self) -> np.ndarray:
        return self._server_capacity.copy()

    def record_step_flat(
        self, per_node: np.ndarray, per_server: np.ndarray, dt: float
    ) -> None:
        """The two `_record_group` updates of ``StarTopology.record_step``.

        Validation is skipped (the batched kernel feeds its own bincounts)
        and ``_observed_time`` is left to the per-member accounting.  Dead
        members contribute exact zeros, so flat accumulation is exact.
        """
        StarTopology._record_group(
            per_node, self._node_capacity, self.node_transferred,
            self.node_busy, self._scratch_node, self._scratch_node2, dt,
        )
        StarTopology._record_group(
            per_server, self._server_capacity, self.server_transferred,
            self.server_busy, self._scratch_server, self._scratch_server2, dt,
        )


class _BatchedDeployment:
    """Routes drain-rate queries and backend commits to live members.

    The per-server drain law is a Python loop over mutable ``PVFSServer``
    objects, so it stays member-local: each live member's deployment answers
    for its own server lanes.  Dead members keep stale lanes in ``_rates`` —
    harmless, since their connections offer zero bytes.
    """

    def __init__(self, members: Sequence[_BatchMember], n_servers: int) -> None:
        self._members = members
        self._rates = np.zeros(n_servers, dtype=np.float64)

    def drain_rates(self, n_streams: np.ndarray, avg_frag: np.ndarray) -> np.ndarray:
        rates = self._rates
        for member in self._members:
            if member.live:
                sl = member.srv_sl
                rates[sl] = member.sim.state.deployment.drain_rates(
                    n_streams[sl], avg_frag[sl]
                )
        return rates

    def commit(
        self,
        drained: np.ndarray,
        dt: float,
        n_streams: np.ndarray,
        avg_frag: np.ndarray,
    ) -> None:
        for member in self._members:
            if member.live:
                sl = member.srv_sl
                member.sim.state.deployment.commit(
                    drained[sl], dt, n_streams[sl], avg_frag[sl]
                )


class _BatchedState:
    """Duck-typed ``ModelState`` facade over the flat batch arrays.

    Carries exactly the attributes the inherited stepping phases read; the
    control plane (operation issue, completion, results) never sees it — it
    runs on the members' own ``ModelState`` objects, whose hot arrays are
    views into the flat storage below.
    """

    def __init__(
        self,
        members: Sequence[_BatchMember],
        topology: _BatchedTopology,
        deployment: _BatchedDeployment,
        conn_server: np.ndarray,
        conn_node: np.ndarray,
    ) -> None:
        reference = members[0].sim
        scenario = reference.scenario
        self.scenario = scenario
        #: Dummy stream source: the batched kernel never draws from it (the
        #: burst-escape gate override draws from each member's own streams).
        self.streams = RandomStreams(0)
        self.recorder = None  # the batched phases never mark; members do
        self.topology = topology
        self.deployment = deployment
        self.conn_server = conn_server
        self.conn_node = conn_node
        self.n_connections = int(conn_server.shape[0])
        self.n_servers = int(topology.server_capacities().shape[0])
        self.n_apps = sum(m.sim.state.n_apps for m in members)
        transport = scenario.platform.network.transport
        #: Flat transport/buffer state.  Freshly constructed flat arrays have
        #: the same initial values as each member's own fresh arrays, so
        #: re-pointing members at slices preserves bitwise state.  The flat
        #: WindowState's rng is a dummy: update() receives rng_sites and
        #: force_timeout is only ever called on member WindowState objects.
        self.windows = WindowState(
            self.n_connections, transport, rng=np.random.default_rng(0)
        )
        self.buffers = ServerBuffers(
            n_servers=self.n_servers,
            capacity_bytes=scenario.filesystem.server.buffer_bytes,
            conn_server=conn_server,
        )
        self.send_remaining = np.zeros(self.n_connections, dtype=np.float64)
        self.frag_size = np.zeros(self.n_connections, dtype=np.float64)
        self.last_drain_rate = np.full(
            self.n_servers, scenario.filesystem.server.ingest_bw, dtype=np.float64
        )
        self.last_admission_rate = np.zeros(self.n_servers, dtype=np.float64)


# ---------------------------------------------------------------------- #
# The batched stepper
# ---------------------------------------------------------------------- #


class BatchedStepper(ModelStepper):
    """The seven-phase kernel over the flat batch state.

    Inherits the data-plane phases unchanged (they are pure array code over
    the facade state) and overrides the four places that touch RNG streams or
    member-local bookkeeping: the burst-escape gate, window dynamics,
    accounting, and completion.
    """

    def __init__(self, state: _BatchedState, members: Sequence[_BatchMember]) -> None:
        super().__init__(state)  # type: ignore[arg-type]
        self._members = list(members)
        #: Per-member RNG sites for WindowState.update: hazard draws and
        #: collapse jitter come from each member's own transport stream,
        #: sliced to its lanes.  Dead members never have candidates (their
        #: connections are inactive and their post-step starvation clocks
        #: sit below the RTO), so the site list can stay static.
        self._rng_sites = tuple(
            (m.conn_sl, m.sim.state.windows._rng) for m in self._members
        )

    # -- phase overrides ------------------------------------------------ #

    def _burst_escape_gate(self, ctx: StepContext) -> None:
        """Per-member burst-escape gate.

        Mirrors the scalar gate slice by slice so every member consumes
        exactly the draws (one full-lane ``random`` per step with any gated
        connection) a member-alone run would, from its own admission stream.
        """
        ws = self.workspace
        transport = self._transport
        if not ws.tmp_bool_a.any():
            return
        ever_paced = self.state.windows.ever_paced
        for member in self._members:
            sl = member.conn_sl
            gated = ws.tmp_bool_a[sl]
            if not gated.any():
                continue
            draws = ws.draws[sl]
            member.admission_rng.random(out=draws)
            probs = ws.tmp_conn_a[sl]
            probs.fill(transport.burst_escape_probability)
            np.copyto(probs, transport.burst_reentry_probability,
                      where=ever_paced[sl])
            failed = ws.tmp_bool_b[sl]
            np.greater_equal(draws, probs, out=failed)
            np.logical_and(gated, failed, out=failed)
            if failed.any():
                local_idx = np.flatnonzero(failed)
                mstate = member.sim.state
                mstate.windows.force_timeout(local_idx, ctx.now)
                ws.desired[sl][local_idx] = 0.0
                mstate.collapses_per_app += np.bincount(
                    mstate.conn_app[local_idx], minlength=mstate.n_apps
                )
                mstate.recorder.mark(
                    ctx.now, "incast", "burst-loss",
                    data={"count": int(local_idx.size)},
                )

    def _phase_window_dynamics(self, ctx: StepContext) -> None:
        state = self.state
        update = state.windows.update(
            now=ctx.now,
            dt=ctx.dt,
            requested=ctx.desired,
            admitted=ctx.admitted,
            rtt_eff=ctx.rtt_eff,
            oversubscribed=ctx.oversubscribed,
            loss_prone=ctx.loss_prone,
            collect_stats=False,
            rng_sites=self._rng_sites,
        )
        if update.n_collapsed:
            # Collapsed indices are ascending, so each member's share is one
            # contiguous run; split it per member for the local statistics.
            idx = update.collapsed_indices
            for member in self._members:
                sl = member.conn_sl
                a = int(np.searchsorted(idx, sl.start, side="left"))
                b = int(np.searchsorted(idx, sl.stop, side="left"))
                if b <= a:
                    continue
                mstate = member.sim.state
                local_idx = idx[a:b] - sl.start
                mstate.collapses_per_app += np.bincount(
                    mstate.conn_app[local_idx], minlength=mstate.n_apps
                )
                mstate.recorder.mark(
                    ctx.now, "incast", "window-collapse",
                    data={"count": int(b - a)},
                )

    def _phase_accounting(self, ctx: StepContext) -> None:
        state = self.state
        per_node = np.bincount(
            state.conn_node, weights=ctx.admitted, minlength=self._n_nodes
        )
        per_server = np.bincount(
            state.conn_server, weights=ctx.admitted, minlength=self._n_servers
        )
        state.topology.record_step_flat(per_node, per_server, ctx.dt)
        # Observed time and pressure-step counts are member-local and stop
        # advancing at member finish, exactly like a scalar run ending.
        for member in self._members:
            if member.live:
                member.sim.state.topology._observed_time += ctx.dt
                member.sim.state.buffers.note_step()
        np.divide(per_server, ctx.dt, out=state.last_admission_rate)

    def _phase_completion(self, sim: Optional[Simulator]) -> None:
        for member in self._members:
            if member.live:
                member.sim.stepper._handle_completions(member.engine)

    # -- the batched step ----------------------------------------------- #

    def step_batch(self, now: float, dt: float) -> None:
        """Advance every live member by ``dt`` at simulated time ``now``."""
        if dt <= 0:
            raise SimulationError("dt must be positive")
        self._refresh_dt(dt)
        ctx = self._ctx
        ctx.now = now
        ctx.dt = dt
        profiler = self.profiler
        if profiler is None:
            self._phase_workload_mix(ctx)
            self._phase_drain(ctx)
            self._phase_offer(ctx)
            self._phase_admission(ctx)
            self._phase_window_dynamics(ctx)
            self._phase_accounting(ctx)
            self._phase_completion(None)
            return
        with profiler.phase("workload_mix"):
            self._phase_workload_mix(ctx)
        with profiler.phase("drain"):
            self._phase_drain(ctx)
        with profiler.phase("offer"):
            self._phase_offer(ctx)
        with profiler.phase("admission"):
            self._phase_admission(ctx)
        with profiler.phase("window_dynamics"):
            self._phase_window_dynamics(ctx)
        with profiler.phase("accounting"):
            self._phase_accounting(ctx)
        with profiler.phase("completion"):
            self._phase_completion(None)


# ---------------------------------------------------------------------- #
# The lockstep driver
# ---------------------------------------------------------------------- #


class BatchSimulator:
    """Runs B same-shape scenarios in one fixed-dt lockstep loop.

    Build from *fresh* scenarios only: member state is re-pointed at the flat
    arrays right after construction, before any event runs.
    """

    def __init__(self, scenarios: Sequence[ScenarioConfig]) -> None:
        if not scenarios:
            raise SimulationError("a batch needs at least one scenario")
        sims = [IOPathSimulator(scenario) for scenario in scenarios]
        reference = sims[0]
        if any(sim.stepping.is_adaptive for sim in sims):
            raise SimulationError("adaptive stepping cannot run batched")
        self.dt = reference.step_size
        scenario = reference.scenario
        self._t0 = min(
            0.0, min(app.start_time for app in scenario.applications)
        )
        self._max_time = scenario.control.max_time
        transport = scenario.platform.network.transport
        for sim in sims:
            s = sim.scenario
            t0 = min(0.0, min(app.start_time for app in s.applications))
            if (
                sim.step_size != self.dt
                or t0 != self._t0
                or s.control.max_time != self._max_time
                or s.platform != scenario.platform
                or s.filesystem != scenario.filesystem
            ):
                raise SimulationError(
                    "batch members must share step size, start anchor and "
                    "platform/filesystem configuration"
                )

        # Lanes.
        members: List[_BatchMember] = []
        conn_off = srv_off = node_off = 0
        until = self._t0 + self._max_time
        horizon = self._t0 + self._max_time * 2 + 1.0
        for sim in sims:
            st = sim.state
            n_c = st.n_connections
            n_s = st.n_servers
            n_n = st.topology.n_client_nodes
            engine = Simulator(start_time=self._t0, horizon=horizon)
            members.append(
                _BatchMember(
                    sim=sim,
                    engine=engine,
                    conn_sl=slice(conn_off, conn_off + n_c),
                    srv_sl=slice(srv_off, srv_off + n_s),
                    node_sl=slice(node_off, node_off + n_n),
                    until=until,
                    admission_rng=sim.stepper._rng,
                )
            )
            conn_off += n_c
            srv_off += n_s
            node_off += n_n
        self.members = members

        # Flat index maps and facade state.
        conn_server = np.concatenate(
            [m.sim.state.conn_server + m.srv_sl.start for m in members]
        )
        conn_node = np.concatenate(
            [m.sim.state.conn_node + m.node_sl.start for m in members]
        )
        topology = _BatchedTopology(
            np.concatenate([m.sim.state.topology.node_capacities() for m in members]),
            np.concatenate([m.sim.state.topology.server_capacities() for m in members]),
        )
        deployment = _BatchedDeployment(members, srv_off)
        state = _BatchedState(members, topology, deployment, conn_server, conn_node)
        self.state = state
        self._repoint_members()
        self.stepper = BatchedStepper(state, members)
        self._schedule_control_plane()
        self.n_batch_steps = 0

    # ------------------------------------------------------------------ #

    def _repoint_members(self) -> None:
        """Point every member's hot arrays at its lanes of the flat state.

        Both sides are freshly constructed (identical initial values), so
        this changes storage, not state.  Member-local arrays — process
        bookkeeping, collapse statistics, pressure step counts, observed
        time — stay where they are.
        """
        state = self.state
        for member in self.members:
            st = member.sim.state
            for name in _WINDOW_ARRAYS:
                setattr(st.windows, name, getattr(state.windows, name)[member.conn_sl])
            for name in _BUFFER_SERVER_ARRAYS:
                setattr(st.buffers, name, getattr(state.buffers, name)[member.srv_sl])
            st.buffers.conn_bytes = state.buffers.conn_bytes[member.conn_sl]
            st.send_remaining = state.send_remaining[member.conn_sl]
            st.frag_size = state.frag_size[member.conn_sl]
            st.last_drain_rate = state.last_drain_rate[member.srv_sl]
            st.last_admission_rate = state.last_admission_rate[member.srv_sl]
            topo = st.topology
            topo._node_busy = state.topology.node_busy[member.node_sl]
            topo._node_transferred = state.topology.node_transferred[member.node_sl]
            topo._server_busy = state.topology.server_busy[member.srv_sl]
            topo._server_transferred = state.topology.server_transferred[member.srv_sl]

    def _schedule_control_plane(self) -> None:
        """Schedule each member's starts, step markers and trace sampling.

        The step marker is a periodic NORMAL event that merely stops the
        member's engine at every step boundary; it uses the same
        ``schedule_periodic`` arithmetic as the scalar driver's tick, so
        marker times match the scalar step times bitwise.
        """
        dt = self.dt
        t0 = self._t0
        for member in self.members:
            sim = member.sim
            engine = member.engine
            st = sim.state
            for app in st.applications:
                engine.schedule(
                    app.start_time,
                    sim._make_start_callback(app.index),
                    priority=EventPriority.CONTROL,
                    label=f"start.{app.name}",
                )
            engine.schedule_periodic(
                dt,
                _stop_for_batch_step,
                start=t0 + dt,
                priority=EventPriority.NORMAL,
                label="model.step",
                stop_when=_make_finished_probe(st),
            )
            if sim.recorder.config.records_series:
                sample_period = sim.scenario.control.trace.series_sample_period
                engine.schedule_periodic(
                    sample_period,
                    sim._sample,
                    start=t0 + sample_period,
                    priority=EventPriority.OBSERVE,
                    label="trace.sample",
                    stop_when=_make_finished_probe(st),
                )

    # ------------------------------------------------------------------ #

    def _advance_one_step(self) -> None:
        now: Optional[float] = None
        for member in self.members:
            if not member.live:
                continue
            member.engine.run(until=member.until)
            if member.engine.stop_reason != "batch-step":
                unfinished = [
                    rt.app.name
                    for rt in member.sim.state.app_runtime
                    if not rt.finished
                ]
                raise SimulationError(
                    f"simulation reached max_time={self._max_time}s with "
                    f"unfinished applications {unfinished}; check the "
                    "scenario configuration"
                )
            if now is None:
                now = member.engine.now
            elif member.engine.now != now:  # pragma: no cover - lockstep guard
                raise SimulationError("batch members fell out of lockstep")
        assert now is not None
        self.stepper.step_batch(now, self.dt)
        self.n_batch_steps += 1
        for member in self.members:
            if not member.live:
                continue
            member.n_steps += 1
            if member.sim.state.all_finished():
                member.live = False
                member.end_time = now

    def run(self) -> List[RunResult]:
        """Run every member to completion; results in member order."""
        wall_start = time.perf_counter()
        while any(member.live for member in self.members):
            self._advance_one_step()
        wall_time = time.perf_counter() - wall_start
        results = []
        for member in self.members:
            member.sim._n_steps = member.n_steps
            results.append(member.sim._build_result(member.end_time, wall_time))
        return results


def _stop_for_batch_step(sim: Simulator) -> None:
    sim.stop("batch-step")


def _make_finished_probe(state):
    def _finished(sim: Simulator) -> bool:
        return state.all_finished()

    return _finished


# ---------------------------------------------------------------------- #
# Front end
# ---------------------------------------------------------------------- #


def run_bucket(
    scenarios: Sequence[ScenarioConfig], shape: Optional[BucketShape] = None
) -> List[RunResult]:
    """Run one same-cadence group through the batched kernel, with telemetry.

    Emits the per-bucket ``simulation``-track span (with synthetic ``phase``
    child spans and ``step.phase.*`` counters from the kernel profiler, like
    a scalar run), the ``batch.buckets`` / ``batch.member_runs`` /
    ``batch.padded_slots`` / ``batch.group_slots`` counters, and the
    ``batch.occupancy`` observation — the single place that accounting
    lives, shared by :func:`simulate_many` and the executor-level batchers.
    Observational only: the batch kernel never reads the profiler, so
    results stay byte-identical with telemetry on or off.  ``shape`` is
    informational (span labelling); pool workers omit it.
    """
    from repro.perf.counters import StepProfiler

    telemetry = get_telemetry()
    if shape is None:
        shape = _shape_of(scenarios[0])
    n_servers = shape.n_servers if shape is not None else 0
    label = f"batch:b{len(scenarios)}x{n_servers}s"
    with telemetry.span(
        label,
        category="simulation",
        track="batch",
        members=len(scenarios),
        n_servers=n_servers,
    ) as bucket_span:
        batch = BatchSimulator(scenarios)
        profiler = None
        if telemetry.enabled and batch.stepper.profiler is None:
            profiler = StepProfiler()
            batch.stepper.profiler = profiler
        try:
            start_us = telemetry.now_us()
            results = batch.run()
        finally:
            if profiler is not None:
                batch.stepper.profiler = None
    if profiler is not None:
        cursor = start_us
        for phase, row in profiler.report().items():
            phase_us = row["ns"] / 1000.0
            telemetry.add_span(
                phase,
                "phase",
                cursor,
                phase_us,
                parent=bucket_span,
                track="batch",
                args={"calls": row["calls"],
                      "ns_per_call": round(row["ns_per_call"], 1),
                      "alloc_blocks": row["alloc_blocks"]},
            )
            cursor += phase_us
            telemetry.count(f"step.phase.{phase}.ns", row["ns"])
            telemetry.count(f"step.phase.{phase}.calls", row["calls"])
            telemetry.observe(f"step.phase.{phase}.ns_per_call", row["ns_per_call"])
    for member in batch.members:
        for name, value in member.engine.stats().items():
            telemetry.count(name, value)
    telemetry.count("batch.buckets")
    telemetry.count("batch.member_runs", len(scenarios))
    telemetry.observe("batch.occupancy", float(len(scenarios)))
    telemetry.count("batch.padded_slots", batch.state.buffers.padded_slots)
    telemetry.count("batch.group_slots", batch.state.buffers.group_slots)
    telemetry.count("sim.steps", sum(m.n_steps for m in batch.members))
    return results


def count_fallback(reason: str) -> None:
    """Record one scenario taking the scalar path instead of a bucket."""
    telemetry = get_telemetry()
    telemetry.count("batch.ragged_fallbacks")
    telemetry.count(f"batch.fallback.{reason}")


def simulate_many(
    scenarios: Sequence[ScenarioConfig], *, min_batch: int = 2
) -> List[RunResult]:
    """Simulate ``scenarios``, batching same-shape groups in lockstep.

    Results come back in input order and are bitwise identical to running
    each scenario through :func:`~repro.model.simulator.simulate_scenario`
    alone.  Adaptive/singleton scenarios take exactly that scalar path;
    ragged and mixed-width deployments batch (padded width classes).  Emits
    ``batch.*`` telemetry: one ``simulation``-track span plus an occupancy
    observation per bucket, and fallback counters.
    """
    scenarios = list(scenarios)
    buckets, fallback = plan_buckets(scenarios, min_batch=min_batch)
    results: List[Optional[RunResult]] = [None] * len(scenarios)
    for bucket in buckets:
        outs = run_bucket([scenarios[i] for i in bucket.indices], bucket.shape)
        for i, result in zip(bucket.indices, outs):
            results[i] = result
    for i, reason in fallback:
        count_fallback(reason)
        results[i] = simulate_scenario(scenarios[i])
    return results  # type: ignore[return-value]
