"""The per-step update of the I/O-path model: a phase-aware stepping kernel.

Each step of length ``dt`` runs six vectorized sub-phases, in order:

1. **Workload mix** — count active writers and average fragment sizes per
   server (they set the device interleaving penalty and the processing
   granularity).
2. **Drain** — every server moves data from its receive buffer to its
   backend at the rate allowed by its ingest path and backend, reduced when a
   large fraction of its connections sit in RTO stalls (service "bubbles").
3. **Offer** — every connection offers up to a congestion-window-limited
   number of bytes, further capped by its node's injection bandwidth.
4. **Admission** — the server buffers accept offered bytes into the space
   available; when oversubscribed, admission happens in a weighted random
   order in which established connections tend to win and newcomers may get
   nothing (the Incast race).
5. **Window dynamics** — AIMD plus timeout collapse per connection.
6. **Completion** — collective operations complete when every fragment of
   every process has been drained; the next operation is issued after the
   collective overhead, and applications record their phase end time.

Phase contract
--------------
The phases communicate exclusively through a :class:`StepContext` (the
intermediate arrays of the step) and the :class:`~repro.model.state.ModelState`
(the durable arrays).  Each phase method documents what it *reads* and what it
*writes*; a phase never mutates a context field owned by an earlier phase.
This makes the data flow of the hot path explicit and keeps the step
re-orderable only where the contract allows it.

Workspace ownership
-------------------
The intermediate arrays live in a preallocated :class:`StepWorkspace` owned by
the stepper, so a steady-state step performs no per-connection or per-server
array allocations (NumPy reductions like ``bincount`` that have no ``out=``
form still allocate their small outputs).  The ownership rules extend the
phase contract to memory:

* every *named* slot (``StepWorkspace.PHASE_SLOTS``) is written only by its
  owning phase and is read-only for every later phase of the same step;
* ``tmp_*`` scratch slots carry intra-phase intermediates only: any phase may
  clobber them, and no phase may read a ``tmp_`` slot it did not write during
  the same phase;
* :class:`StepContext` fields alias the named slots (``ctx.desired`` *is*
  ``workspace.desired``), so the context contract and the workspace contract
  are one and the same.

``tests/test_stepper_workspace.py`` asserts the first rule mechanically by
snapshotting owned slots after their phase and diffing after every later
phase.

Adaptive time advance
---------------------
:meth:`ModelStepper.next_bound` derives the largest safe ``dt`` from the
current rates: during *quiescent* intervals (no connection may send, buffers
empty) it returns the exact time to the next intrinsic state change (earliest
RTO expiry, earliest pending per-process operation issue) so the simulator can
collapse the whole dead interval into a single step; while *active* it bounds
the step to a ``tolerance`` fraction of the time to the next rate-regime
change (buffer fill/empty, collective completion, transport dynamics).  The
fixed policy never calls it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.model.state import ModelState
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority

__all__ = ["ModelStepper", "StepContext", "StepWorkspace"]

#: Safety margin (seconds) added to a quiescent jump so the landing step is
#: unambiguously at-or-after the state-changing instant despite float
#: round-off in ``now + bound``.
_LANDING_EPSILON = 1.0e-9


@dataclass
class StepContext:
    """The explicit state contract between the sub-phases of one model step.

    Fields are owned by (i.e. written exactly once in) the phase noted below
    and read-only afterwards.  ``None`` marks "not produced yet".  The array
    fields alias :class:`StepWorkspace` slots (except the admission outputs,
    which the buffers return); they are valid until the next step begins.
    """

    #: Step inputs (owned by :meth:`ModelStepper.step`).
    now: float
    dt: float

    #: Phase 1 — workload mix.
    busy: Optional[np.ndarray] = None          #: per-conn: has outstanding bytes
    n_streams: Optional[np.ndarray] = None     #: per-server active writers (>= 1)
    avg_frag: Optional[np.ndarray] = None      #: per-server mean fragment size

    #: Phase 2 — drain capacity.
    drain_rate: Optional[np.ndarray] = None    #: per-server drain bandwidth (B/s)

    #: Phase 3 — offered load.
    rtt_eff: Optional[np.ndarray] = None       #: per-conn effective RTT (s)
    desired: Optional[np.ndarray] = None       #: per-conn bytes offered this step
    loss_prone: Optional[np.ndarray] = None    #: per-conn: a throttle means loss

    #: Phase 4 — admission and drain.
    admitted: Optional[np.ndarray] = None      #: per-conn bytes admitted
    oversubscribed: Optional[np.ndarray] = None  #: per-conn: server oversubscribed


class StepWorkspace:
    """Preallocated per-connection/per-server scratch of the stepping kernel.

    One instance lives for the whole run; every step rewrites the slots in
    place, so the kernel allocates no per-connection or per-server arrays in
    steady state.  See the module docstring for the ownership rules; the
    mapping below is the machine-readable form the aliasing test consumes.
    """

    #: Named slots by owning phase.  The owner writes the slot; later phases
    #: only read it.
    PHASE_SLOTS = {
        "workload_mix": ("outstanding", "busy", "busy_f", "n_active",
                         "n_streams", "n_streams_f", "avg_frag"),
        "drain": ("sending", "drain_rate"),
        "offer": ("rtt_eff", "potential", "desired", "active", "loss_prone",
                  "draws"),
        "admission": (),
        "window_dynamics": (),
        "accounting": (),
    }

    #: Scratch slots: intra-phase intermediates, clobbered freely.
    SCRATCH_SLOTS = (
        "tmp_conn_a", "tmp_conn_b", "tmp_conn_c", "tmp_conn_d",
        "tmp_bool_a", "tmp_bool_b", "tmp_bool_c",
        "tmp_srv_a", "tmp_srv_b", "tmp_srv_bool",
        "tmp_node_a", "tmp_node_b", "tmp_node_mask",
    )

    def __init__(self, n_connections: int, n_servers: int, n_nodes: int) -> None:
        conn_f = lambda: np.zeros(n_connections, dtype=np.float64)  # noqa: E731
        conn_b = lambda: np.zeros(n_connections, dtype=bool)  # noqa: E731
        srv_f = lambda: np.zeros(n_servers, dtype=np.float64)  # noqa: E731
        node_f = lambda: np.zeros(n_nodes, dtype=np.float64)  # noqa: E731
        # Phase 1 — workload mix.
        self.outstanding = conn_f()
        self.busy = conn_b()
        self.busy_f = conn_f()
        self.n_active = srv_f()
        self.n_streams = np.ones(n_servers, dtype=np.int64)
        self.n_streams_f = srv_f()
        self.avg_frag = srv_f()
        # Phase 2 — drain capacity.
        self.sending = conn_b()
        self.drain_rate = srv_f()
        # Phase 3 — offered load.
        self.rtt_eff = conn_f()
        self.potential = conn_f()
        self.desired = conn_f()
        self.active = conn_b()
        self.loss_prone = conn_b()
        self.draws = conn_f()
        # Step-invariant constants.  Frozen so downstream identity-based
        # caches (the admission weights validation) stay sound.
        self.ones = np.ones(n_connections, dtype=np.float64)
        self.ones.flags.writeable = False
        # Scratch.
        self.tmp_conn_a = conn_f()
        self.tmp_conn_b = conn_f()
        self.tmp_conn_c = conn_f()
        self.tmp_conn_d = conn_f()
        self.tmp_bool_a = conn_b()
        self.tmp_bool_b = conn_b()
        self.tmp_bool_c = conn_b()
        self.tmp_srv_a = srv_f()
        self.tmp_srv_b = srv_f()
        self.tmp_srv_bool = np.zeros(n_servers, dtype=bool)
        self.tmp_node_a = node_f()
        self.tmp_node_b = node_f()
        self.tmp_node_mask = np.zeros(n_nodes, dtype=bool)

    def owned_slots(self, phase: str) -> dict:
        """Name -> array of the slots owned by ``phase``."""
        return {name: getattr(self, name) for name in self.PHASE_SLOTS[phase]}


class ModelStepper:
    """Advances a :class:`~repro.model.state.ModelState` one step at a time."""

    #: Phase order of one step (used by the profiler and the aliasing test).
    PHASES = ("workload_mix", "drain", "offer", "admission",
              "window_dynamics", "accounting", "completion")

    def __init__(self, state: ModelState) -> None:
        self.state = state
        self._rng = state.streams.stream("admission")
        network = state.scenario.platform.network
        self._transport = network.transport
        self._base_rtt = network.rtt
        self._node_caps = state.topology.node_capacities()
        self._server_nic = state.topology.server_capacities()
        self._client_line_rate = network.client_nic_bw
        self._completion_epsilon = 1.0  # bytes
        #: Reference step length for time-weighted pressure accounting.
        #: ``None`` (the default, and the fixed policy) counts every step
        #: with weight 1; the adaptive driver sets it to the base step so a
        #: collapsed quiescent interval still weighs as the steps it replaced.
        self.pressure_step_ref: Optional[float] = None
        #: Hook invoked by control-plane callbacks (operation issue) right
        #: before they mutate model state.  The adaptive driver uses it to
        #: catch the model up over a pending quiescent interval; ``None``
        #: (fixed policy) is a no-op.
        self.on_control_change: Optional[Callable[[Simulator], None]] = None
        #: Optional per-phase profiler (``repro.perf.counters.StepProfiler``
        #: or anything with a ``phase(name)`` context manager).  ``None``
        #: keeps the hot path branch-free apart from one identity check.
        self.profiler = None

        # ---------------- cached step invariants -------------------------
        # Everything below is constant for the lifetime of the run (or, for
        # the dt-scaled arrays, per distinct dt); computing them here keeps
        # them out of the per-step path.
        self.workspace = StepWorkspace(
            state.n_connections, state.n_servers, state.topology.n_client_nodes
        )
        self._n_servers = state.n_servers
        self._n_nodes = state.topology.n_client_nodes
        self._n_apps = state.n_apps
        self._stripe_size = state.scenario.filesystem.stripe_size
        #: rwnd_overcommit * buffer capacity (numerator of the per-server
        #: receive-window budget).
        self._rwnd_budget = self._transport.rwnd_overcommit * state.buffers.capacity
        self._send_floor = self._completion_epsilon * 1e-3
        self._wl_margin = 1.0 - 1e-6
        # dt-scaled capacities, refreshed only when dt changes (every step
        # under the fixed policy reuses them untouched).
        self._cached_dt: Optional[float] = None
        self._node_caps_dt = np.empty_like(self._node_caps)
        self._server_nic_dt = np.empty_like(self._server_nic)
        # Reused per-step objects: every context field is rewritten by its
        # owning phase each step, so recycling the container is safe.
        self._ctx = StepContext(now=0.0, dt=0.0)

    def _refresh_dt(self, dt: float) -> None:
        if dt != self._cached_dt:
            np.multiply(self._node_caps, dt, out=self._node_caps_dt)
            np.multiply(self._server_nic, dt, out=self._server_nic_dt)
            self._cached_dt = dt

    # ------------------------------------------------------------------ #
    # The step
    # ------------------------------------------------------------------ #

    def step(self, sim: Simulator, dt: float) -> None:
        """Advance the model by ``dt`` seconds at the current simulated time."""
        if dt <= 0:
            raise SimulationError("dt must be positive")
        self._refresh_dt(dt)
        ctx = self._ctx
        ctx.now = sim.now
        ctx.dt = dt
        profiler = self.profiler
        if profiler is None:
            self._phase_workload_mix(ctx)
            self._phase_drain(ctx)
            self._phase_offer(ctx)
            self._phase_admission(ctx)
            self._phase_window_dynamics(ctx)
            self._phase_accounting(ctx)
            self._phase_completion(sim)
            return
        with profiler.phase("workload_mix"):
            self._phase_workload_mix(ctx)
        with profiler.phase("drain"):
            self._phase_drain(ctx)
        with profiler.phase("offer"):
            self._phase_offer(ctx)
        with profiler.phase("admission"):
            self._phase_admission(ctx)
        with profiler.phase("window_dynamics"):
            self._phase_window_dynamics(ctx)
        with profiler.phase("accounting"):
            self._phase_accounting(ctx)
        with profiler.phase("completion"):
            self._phase_completion(sim)

    # ------------------------------------------------------------------ #
    # Phase 1 — workload mix
    # ------------------------------------------------------------------ #

    def _phase_workload_mix(self, ctx: StepContext) -> None:
        """Classify the offered workload.

        Reads:  ``state.send_remaining``, ``state.buffers.conn_bytes``,
                ``state.frag_size``.
        Writes: ``ctx.busy``, ``ctx.n_streams``, ``ctx.avg_frag`` (workspace
                slots ``outstanding``, ``busy``, ``busy_f``, ``n_streams``,
                ``n_streams_f``, ``avg_frag``).
        """
        state = self.state
        ws = self.workspace
        np.add(state.send_remaining, state.buffers.conn_bytes, out=ws.outstanding)
        np.greater(ws.outstanding, self._completion_epsilon, out=ws.busy)
        ws.busy_f[:] = ws.busy
        servers = state.conn_server
        # bincount with 0/1 float weights sums the same unit contributions a
        # boolean-mask bincount would (adding exact zeros is a no-op), so the
        # counts and fragment sums are bit-identical without the mask arrays.
        ws.n_active[:] = np.bincount(servers, weights=ws.busy_f, minlength=self._n_servers)
        np.multiply(state.frag_size, ws.busy_f, out=ws.tmp_conn_a)
        frag_sum = np.bincount(servers, weights=ws.tmp_conn_a, minlength=self._n_servers)
        np.maximum(ws.n_active, 1.0, out=ws.tmp_srv_a)
        np.divide(frag_sum, ws.tmp_srv_a, out=ws.avg_frag)
        # Idle servers: report a neutral granularity so the drain-rate law
        # does not divide by zero.
        np.less_equal(ws.avg_frag, 0.0, out=ws.tmp_srv_bool)
        np.copyto(ws.avg_frag, self._stripe_size, where=ws.tmp_srv_bool)
        ws.n_streams[:] = ws.tmp_srv_a
        ws.n_streams_f[:] = ws.n_streams
        ctx.busy = ws.busy
        ctx.n_streams = ws.n_streams
        ctx.avg_frag = ws.avg_frag

    # ------------------------------------------------------------------ #
    # Phase 2 — drain capacity
    # ------------------------------------------------------------------ #

    def _phase_drain(self, ctx: StepContext) -> None:
        """Compute every server's drain capacity for this step.

        Reads:  ``ctx.busy/n_streams/avg_frag``, ``state.windows`` stalls.
        Writes: ``ctx.drain_rate``, ``state.last_drain_rate`` (workspace
                slots ``sending``, ``drain_rate``).
        """
        state = self.state
        ws = self.workspace
        drain_nominal = state.deployment.drain_rates(ctx.n_streams, ctx.avg_frag)
        # Stalled fraction per server: busy connections sitting in an RTO.
        # The denominator is phase 1's busy count (``n_active``); an idle
        # server has a zero stalled count too, so 0 / max(0, 1) is already
        # the exact 0.0 a guarded where() would select.
        # (in-place twin of WindowState.sending_allowed — keep in sync)
        np.less_equal(state.windows.stall_until, ctx.now, out=ws.sending)
        np.logical_not(ws.sending, out=ws.tmp_bool_a)
        np.multiply(ws.busy_f, ws.tmp_bool_a, out=ws.tmp_conn_a)
        stalled_count = np.bincount(
            state.conn_server, weights=ws.tmp_conn_a, minlength=self._n_servers
        )
        np.maximum(ws.n_active, 1.0, out=ws.tmp_srv_a)
        np.divide(stalled_count, ws.tmp_srv_a, out=ws.tmp_srv_a)
        # penalty = clip(1 - collapse_penalty * stalled_fraction, 0, 1)
        np.multiply(ws.tmp_srv_a, self._transport.collapse_penalty, out=ws.tmp_srv_a)
        np.subtract(1.0, ws.tmp_srv_a, out=ws.tmp_srv_a)
        np.clip(ws.tmp_srv_a, 0.0, 1.0, out=ws.tmp_srv_a)
        np.multiply(drain_nominal, ws.tmp_srv_a, out=ws.drain_rate)
        np.maximum(ws.drain_rate, 1.0, out=state.last_drain_rate)
        ctx.drain_rate = ws.drain_rate

    # ------------------------------------------------------------------ #
    # Phase 3 — offered load
    # ------------------------------------------------------------------ #

    def _phase_offer(self, ctx: StepContext) -> None:
        """Window- and source-capped offered bytes, plus the Incast burst gate.

        Reads:  ``ctx.busy/n_streams/drain_rate``, window state, buffers.
        Writes: ``ctx.rtt_eff``, ``ctx.desired``, ``ctx.loss_prone``
                (workspace slots ``rtt_eff``, ``potential``, ``desired``,
                ``active``, ``loss_prone``, ``draws``); may collapse gated
                connections (``windows.force_timeout``) and consume RNG draws
                for the burst-escape gate.
        """
        state = self.state
        ws = self.workspace
        transport = self._transport
        dt = ctx.dt
        conn_server = state.conn_server
        conn_node = state.conn_node

        # Effective RTT: base RTT plus queueing delay at the server
        # (in-place twin of ServerBuffers.queueing_delay — keep in sync).
        np.maximum(state.last_drain_rate, 1e-9, out=ws.tmp_srv_a)
        np.divide(state.buffers.fill, ws.tmp_srv_a, out=ws.tmp_srv_a)
        ws.tmp_srv_a.take(conn_server, out=ws.rtt_eff)
        np.add(ws.rtt_eff, self._base_rtt, out=ws.rtt_eff)
        # Receiver-advertised window: the clients collectively probe a bit
        # beyond the server buffer (rwnd_overcommit), shared by the
        # connections of each server that are currently able to send.
        # Connections sitting out an RTO stall do not consume receive-window
        # credit, so the surviving (typically first-application) connections
        # inherit their share — this is what lets the incumbent keep
        # streaming while the newcomer's windows stay collapsed (Figure 11).
        np.multiply(ws.busy_f, ws.sending, out=ws.tmp_conn_a)
        n_ready = np.bincount(conn_server, weights=ws.tmp_conn_a, minlength=self._n_servers)
        np.maximum(n_ready, 1.0, out=ws.tmp_srv_a)
        np.divide(self._rwnd_budget, ws.tmp_srv_a, out=ws.tmp_srv_a)
        np.maximum(ws.tmp_srv_a, transport.window_min, out=ws.tmp_srv_a)
        ws.tmp_srv_a.take(conn_server, out=ws.tmp_conn_a)
        np.minimum(state.windows.cwnd, ws.tmp_conn_a, out=ws.tmp_conn_a)
        # potential = sending ? effective_window / max(rtt_eff, 1e-9) * dt : 0
        np.maximum(ws.rtt_eff, 1e-9, out=ws.tmp_conn_b)
        np.divide(ws.tmp_conn_a, ws.tmp_conn_b, out=ws.potential)
        np.multiply(ws.potential, dt, out=ws.potential)
        np.logical_not(ws.sending, out=ws.tmp_bool_a)
        np.copyto(ws.potential, 0.0, where=ws.tmp_bool_a)
        np.minimum(ws.potential, state.send_remaining, out=ws.desired)
        # Per-node injection cap (cap_by_group inlined onto the workspace).
        totals = np.bincount(conn_node, weights=ws.desired, minlength=self._n_nodes)
        np.maximum(totals, 1e-300, out=ws.tmp_node_a)
        np.greater(totals, self._node_caps_dt, out=ws.tmp_node_mask)
        # Dividing only the over-capacity lanes sidesteps the overflow that
        # near-zero totals would produce (long adaptive steps make
        # capacity * dt huge); the untouched lanes keep their factor of 1.
        ws.tmp_node_b.fill(1.0)
        np.divide(self._node_caps_dt, ws.tmp_node_a, out=ws.tmp_node_b,
                  where=ws.tmp_node_mask)
        np.clip(ws.tmp_node_b, 0.0, 1.0, out=ws.tmp_node_b)
        ws.tmp_node_b.take(conn_node, out=ws.tmp_conn_a)
        np.multiply(ws.desired, ws.tmp_conn_a, out=ws.desired)
        np.greater(ws.desired, 1e-9, out=ws.active)

        # A connection can suffer a timeout collapse ("Incast") only when
        # (a) it offered a full window as a burst, clearly below what its
        #     source NIC share would have allowed (window-limited),
        # (b) its server's buffer share per connection is down to a few MSS,
        # (c) its NIC can deliver the burst much faster than the connection's
        #     fair share of the server drain (an un-throttled source).
        active_per_node = np.bincount(conn_node, weights=ws.busy_f, minlength=self._n_nodes)
        active_per_node.take(conn_node, out=ws.tmp_conn_a)
        np.maximum(ws.tmp_conn_a, 1.0, out=ws.tmp_conn_a)  # shared denominator
        self._node_caps_dt.take(conn_node, out=ws.tmp_conn_b)
        np.divide(ws.tmp_conn_b, ws.tmp_conn_a, out=ws.tmp_conn_b)  # node share
        np.multiply(ws.potential, self._wl_margin, out=ws.tmp_conn_c)
        np.greater_equal(state.send_remaining, ws.tmp_conn_c, out=ws.tmp_bool_a)
        np.multiply(ws.tmp_conn_b, transport.source_margin, out=ws.tmp_conn_b)
        np.less_equal(ws.potential, ws.tmp_conn_b, out=ws.tmp_bool_b)
        np.logical_and(ws.active, ws.tmp_bool_a, out=ws.tmp_bool_a)
        np.logical_and(ws.tmp_bool_a, ws.tmp_bool_b, out=ws.tmp_bool_a)  # window-limited
        np.maximum(ws.n_streams_f, 1.0, out=ws.tmp_srv_a)
        np.divide(state.buffers.capacity, ws.tmp_srv_a, out=ws.tmp_srv_a)
        np.less(ws.tmp_srv_a, transport.incast_window_threshold, out=ws.tmp_srv_bool)
        np.divide(self._client_line_rate, ws.tmp_conn_a, out=ws.tmp_conn_c)  # line share
        ws.n_streams_f.take(conn_server, out=ws.tmp_conn_d)
        np.maximum(ws.tmp_conn_d, 1.0, out=ws.tmp_conn_d)
        state.last_drain_rate.take(conn_server, out=ws.tmp_conn_b)
        np.divide(ws.tmp_conn_b, ws.tmp_conn_d, out=ws.tmp_conn_b)  # drain share
        np.multiply(ws.tmp_conn_b, transport.burst_loss_ratio, out=ws.tmp_conn_b)
        np.greater_equal(ws.tmp_conn_c, ws.tmp_conn_b, out=ws.tmp_bool_b)  # bursty source
        ws.tmp_srv_bool.take(conn_server, out=ws.tmp_bool_c)
        np.logical_and(ws.tmp_bool_a, ws.tmp_bool_c, out=ws.loss_prone)
        np.logical_and(ws.loss_prone, ws.tmp_bool_b, out=ws.loss_prone)
        if transport.lossless:
            # Credit-based flow control: bursts wait for credits instead of
            # being dropped, so no connection is ever loss-prone and the
            # Incast machinery below never engages.
            ws.loss_prone[:] = False

        # Burst-escape gate: a connection without a running ACK clock can
        # only (re)enter an Incast-regime server if its whole-window burst
        # survives an already full buffer.  Failed attempts are immediate
        # timeouts — this is what pins the second application's windows near
        # zero while the first application keeps streaming (Figures 11/12).
        # (in-place twin of ServerBuffers.occupancy_fraction — keep in sync)
        np.divide(state.buffers.fill, state.buffers.capacity, out=ws.tmp_srv_a)
        np.clip(ws.tmp_srv_a, 0.0, 1.0, out=ws.tmp_srv_a)
        np.greater_equal(ws.tmp_srv_a, 0.9, out=ws.tmp_srv_bool)  # buffer full
        np.logical_not(state.windows.paced, out=ws.tmp_bool_a)
        np.logical_and(ws.loss_prone, ws.tmp_bool_a, out=ws.tmp_bool_a)
        np.logical_and(ws.tmp_bool_a, ws.active, out=ws.tmp_bool_a)
        ws.tmp_srv_bool.take(conn_server, out=ws.tmp_bool_b)
        np.logical_and(ws.tmp_bool_a, ws.tmp_bool_b, out=ws.tmp_bool_a)  # gated
        self._burst_escape_gate(ctx)

        ctx.rtt_eff = ws.rtt_eff
        ctx.desired = ws.desired
        ctx.loss_prone = ws.loss_prone

    def _burst_escape_gate(self, ctx: StepContext) -> None:
        """Resolve the burst-escape gate for the connections flagged in
        ``ws.tmp_bool_a`` (the gated mask computed by :meth:`_phase_offer`).

        Draws survival probabilities from the admission stream, collapses the
        failed connections (``windows.force_timeout``) and zeroes their
        offered bytes.  Overridable hook: the batched kernel replaces it with
        a per-member variant so every batch member consumes draws from its
        own admission stream.

        Reads:  ``ws.tmp_bool_a`` (gated mask), ``windows.ever_paced``.
        Writes: ``ws.draws``, ``ws.desired`` entries of failed connections,
                window/collapse state; clobbers ``tmp_conn_a``/``tmp_bool_b``.
        """
        state = self.state
        ws = self.workspace
        transport = self._transport
        if ws.tmp_bool_a.any():
            self._rng.random(out=ws.draws)
            ws.tmp_conn_a.fill(transport.burst_escape_probability)
            np.copyto(
                ws.tmp_conn_a,
                transport.burst_reentry_probability,
                where=state.windows.ever_paced,
            )
            np.greater_equal(ws.draws, ws.tmp_conn_a, out=ws.tmp_bool_b)
            np.logical_and(ws.tmp_bool_a, ws.tmp_bool_b, out=ws.tmp_bool_b)
            if ws.tmp_bool_b.any():
                failed_idx = np.flatnonzero(ws.tmp_bool_b)
                state.windows.force_timeout(failed_idx, ctx.now)
                ws.desired[failed_idx] = 0.0
                state.collapses_per_app += np.bincount(
                    state.conn_app[failed_idx], minlength=self._n_apps
                )
                state.recorder.mark(
                    ctx.now, "incast", "burst-loss", data={"count": int(failed_idx.size)}
                )

    # ------------------------------------------------------------------ #
    # Phase 4 — admission and drain
    # ------------------------------------------------------------------ #

    def _phase_admission(self, ctx: StepContext) -> None:
        """Admit offered bytes into the buffers, then drain to the backends.

        Admission may use the space freed by this step's drain
        (store-and-forward pipelining within one step).  Admission is
        proportional to the offered load; the Incast unfairness is carried by
        the burst-escape gate and the window dynamics.

        Reads:  ``ctx.desired/drain_rate/n_streams/avg_frag``.
        Writes: ``ctx.admitted``, ``ctx.oversubscribed``;
                ``state.send_remaining``, the server buffers, and the
                deployment's backend accounting.
        """
        state = self.state
        ws = self.workspace
        dt = ctx.dt
        np.multiply(ctx.drain_rate, dt, out=ws.tmp_srv_b)
        admitted, oversubscribed = state.buffers.admit(
            ctx.desired,
            ws.ones,
            extra_capacity=ws.tmp_srv_b,
            max_admission=self._server_nic_dt,
            rng=None,
        )
        state.send_remaining -= admitted
        np.less(state.send_remaining, self._send_floor, out=ws.tmp_bool_a)
        np.copyto(state.send_remaining, 0.0, where=ws.tmp_bool_a)

        drained_per_server, _drained_per_conn = state.buffers.drain(ws.tmp_srv_b)
        state.deployment.commit(drained_per_server, dt, ctx.n_streams, ctx.avg_frag)

        ctx.admitted = admitted
        ctx.oversubscribed = oversubscribed

    # ------------------------------------------------------------------ #
    # Phase 5 — window dynamics
    # ------------------------------------------------------------------ #

    def _phase_window_dynamics(self, ctx: StepContext) -> None:
        """AIMD plus timeout collapse per connection.

        Reads:  ``ctx.desired/admitted/rtt_eff/oversubscribed/loss_prone``.
        Writes: the transport window state; ``state.collapses_per_app``;
                may consume RNG draws for the paced-timeout hazard.
        """
        state = self.state
        update = state.windows.update(
            now=ctx.now,
            dt=ctx.dt,
            requested=ctx.desired,
            admitted=ctx.admitted,
            rtt_eff=ctx.rtt_eff,
            oversubscribed=ctx.oversubscribed,
            loss_prone=ctx.loss_prone,
            collect_stats=False,
        )
        if update.n_collapsed:
            collapsed_apps = np.bincount(
                state.conn_app[update.collapsed_indices], minlength=state.n_apps
            )
            state.collapses_per_app += collapsed_apps
            state.recorder.mark(
                ctx.now, "incast", "window-collapse", data={"count": int(update.n_collapsed)}
            )

    # ------------------------------------------------------------------ #
    # Phase 6a — physical-link and pressure accounting
    # ------------------------------------------------------------------ #

    def _phase_accounting(self, ctx: StepContext) -> None:
        """Attribute this step's traffic to links and record buffer pressure.

        Reads:  ``ctx.admitted/dt``.
        Writes: per-link utilization accounting, buffer-pressure statistics,
                ``state.last_admission_rate``.
        """
        state = self.state
        per_node = np.bincount(
            state.conn_node, weights=ctx.admitted, minlength=self._n_nodes
        )
        per_server = np.bincount(
            state.conn_server, weights=ctx.admitted, minlength=self._n_servers
        )
        state.topology.record_step(per_node, per_server, ctx.dt)
        if self.pressure_step_ref:
            state.buffers.note_step(weight=ctx.dt / self.pressure_step_ref)
        else:
            state.buffers.note_step()
        np.divide(per_server, ctx.dt, out=state.last_admission_rate)

    # ------------------------------------------------------------------ #
    # Phase 6b — operation / application completion
    # ------------------------------------------------------------------ #

    def _phase_completion(self, sim: Simulator) -> None:
        """Complete collective operations and advance per-process streams.

        Reads:  outstanding bytes per app/process.
        Writes: application runtime bookkeeping; schedules issue events.
        """
        self._handle_completions(sim)

    # ------------------------------------------------------------------ #
    # Adaptive time advance
    # ------------------------------------------------------------------ #

    def next_bound(self, now: float, base_dt: float, tolerance: float) -> float:
        """Largest safe ``dt`` for the *next* step, derived from current rates.

        Quiescent model (no connection may send — everything is stalled in
        RTO or idle — and the server buffers are empty): a step is a pure
        passage of time, so the bound is the exact distance to the next
        intrinsic state change — the earliest RTO expiry or the earliest
        pending per-process operation issue — plus a landing epsilon.
        Returns ``inf`` when no intrinsic change is pending (the next change
        can then only come from a scheduled control event, which the driver
        bounds separately).

        Active model: the bound is ``tolerance`` times the shortest of the
        rate-derived horizons — time to the next buffer fill or empty at the
        current net rates, time to the next collective completion at the
        current drain rates, the earliest RTO expiry, and (whenever transport
        dynamics are in play: stalled connections or half-full buffers) the
        RTO timescale itself — but never less than ``base_dt``.  With small
        tolerances the contended phases therefore run at exactly the fixed
        step, and only provably-smooth intervals stretch.
        """
        state = self.state
        eps = self._completion_epsilon
        outstanding = state.outstanding_per_connection()
        busy = outstanding > eps
        sending = state.windows.sending_allowed(now)
        buffered = float(state.buffers.fill.sum())
        stalls = state.windows.stall_until

        if not bool(np.any(busy & sending)) and buffered <= eps:
            candidates = []
            if np.any(busy):
                pending = stalls[busy]
                pending = pending[np.isfinite(pending) & (pending > now)]
                if pending.size:
                    candidates.append(float(pending.min()) - now)
            issue_wait = self._next_issue_wait(now)
            if issue_wait is not None:
                candidates.append(issue_wait)
            if not candidates:
                return float("inf")
            return max(min(candidates), 0.0) + _LANDING_EPSILON

        horizons = []
        # Transport dynamics in play: never outrun the RTO timescale.
        if bool(np.any(busy & ~sending)) or bool(
            np.any(state.buffers.occupancy_fraction() >= 0.5)
        ):
            horizons.append(self._transport.rto)
        # Buffer fill / empty at the current net rates.
        drain = np.maximum(state.last_drain_rate, 1.0)
        net = state.last_admission_rate - drain
        free = state.buffers.free_space()
        filling = net > 1.0
        if np.any(filling):
            horizons.append(float(np.min(free[filling] / net[filling])))
        emptying = (net < -1.0) & (state.buffers.fill > eps)
        if np.any(emptying):
            horizons.append(float(np.min(state.buffers.fill[emptying] / -net[emptying])))
        # Next collective completion at the current drain rates.
        per_server_out = np.bincount(
            state.conn_server, weights=outstanding, minlength=state.n_servers
        )
        draining = per_server_out > eps
        if np.any(draining):
            horizons.append(float(np.min(per_server_out[draining] / drain[draining])))
        # Earliest RTO expiry.
        pending = stalls[busy & (stalls > now)] if np.any(busy) else stalls[:0]
        pending = pending[np.isfinite(pending)]
        if pending.size:
            horizons.append(float(pending.min()) - now)
        if not horizons:
            return base_dt
        return max(base_dt, tolerance * min(horizons))

    def _next_issue_wait(self, now: float) -> Optional[float]:
        """Time until the earliest pending per-process operation issue.

        Only the non-collective mode tracks issue instants as state
        (``proc_next_issue``); collective issues are engine events and are
        bounded by the driver.  Returns ``None`` when no process is waiting.
        """
        state = self.state
        waits = []
        per_proc_outstanding: Optional[np.ndarray] = None
        for runtime in state.app_runtime:
            app = runtime.app
            if not runtime.started or runtime.finished or runtime.waiting_issue:
                continue
            if app.spec.pattern.collective:
                continue
            if per_proc_outstanding is None:
                per_proc_outstanding = state.outstanding_per_process()
            ids = state.app_proc_ids[app.index]
            idle = per_proc_outstanding[ids] <= self._completion_epsilon
            more_ops = (state.proc_current_op[ids] + 1) < app.n_operations
            pending = state.proc_next_issue[ids][idle & more_ops]
            pending = pending[pending > now]
            if pending.size:
                waits.append(float(pending.min()) - now)
        if not waits:
            return None
        return max(min(waits), 0.0)

    # ------------------------------------------------------------------ #
    # Completion handling
    # ------------------------------------------------------------------ #

    def _handle_completions(self, sim: Simulator) -> None:
        state = self.state
        now = sim.now
        outstanding_app: Optional[np.ndarray] = None
        per_proc_outstanding: Optional[np.ndarray] = None

        for runtime in state.app_runtime:
            app = runtime.app
            if not runtime.started or runtime.finished or runtime.waiting_issue:
                continue
            pattern = app.spec.pattern
            if pattern.collective:
                if outstanding_app is None:
                    outstanding_app = state.outstanding_per_app()
                if outstanding_app[app.index] > self._completion_epsilon:
                    continue
                if runtime.current_op < 0:
                    continue
                runtime.ops_completed = runtime.current_op + 1
                if runtime.ops_completed >= app.n_operations:
                    self._finish_app(runtime, now)
                else:
                    runtime.waiting_issue = True
                    next_op = runtime.current_op + 1
                    delay = pattern.collective_overhead
                    sim.schedule_after(
                        delay,
                        self._make_issue_callback(app.index, next_op),
                        priority=EventPriority.CONTROL,
                        label=f"issue.{app.name}.op{next_op}",
                    )
            else:
                if per_proc_outstanding is None:
                    per_proc_outstanding = state.outstanding_per_process()
                self._advance_independent(runtime, per_proc_outstanding, now)

    def _advance_independent(
        self, runtime, per_proc_outstanding: np.ndarray, now: float
    ) -> None:
        """Advance per-process (non-collective) operations of one application.

        The idle/ready/finished classification is one set of grouped
        vectorized reductions over the application's (precomputed) process
        index block; only the processes that actually issue fall back to the
        per-process striping arithmetic.
        """
        state = self.state
        app = runtime.app
        ids = state.app_proc_ids[app.index]
        pattern = app.spec.pattern
        idle = per_proc_outstanding[ids] <= self._completion_epsilon
        current = state.proc_current_op[ids]
        exhausted = (current + 1) >= app.n_operations
        ready = idle & ~exhausted & (state.proc_next_issue[ids] <= now)
        if ready.any():
            overhead = pattern.collective_overhead
            for proc, op in zip(ids[ready], current[ready]):
                proc = int(proc)
                state.issue_process_operation(proc, int(op) + 1)
                state.proc_next_issue[proc] = now + overhead
        if int(np.count_nonzero(idle & exhausted)) == ids.shape[0]:
            self._finish_app(runtime, now)

    def _finish_app(self, runtime, now: float) -> None:
        runtime.finished = True
        runtime.end_time = now
        runtime.completed_bytes = runtime.issued_bytes
        self.state.recorder.mark(now, "phase", f"{runtime.app.name}.end")

    def _make_issue_callback(self, app_index: int, op_index: int):
        def _issue(sim: Simulator) -> None:
            state = self.state
            app = state.applications[app_index]
            runtime = state.app_runtime[app_index]
            if runtime.finished:
                return
            if self.on_control_change is not None:
                self.on_control_change(sim)
            state.issue_operation(app, op_index)
            state.recorder.mark(sim.now, "op", f"{app.name}.op{op_index}")

        return _issue

    # ------------------------------------------------------------------ #
    # Application start
    # ------------------------------------------------------------------ #

    def start_application(self, sim: Simulator, app_index: int) -> None:
        """Begin the I/O phase of one application (issue its first operation)."""
        state = self.state
        app = state.applications[app_index]
        runtime = state.app_runtime[app_index]
        if runtime.started:
            raise SimulationError(f"application {app.name!r} started twice")
        if self.on_control_change is not None:
            self.on_control_change(sim)
        runtime.started = True
        runtime.actual_start_time = sim.now
        state.recorder.mark(sim.now, "phase", f"{app.name}.start")
        if app.spec.pattern.collective:
            state.issue_operation(app, 0)
        else:
            for proc in state.app_proc_ids[app_index]:
                state.issue_process_operation(int(proc), 0)
                state.proc_next_issue[int(proc)] = sim.now
