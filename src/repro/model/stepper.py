"""The per-step update of the I/O-path model: a phase-aware stepping kernel.

Each step of length ``dt`` runs six vectorized sub-phases, in order:

1. **Workload mix** — count active writers and average fragment sizes per
   server (they set the device interleaving penalty and the processing
   granularity).
2. **Drain** — every server moves data from its receive buffer to its
   backend at the rate allowed by its ingest path and backend, reduced when a
   large fraction of its connections sit in RTO stalls (service "bubbles").
3. **Offer** — every connection offers up to a congestion-window-limited
   number of bytes, further capped by its node's injection bandwidth.
4. **Admission** — the server buffers accept offered bytes into the space
   available; when oversubscribed, admission happens in a weighted random
   order in which established connections tend to win and newcomers may get
   nothing (the Incast race).
5. **Window dynamics** — AIMD plus timeout collapse per connection.
6. **Completion** — collective operations complete when every fragment of
   every process has been drained; the next operation is issued after the
   collective overhead, and applications record their phase end time.

Phase contract
--------------
The phases communicate exclusively through a :class:`StepContext` (the
intermediate arrays of the step) and the :class:`~repro.model.state.ModelState`
(the durable arrays).  Each phase method documents what it *reads* and what it
*writes*; a phase never mutates a context field owned by an earlier phase.
This makes the data flow of the hot path explicit and keeps the step
re-orderable only where the contract allows it.

Adaptive time advance
---------------------
:meth:`ModelStepper.next_bound` derives the largest safe ``dt`` from the
current rates: during *quiescent* intervals (no connection may send, buffers
empty) it returns the exact time to the next intrinsic state change (earliest
RTO expiry, earliest pending per-process operation issue) so the simulator can
collapse the whole dead interval into a single step; while *active* it bounds
the step to a ``tolerance`` fraction of the time to the next rate-regime
change (buffer fill/empty, collective completion, transport dynamics).  The
fixed policy never calls it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.model.state import ModelState
from repro.network.allocation import cap_by_group
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority

__all__ = ["ModelStepper", "StepContext"]

#: Safety margin (seconds) added to a quiescent jump so the landing step is
#: unambiguously at-or-after the state-changing instant despite float
#: round-off in ``now + bound``.
_LANDING_EPSILON = 1.0e-9


@dataclass
class StepContext:
    """The explicit state contract between the sub-phases of one model step.

    Fields are owned by (i.e. written exactly once in) the phase noted below
    and read-only afterwards.  ``None`` marks "not produced yet".
    """

    #: Step inputs (owned by :meth:`ModelStepper.step`).
    now: float
    dt: float

    #: Phase 1 — workload mix.
    busy: Optional[np.ndarray] = None          #: per-conn: has outstanding bytes
    n_streams: Optional[np.ndarray] = None     #: per-server active writers (>= 1)
    avg_frag: Optional[np.ndarray] = None      #: per-server mean fragment size

    #: Phase 2 — drain capacity.
    drain_rate: Optional[np.ndarray] = None    #: per-server drain bandwidth (B/s)

    #: Phase 3 — offered load.
    rtt_eff: Optional[np.ndarray] = None       #: per-conn effective RTT (s)
    desired: Optional[np.ndarray] = None       #: per-conn bytes offered this step
    loss_prone: Optional[np.ndarray] = None    #: per-conn: a throttle means loss

    #: Phase 4 — admission and drain.
    admitted: Optional[np.ndarray] = None      #: per-conn bytes admitted
    oversubscribed: Optional[np.ndarray] = None  #: per-conn: server oversubscribed


class ModelStepper:
    """Advances a :class:`~repro.model.state.ModelState` one step at a time."""

    def __init__(self, state: ModelState) -> None:
        self.state = state
        self._rng = state.streams.stream("admission")
        network = state.scenario.platform.network
        self._transport = network.transport
        self._base_rtt = network.rtt
        self._node_caps = state.topology.node_capacities()
        self._server_nic = state.topology.server_capacities()
        self._client_line_rate = network.client_nic_bw
        self._completion_epsilon = 1.0  # bytes
        #: Reference step length for time-weighted pressure accounting.
        #: ``None`` (the default, and the fixed policy) counts every step
        #: with weight 1; the adaptive driver sets it to the base step so a
        #: collapsed quiescent interval still weighs as the steps it replaced.
        self.pressure_step_ref: Optional[float] = None
        #: Hook invoked by control-plane callbacks (operation issue) right
        #: before they mutate model state.  The adaptive driver uses it to
        #: catch the model up over a pending quiescent interval; ``None``
        #: (fixed policy) is a no-op.
        self.on_control_change: Optional[Callable[[Simulator], None]] = None

    # ------------------------------------------------------------------ #
    # Aggregate helpers
    # ------------------------------------------------------------------ #

    def _workload_mix(self):
        """Per-server active-writer counts and mean fragment sizes."""
        state = self.state
        busy = state.outstanding_per_connection() > self._completion_epsilon
        servers = state.conn_server
        n_active = np.bincount(servers[busy], minlength=state.n_servers).astype(np.float64)
        frag_sum = np.bincount(
            servers[busy], weights=state.frag_size[busy], minlength=state.n_servers
        )
        with np.errstate(invalid="ignore"):
            avg_frag = np.where(n_active > 0, frag_sum / np.maximum(n_active, 1.0), 0.0)
        # Idle servers: report a neutral granularity so the drain-rate law
        # does not divide by zero.
        avg_frag[avg_frag <= 0] = state.scenario.filesystem.stripe_size
        return busy, np.maximum(n_active, 1.0).astype(np.int64), avg_frag

    def _stalled_fraction_per_server(self, now: float, busy: np.ndarray) -> np.ndarray:
        state = self.state
        stalled = ~state.windows.sending_allowed(now)
        relevant = busy
        total = np.bincount(state.conn_server[relevant], minlength=state.n_servers)
        stalled_count = np.bincount(
            state.conn_server[relevant & stalled], minlength=state.n_servers
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = np.where(total > 0, stalled_count / np.maximum(total, 1), 0.0)
        return fraction

    # ------------------------------------------------------------------ #
    # The step
    # ------------------------------------------------------------------ #

    def step(self, sim: Simulator, dt: float) -> None:
        """Advance the model by ``dt`` seconds at the current simulated time."""
        if dt <= 0:
            raise SimulationError("dt must be positive")
        ctx = StepContext(now=sim.now, dt=dt)
        self._phase_workload_mix(ctx)
        self._phase_drain(ctx)
        self._phase_offer(ctx)
        self._phase_admission(ctx)
        self._phase_window_dynamics(ctx)
        self._phase_accounting(ctx)
        self._phase_completion(sim)

    # ------------------------------------------------------------------ #
    # Phase 1 — workload mix
    # ------------------------------------------------------------------ #

    def _phase_workload_mix(self, ctx: StepContext) -> None:
        """Classify the offered workload.

        Reads:  ``state.send_remaining``, ``state.buffers.conn_bytes``,
                ``state.frag_size``.
        Writes: ``ctx.busy``, ``ctx.n_streams``, ``ctx.avg_frag``.
        """
        ctx.busy, ctx.n_streams, ctx.avg_frag = self._workload_mix()

    # ------------------------------------------------------------------ #
    # Phase 2 — drain capacity
    # ------------------------------------------------------------------ #

    def _phase_drain(self, ctx: StepContext) -> None:
        """Compute every server's drain capacity for this step.

        Reads:  ``ctx.busy/n_streams/avg_frag``, ``state.windows`` stalls.
        Writes: ``ctx.drain_rate``, ``state.last_drain_rate``.
        """
        state = self.state
        drain_nominal = state.deployment.drain_rates(ctx.n_streams, ctx.avg_frag)
        stalled_fraction = self._stalled_fraction_per_server(ctx.now, ctx.busy)
        penalty = 1.0 - self._transport.collapse_penalty * stalled_fraction
        ctx.drain_rate = drain_nominal * np.clip(penalty, 0.0, 1.0)
        state.last_drain_rate = np.maximum(ctx.drain_rate, 1.0)

    # ------------------------------------------------------------------ #
    # Phase 3 — offered load
    # ------------------------------------------------------------------ #

    def _phase_offer(self, ctx: StepContext) -> None:
        """Window- and source-capped offered bytes, plus the Incast burst gate.

        Reads:  ``ctx.busy/n_streams/drain_rate``, window state, buffers.
        Writes: ``ctx.rtt_eff``, ``ctx.desired``, ``ctx.loss_prone``; may
                collapse gated connections (``windows.force_timeout``) and
                consume RNG draws for the burst-escape gate.
        """
        state = self.state
        now, dt = ctx.now, ctx.dt
        busy, n_streams = ctx.busy, ctx.n_streams

        queue_delay = state.buffers.queueing_delay(state.last_drain_rate)
        rtt_eff = self._base_rtt + queue_delay[state.conn_server]
        # Receiver-advertised window: the clients collectively probe a bit
        # beyond the server buffer (rwnd_overcommit), shared by the
        # connections of each server that are currently able to send.
        # Connections sitting out an RTO stall do not consume receive-window
        # credit, so the surviving (typically first-application) connections
        # inherit their share — this is what lets the incumbent keep
        # streaming while the newcomer's windows stay collapsed (Figure 11).
        sending_allowed = state.windows.sending_allowed(now)
        n_ready = np.bincount(
            state.conn_server[busy & sending_allowed], minlength=state.n_servers
        ).astype(np.float64)
        rwnd_per_server = np.maximum(
            self._transport.rwnd_overcommit
            * state.buffers.capacity
            / np.maximum(n_ready, 1.0),
            self._transport.window_min,
        )
        effective_window = np.minimum(state.windows.cwnd, rwnd_per_server[state.conn_server])
        potential = np.where(sending_allowed, effective_window / np.maximum(rtt_eff, 1e-9) * dt, 0.0)
        desire_data = np.minimum(potential, state.send_remaining)
        desired = cap_by_group(desire_data, state.conn_node, self._node_caps * dt)
        active = desired > 1e-9

        # A connection can suffer a timeout collapse ("Incast") only when
        # (a) it offered a full window as a burst, clearly below what its
        #     source NIC share would have allowed (window-limited),
        # (b) its server's buffer share per connection is down to a few MSS,
        # (c) its NIC can deliver the burst much faster than the connection's
        #     fair share of the server drain (an un-throttled source).
        active_per_node = np.bincount(
            state.conn_node[busy], minlength=state.topology.n_client_nodes
        ).astype(np.float64)
        node_share = (self._node_caps * dt)[state.conn_node] / np.maximum(
            active_per_node[state.conn_node], 1.0
        )
        window_limited = (
            active
            & (state.send_remaining >= potential * (1.0 - 1e-6))
            & (potential <= self._transport.source_margin * node_share)
        )
        incast_regime = (
            state.buffers.capacity / np.maximum(n_streams.astype(np.float64), 1.0)
        ) < self._transport.incast_window_threshold
        line_rate_share = self._client_line_rate / np.maximum(
            active_per_node[state.conn_node], 1.0
        )
        drain_share = state.last_drain_rate[state.conn_server] / np.maximum(
            n_streams[state.conn_server].astype(np.float64), 1.0
        )
        bursty_source = line_rate_share >= self._transport.burst_loss_ratio * drain_share
        loss_prone = window_limited & incast_regime[state.conn_server] & bursty_source
        if self._transport.lossless:
            # Credit-based flow control: bursts wait for credits instead of
            # being dropped, so no connection is ever loss-prone and the
            # Incast machinery below never engages.
            loss_prone[:] = False

        # Burst-escape gate: a connection without a running ACK clock can
        # only (re)enter an Incast-regime server if its whole-window burst
        # survives an already full buffer.  Failed attempts are immediate
        # timeouts — this is what pins the second application's windows near
        # zero while the first application keeps streaming (Figures 11/12).
        buffer_full = state.buffers.occupancy_fraction() >= 0.9
        gated = loss_prone & ~state.windows.paced & active & buffer_full[state.conn_server]
        if np.any(gated):
            draws = self._rng.random(state.n_connections)
            escape_p = np.where(
                state.windows.ever_paced,
                self._transport.burst_reentry_probability,
                self._transport.burst_escape_probability,
            )
            failed = gated & (draws >= escape_p)
            if np.any(failed):
                failed_idx = np.flatnonzero(failed)
                state.windows.force_timeout(failed_idx, now)
                desired[failed_idx] = 0.0
                state.collapses_per_app += np.bincount(
                    state.conn_app[failed_idx], minlength=state.n_apps
                )
                state.recorder.mark(
                    now, "incast", "burst-loss", data={"count": int(failed_idx.size)}
                )

        ctx.rtt_eff = rtt_eff
        ctx.desired = desired
        ctx.loss_prone = loss_prone

    # ------------------------------------------------------------------ #
    # Phase 4 — admission and drain
    # ------------------------------------------------------------------ #

    def _phase_admission(self, ctx: StepContext) -> None:
        """Admit offered bytes into the buffers, then drain to the backends.

        Admission may use the space freed by this step's drain
        (store-and-forward pipelining within one step).  Admission is
        proportional to the offered load; the Incast unfairness is carried by
        the burst-escape gate and the window dynamics.

        Reads:  ``ctx.desired/drain_rate/n_streams/avg_frag``.
        Writes: ``ctx.admitted``, ``ctx.oversubscribed``;
                ``state.send_remaining``, the server buffers, and the
                deployment's backend accounting.
        """
        state = self.state
        dt = ctx.dt
        weights = np.ones(state.n_connections, dtype=np.float64)
        admitted, oversubscribed = state.buffers.admit(
            ctx.desired,
            weights,
            extra_capacity=ctx.drain_rate * dt,
            max_admission=self._server_nic * dt,
            rng=None,
        )
        state.send_remaining -= admitted
        state.send_remaining[state.send_remaining < self._completion_epsilon * 1e-3] = 0.0

        drained_per_server, _drained_per_conn = state.buffers.drain(ctx.drain_rate * dt)
        state.deployment.commit(drained_per_server, dt, ctx.n_streams, ctx.avg_frag)

        ctx.admitted = admitted
        ctx.oversubscribed = oversubscribed

    # ------------------------------------------------------------------ #
    # Phase 5 — window dynamics
    # ------------------------------------------------------------------ #

    def _phase_window_dynamics(self, ctx: StepContext) -> None:
        """AIMD plus timeout collapse per connection.

        Reads:  ``ctx.desired/admitted/rtt_eff/oversubscribed/loss_prone``.
        Writes: the transport window state; ``state.collapses_per_app``;
                may consume RNG draws for the paced-timeout hazard.
        """
        state = self.state
        update = state.windows.update(
            now=ctx.now,
            dt=ctx.dt,
            requested=ctx.desired,
            admitted=ctx.admitted,
            rtt_eff=ctx.rtt_eff,
            oversubscribed=ctx.oversubscribed,
            loss_prone=ctx.loss_prone,
        )
        if update.n_collapsed:
            collapsed_apps = np.bincount(
                state.conn_app[update.collapsed_indices], minlength=state.n_apps
            )
            state.collapses_per_app += collapsed_apps
            state.recorder.mark(
                ctx.now, "incast", "window-collapse", data={"count": int(update.n_collapsed)}
            )

    # ------------------------------------------------------------------ #
    # Phase 6a — physical-link and pressure accounting
    # ------------------------------------------------------------------ #

    def _phase_accounting(self, ctx: StepContext) -> None:
        """Attribute this step's traffic to links and record buffer pressure.

        Reads:  ``ctx.admitted/dt``.
        Writes: per-link utilization accounting, buffer-pressure statistics,
                ``state.last_admission_rate``.
        """
        state = self.state
        per_node = np.bincount(
            state.conn_node, weights=ctx.admitted, minlength=state.topology.n_client_nodes
        )
        per_server = np.bincount(
            state.conn_server, weights=ctx.admitted, minlength=state.n_servers
        )
        state.topology.record_step(per_node, per_server, ctx.dt)
        if self.pressure_step_ref:
            state.buffers.note_step(weight=ctx.dt / self.pressure_step_ref)
        else:
            state.buffers.note_step()
        state.last_admission_rate = per_server / ctx.dt

    # ------------------------------------------------------------------ #
    # Phase 6b — operation / application completion
    # ------------------------------------------------------------------ #

    def _phase_completion(self, sim: Simulator) -> None:
        """Complete collective operations and advance per-process streams.

        Reads:  outstanding bytes per app/process.
        Writes: application runtime bookkeeping; schedules issue events.
        """
        self._handle_completions(sim)

    # ------------------------------------------------------------------ #
    # Adaptive time advance
    # ------------------------------------------------------------------ #

    def next_bound(self, now: float, base_dt: float, tolerance: float) -> float:
        """Largest safe ``dt`` for the *next* step, derived from current rates.

        Quiescent model (no connection may send — everything is stalled in
        RTO or idle — and the server buffers are empty): a step is a pure
        passage of time, so the bound is the exact distance to the next
        intrinsic state change — the earliest RTO expiry or the earliest
        pending per-process operation issue — plus a landing epsilon.
        Returns ``inf`` when no intrinsic change is pending (the next change
        can then only come from a scheduled control event, which the driver
        bounds separately).

        Active model: the bound is ``tolerance`` times the shortest of the
        rate-derived horizons — time to the next buffer fill or empty at the
        current net rates, time to the next collective completion at the
        current drain rates, the earliest RTO expiry, and (whenever transport
        dynamics are in play: stalled connections or half-full buffers) the
        RTO timescale itself — but never less than ``base_dt``.  With small
        tolerances the contended phases therefore run at exactly the fixed
        step, and only provably-smooth intervals stretch.
        """
        state = self.state
        eps = self._completion_epsilon
        outstanding = state.outstanding_per_connection()
        busy = outstanding > eps
        sending = state.windows.sending_allowed(now)
        buffered = float(state.buffers.fill.sum())
        stalls = state.windows.stall_until

        if not bool(np.any(busy & sending)) and buffered <= eps:
            candidates = []
            if np.any(busy):
                pending = stalls[busy]
                pending = pending[np.isfinite(pending) & (pending > now)]
                if pending.size:
                    candidates.append(float(pending.min()) - now)
            issue_wait = self._next_issue_wait(now)
            if issue_wait is not None:
                candidates.append(issue_wait)
            if not candidates:
                return float("inf")
            return max(min(candidates), 0.0) + _LANDING_EPSILON

        horizons = []
        # Transport dynamics in play: never outrun the RTO timescale.
        if bool(np.any(busy & ~sending)) or bool(
            np.any(state.buffers.occupancy_fraction() >= 0.5)
        ):
            horizons.append(self._transport.rto)
        # Buffer fill / empty at the current net rates.
        drain = np.maximum(state.last_drain_rate, 1.0)
        net = state.last_admission_rate - drain
        free = state.buffers.free_space()
        filling = net > 1.0
        if np.any(filling):
            horizons.append(float(np.min(free[filling] / net[filling])))
        emptying = (net < -1.0) & (state.buffers.fill > eps)
        if np.any(emptying):
            horizons.append(float(np.min(state.buffers.fill[emptying] / -net[emptying])))
        # Next collective completion at the current drain rates.
        per_server_out = np.bincount(
            state.conn_server, weights=outstanding, minlength=state.n_servers
        )
        draining = per_server_out > eps
        if np.any(draining):
            horizons.append(float(np.min(per_server_out[draining] / drain[draining])))
        # Earliest RTO expiry.
        pending = stalls[busy & (stalls > now)] if np.any(busy) else stalls[:0]
        pending = pending[np.isfinite(pending)]
        if pending.size:
            horizons.append(float(pending.min()) - now)
        if not horizons:
            return base_dt
        return max(base_dt, tolerance * min(horizons))

    def _next_issue_wait(self, now: float) -> Optional[float]:
        """Time until the earliest pending per-process operation issue.

        Only the non-collective mode tracks issue instants as state
        (``proc_next_issue``); collective issues are engine events and are
        bounded by the driver.  Returns ``None`` when no process is waiting.
        """
        state = self.state
        waits = []
        per_proc_outstanding: Optional[np.ndarray] = None
        for runtime in state.app_runtime:
            app = runtime.app
            if not runtime.started or runtime.finished or runtime.waiting_issue:
                continue
            if app.spec.pattern.collective:
                continue
            if per_proc_outstanding is None:
                per_proc_outstanding = state.outstanding_per_process()
            ids = app.proc_ids()
            idle = per_proc_outstanding[ids] <= self._completion_epsilon
            more_ops = (state.proc_current_op[ids] + 1) < app.n_operations
            pending = state.proc_next_issue[ids][idle & more_ops]
            pending = pending[pending > now]
            if pending.size:
                waits.append(float(pending.min()) - now)
        if not waits:
            return None
        return max(min(waits), 0.0)

    # ------------------------------------------------------------------ #
    # Completion handling
    # ------------------------------------------------------------------ #

    def _handle_completions(self, sim: Simulator) -> None:
        state = self.state
        now = sim.now
        outstanding_app = state.outstanding_per_app()
        per_proc_outstanding: Optional[np.ndarray] = None

        for runtime in state.app_runtime:
            app = runtime.app
            if not runtime.started or runtime.finished or runtime.waiting_issue:
                continue
            pattern = app.spec.pattern
            if pattern.collective:
                if outstanding_app[app.index] > self._completion_epsilon:
                    continue
                if runtime.current_op < 0:
                    continue
                runtime.ops_completed = runtime.current_op + 1
                if runtime.ops_completed >= app.n_operations:
                    self._finish_app(runtime, now)
                else:
                    runtime.waiting_issue = True
                    next_op = runtime.current_op + 1
                    delay = pattern.collective_overhead
                    sim.schedule_after(
                        delay,
                        self._make_issue_callback(app.index, next_op),
                        priority=EventPriority.CONTROL,
                        label=f"issue.{app.name}.op{next_op}",
                    )
            else:
                if per_proc_outstanding is None:
                    per_proc_outstanding = state.outstanding_per_process()
                self._advance_independent(runtime, per_proc_outstanding, now)

    def _advance_independent(
        self, runtime, per_proc_outstanding: np.ndarray, now: float
    ) -> None:
        """Advance per-process (non-collective) operations of one application."""
        state = self.state
        app = runtime.app
        ids = app.proc_ids()
        pattern = app.spec.pattern
        done_procs = 0
        for proc in ids:
            proc = int(proc)
            if per_proc_outstanding[proc] > self._completion_epsilon:
                continue
            current = int(state.proc_current_op[proc])
            if current + 1 >= app.n_operations:
                done_procs += 1
                continue
            if state.proc_next_issue[proc] > now:
                continue
            state.issue_process_operation(proc, current + 1)
            state.proc_next_issue[proc] = now + pattern.collective_overhead
        if done_procs == ids.shape[0]:
            self._finish_app(runtime, now)

    def _finish_app(self, runtime, now: float) -> None:
        runtime.finished = True
        runtime.end_time = now
        runtime.completed_bytes = runtime.issued_bytes
        self.state.recorder.mark(now, "phase", f"{runtime.app.name}.end")

    def _make_issue_callback(self, app_index: int, op_index: int):
        def _issue(sim: Simulator) -> None:
            state = self.state
            app = state.applications[app_index]
            runtime = state.app_runtime[app_index]
            if runtime.finished:
                return
            if self.on_control_change is not None:
                self.on_control_change(sim)
            state.issue_operation(app, op_index)
            state.recorder.mark(sim.now, "op", f"{app.name}.op{op_index}")

        return _issue

    # ------------------------------------------------------------------ #
    # Application start
    # ------------------------------------------------------------------ #

    def start_application(self, sim: Simulator, app_index: int) -> None:
        """Begin the I/O phase of one application (issue its first operation)."""
        state = self.state
        app = state.applications[app_index]
        runtime = state.app_runtime[app_index]
        if runtime.started:
            raise SimulationError(f"application {app.name!r} started twice")
        if self.on_control_change is not None:
            self.on_control_change(sim)
        runtime.started = True
        runtime.actual_start_time = sim.now
        state.recorder.mark(sim.now, "phase", f"{app.name}.start")
        if app.spec.pattern.collective:
            state.issue_operation(app, 0)
        else:
            for proc in app.proc_ids():
                state.issue_process_operation(int(proc), 0)
                state.proc_next_issue[int(proc)] = sim.now
