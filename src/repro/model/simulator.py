"""The I/O-path simulator: run loop and result assembly.

:class:`IOPathSimulator` glues the vectorized model to the discrete-event
engine:

* an event starts each application at its configured time,
* model-step events advance the fluid model — on a fixed cadence under the
  default (``fixed``) stepping policy, or at the adaptive bound computed by
  :meth:`repro.model.stepper.ModelStepper.next_bound` under the ``adaptive``
  policy, which collapses quiescent intervals into a single jump,
* a periodic observation event samples traces,
* the run ends when every application has finished its I/O phase.

The module-level helper :func:`simulate_scenario` is the one-call entry point
used by the experiment framework:  ``result = simulate_scenario(scenario)``.
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np

from repro.config.scenario import ScenarioConfig
from repro.errors import SimulationError
from repro.model.results import ApplicationResult, ComponentStats, RunResult
from repro.model.state import ModelState
from repro.model.stepper import ModelStepper
from repro.obs.telemetry import get_telemetry
from repro.perf.counters import StepProfiler
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceRecorder

__all__ = ["IOPathSimulator", "simulate_scenario"]


class IOPathSimulator:
    """Simulates one scenario end to end.

    Parameters
    ----------
    scenario:
        The validated scenario to run.
    seed:
        Optional override of the scenario's master seed (used by sweeps that
        want common random numbers across the Δ axis).
    """

    def __init__(self, scenario: ScenarioConfig, seed: Optional[int] = None) -> None:
        self.scenario = scenario
        master_seed = scenario.control.seed if seed is None else int(seed)
        self.streams = RandomStreams(master_seed)
        self.recorder = TraceRecorder(scenario.control.trace)
        self.state = ModelState(scenario, self.streams, recorder=self.recorder)
        self.stepper = ModelStepper(self.state)
        self._n_steps = 0
        self._step_size = scenario.control.resolve_step(scenario.estimate_duration())
        self._stepping = scenario.control.resolve_stepping()
        # Adaptive-driver state: end of the last executed step and the
        # currently pending step event (None when waiting for a control kick).
        self._last_step_end = 0.0
        self._step_event = None

    # ------------------------------------------------------------------ #

    @property
    def step_size(self) -> float:
        """Resolved model step (seconds)."""
        return self._step_size

    @property
    def stepping(self):
        """The resolved :class:`~repro.config.control.SteppingPolicy`."""
        return self._stepping

    def run(self) -> RunResult:
        """Run the scenario to completion and return the result."""
        scenario = self.scenario
        state = self.state
        start_times = [app.start_time for app in scenario.applications]
        t0 = min(0.0, min(start_times))
        horizon = scenario.control.max_time
        sim = Simulator(start_time=t0, horizon=t0 + horizon * 2 + 1.0)

        # Application starts.
        for app in state.applications:
            sim.schedule(
                app.start_time,
                self._make_start_callback(app.index),
                priority=EventPriority.CONTROL,
                label=f"start.{app.name}",
            )

        # Model steps.
        dt = self._step_size

        if self._stepping.is_adaptive:
            # Adaptive time advance: each step schedules the next one at the
            # bound derived from the current rates; control-plane events
            # (application starts, operation issues) catch the model up over
            # the pending interval before they mutate state, so no step ever
            # spans a state change.  No step is scheduled until the first
            # application starts — the pre-start lead-in costs zero steps.
            self._last_step_end = t0
            self._step_event = None
            self.stepper.pressure_step_ref = dt
            self.stepper.on_control_change = self._adaptive_catch_up
        else:
            # Fixed cadence: the seed behaviour, byte-identical output.
            def tick(s: Simulator) -> None:
                self.stepper.step(s, dt)
                self._n_steps += 1
                if state.all_finished():
                    s.stop("all applications finished")

            sim.schedule_periodic(
                dt,
                tick,
                start=t0 + dt,
                priority=EventPriority.NORMAL,
                label="model.step",
                stop_when=lambda s: state.all_finished(),
            )

        # Trace sampling.  When no periodic series category records, the
        # sampling event is not scheduled at all: a disabled trace must not
        # pay the per-sample aggregate reductions (or the event churn).
        if self.recorder.config.records_series:
            sample_period = scenario.control.trace.series_sample_period
            sim.schedule_periodic(
                sample_period,
                self._sample,
                start=t0 + sample_period,
                priority=EventPriority.OBSERVE,
                label="trace.sample",
                stop_when=lambda s: state.all_finished(),
            )

        # Telemetry is observational only: the profiler hangs off the
        # stepper's opt-in hook and publishing happens after sim.run, so the
        # event sequence, RNG draws and model arrays are untouched and run
        # output stays byte-identical with telemetry on or off.
        telemetry = get_telemetry()
        profiler = None
        if telemetry.enabled and self.stepper.profiler is None:
            profiler = StepProfiler()
            self.stepper.profiler = profiler

        wall_start = time.perf_counter()
        end_time = sim.run(until=t0 + horizon)
        wall_time = time.perf_counter() - wall_start

        if profiler is not None:
            try:
                self._publish_telemetry(telemetry, sim, profiler, wall_time, end_time)
            finally:
                self.stepper.profiler = None

        if not state.all_finished():
            unfinished = [rt.app.name for rt in state.app_runtime if not rt.finished]
            raise SimulationError(
                f"simulation reached max_time={horizon}s with unfinished "
                f"applications {unfinished}; check the scenario configuration"
            )
        return self._build_result(end_time, wall_time)

    # ------------------------------------------------------------------ #
    # Telemetry publication (post-run, hot loop untouched)
    # ------------------------------------------------------------------ #

    def _publish_telemetry(
        self,
        telemetry,
        sim: Simulator,
        profiler: StepProfiler,
        wall_time: float,
        end_time: float,
    ) -> None:
        """Fold the finished run into the ambient telemetry registry.

        Emits one ``simulation`` span covering the run's wall time with
        synthetic sequential ``phase`` child spans sized by each step phase's
        accumulated wall time (a flame view of where the stepping kernel
        spent its time, not a per-step timeline), and publishes engine/step
        counters.
        """
        label = self.scenario.label or "scenario"
        wall_us = wall_time * 1e6
        start_us = telemetry.now_us() - wall_us
        sim_span = telemetry.add_span(
            f"simulate:{label}",
            "simulation",
            start_us,
            wall_us,
            args={
                "label": label,
                "steps": self._n_steps,
                "stepping": self._stepping.mode.value,
                "simulated_time_s": round(end_time - sim.start_time, 9),
            },
        )
        report = profiler.report()
        cursor = start_us
        for phase, row in report.items():
            phase_us = row["ns"] / 1000.0
            telemetry.add_span(
                phase,
                "phase",
                cursor,
                phase_us,
                parent=sim_span,
                args={"calls": row["calls"],
                      "ns_per_call": round(row["ns_per_call"], 1),
                      "alloc_blocks": row["alloc_blocks"]},
            )
            cursor += phase_us
            telemetry.count(f"step.phase.{phase}.ns", row["ns"])
            telemetry.count(f"step.phase.{phase}.calls", row["calls"])
            telemetry.observe(f"step.phase.{phase}.ns_per_call", row["ns_per_call"])
        telemetry.count("sim.steps", self._n_steps)
        telemetry.observe("sim.wall_s", wall_time)
        for name, value in sim.stats().items():
            telemetry.count(name, value)
        telemetry.event(
            "simulation_done",
            label=label,
            steps=self._n_steps,
            wall_s=round(wall_time, 6),
            events_processed=sim.events_processed,
        )

    # ------------------------------------------------------------------ #
    # Callbacks
    # ------------------------------------------------------------------ #

    def _make_start_callback(self, app_index: int):
        def _start(sim: Simulator) -> None:
            self.stepper.start_application(sim, app_index)

        return _start

    # ------------------------------------------------------------------ #
    # Adaptive stepping driver
    # ------------------------------------------------------------------ #

    def _advance_to_now(self, sim: Simulator) -> bool:
        """Step the model over ``[last step end, now]``; True when the run
        finished (and was stopped) in the process."""
        dt = sim.now - self._last_step_end
        if dt > 0:
            self.stepper.step(sim, dt)
            self._n_steps += 1
            self._last_step_end = sim.now
        if self.state.all_finished():
            sim.stop("all applications finished")
            return True
        return False

    def _adaptive_tick(self, sim: Simulator) -> None:
        """Execute one adaptive step and schedule the next one."""
        self._step_event = None
        if not self._advance_to_now(sim):
            self._schedule_next_step(sim)

    def _adaptive_catch_up(self, sim: Simulator) -> None:
        """Advance the model over the pending interval up to ``sim.now``.

        Invoked by control-plane callbacks (application start, operation
        issue) *before* they mutate model state: the interval being caught up
        therefore never spans a state change, which is what makes a single
        large step over it exact.  The next step is re-anchored one base step
        after the control event.

        When a normal-cadence step (one base step or less) is already
        pending, nothing needs catching up: a control event landing inside a
        base step is exactly the granularity the fixed policy exhibits, and
        leaving the cadence untouched keeps the adaptive trajectory on the
        fixed one.
        """
        pending = self._step_event
        if (
            pending is not None
            and not pending.cancelled
            and pending.time - self._last_step_end <= self._step_size * (1.0 + 1e-12)
        ):
            return
        if not self._advance_to_now(sim):
            self._schedule_step_event(sim, sim.now + self._step_size)

    def _schedule_next_step(self, sim: Simulator) -> None:
        """Schedule the next step at the adaptive bound (or wait for a kick)."""
        policy = self._stepping
        bound = self.stepper.next_bound(sim.now, self._step_size, policy.tolerance)
        if policy.max_dt is not None:
            bound = min(bound, policy.max_dt)
        if not math.isfinite(bound):
            # Nothing intrinsic pending: the next state change can only come
            # from a scheduled control event, whose callback kicks us.
            return
        self._schedule_step_event(sim, sim.now + bound)

    def _schedule_step_event(self, sim: Simulator, at: float) -> None:
        """(Re)schedule the pending model-step event at time ``at``.

        A pending event is moved in place (:meth:`Simulator.reschedule`), so
        re-anchoring the step on every control change leaves no cancelled
        corpses in the event heap and heap compactions stay rare on adaptive
        runs.
        """
        at = max(at, sim.now)
        event = self._step_event
        if event is not None and not event.cancelled and event.heap_time is not None:
            if sim.horizon is not None and at > sim.horizon:
                event.cancel()
                self._step_event = None
                return
            sim.reschedule(event, at)
            return
        self._step_event = None
        if sim.horizon is not None and at > sim.horizon:
            return
        self._step_event = sim.schedule(
            at,
            self._adaptive_tick,
            priority=EventPriority.NORMAL,
            label="model.step",
        )

    def _sample(self, sim: Simulator) -> None:
        state = self.state
        recorder = self.recorder
        now = sim.now
        config = recorder.config
        if not config.records_series:  # pragma: no cover - run() never schedules this
            return
        if config.record_progress:
            completed = state.completed_bytes_per_app()
            for runtime in state.app_runtime:
                app = runtime.app
                total = app.total_bytes
                fraction = completed[app.index] / total if total > 0 else 0.0
                if runtime.finished:
                    fraction = 1.0
                if runtime.started:
                    recorder.record(f"progress.{app.name}", now, float(fraction), unit="fraction")
        if config.record_server_state:
            recorder.record(
                "server.buffer_fill.mean", now, float(np.mean(state.buffers.fill)), unit="bytes"
            )
            recorder.record(
                "server.buffer_occupancy.max",
                now,
                float(np.max(state.buffers.occupancy_fraction())) if state.n_servers else 0.0,
                unit="fraction",
            )
            recorder.record(
                "server.drain_rate.mean", now, float(np.mean(state.last_drain_rate)), unit="B/s"
            )
        if config.record_windows:
            for conn, series_name in state.traced_connections.items():
                recorder.record(series_name, now, float(state.windows.cwnd[conn]), unit="bytes")
            for runtime in state.app_runtime:
                app = runtime.app
                conns = state.app_connection_ids(app)
                if conns.size:
                    recorder.record(
                        f"window.mean.{app.name}",
                        now,
                        float(np.mean(state.windows.cwnd[conns])),
                        unit="bytes",
                    )

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #

    def _build_result(self, end_time: float, wall_time: float) -> RunResult:
        state = self.state
        apps = {}
        for runtime in state.app_runtime:
            app = runtime.app
            apps[app.name] = ApplicationResult(
                name=app.name,
                start_time=runtime.actual_start_time,
                end_time=runtime.end_time,
                bytes_written=runtime.issued_bytes,
                window_collapses=int(state.collapses_per_app[app.index]),
            )
        components = ComponentStats(
            client_nic_utilization=state.topology.max_client_utilization(),
            server_nic_utilization=state.topology.max_server_utilization(),
            server_utilization=state.deployment.utilizations(),
            device_utilization=state.deployment.device_utilizations(),
            buffer_pressure=state.buffers.pressure_fraction(),
            total_window_collapses=state.windows.total_collapses(),
        )
        return RunResult(
            scenario=self.scenario,
            applications=apps,
            components=components,
            recorder=self.recorder,
            simulated_time=end_time,
            n_steps=self._n_steps,
            wall_time=wall_time,
            label=self.scenario.label,
        )


def simulate_scenario(scenario: ScenarioConfig, seed: Optional[int] = None) -> RunResult:
    """Convenience wrapper: build an :class:`IOPathSimulator` and run it."""
    return IOPathSimulator(scenario, seed=seed).run()
