"""Run results.

A :class:`RunResult` captures everything an experiment needs from one
simulation: per-application write times (the quantity the paper's Δ-graphs
plot), throughputs, Incast statistics, per-component utilizations (for
root-cause attribution), and the recorded traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.config.scenario import ScenarioConfig
from repro.errors import AnalysisError
from repro.sim.tracing import TraceRecorder

__all__ = ["ApplicationResult", "ComponentStats", "RunResult"]


@dataclass(frozen=True)
class ApplicationResult:
    """Outcome of one application's I/O phase."""

    name: str
    start_time: float
    end_time: float
    bytes_written: float
    window_collapses: int

    @property
    def write_time(self) -> float:
        """Duration of the I/O phase (seconds)."""
        return self.end_time - self.start_time

    @property
    def throughput(self) -> float:
        """Mean throughput of the phase (bytes/s)."""
        if self.write_time <= 0:
            return float("inf")
        return self.bytes_written / self.write_time


@dataclass(frozen=True)
class ComponentStats:
    """Utilization summary of every potential point of contention.

    The paper's Figure 1 lists four candidate bottlenecks; the fields here
    mirror them so :mod:`repro.core.rootcause` can rank them.
    """

    client_nic_utilization: float
    server_nic_utilization: float
    server_utilization: np.ndarray
    device_utilization: np.ndarray
    buffer_pressure: np.ndarray
    total_window_collapses: int

    def mean_server_utilization(self) -> float:
        """Average utilization across servers."""
        if self.server_utilization.size == 0:
            return 0.0
        return float(np.mean(self.server_utilization))

    def mean_device_utilization(self) -> float:
        """Average backend-device utilization across servers."""
        if self.device_utilization.size == 0:
            return 0.0
        return float(np.mean(self.device_utilization))

    def mean_buffer_pressure(self) -> float:
        """Average fraction of time the server buffers were full."""
        if self.buffer_pressure.size == 0:
            return 0.0
        return float(np.mean(self.buffer_pressure))


@dataclass
class RunResult:
    """Everything produced by one simulation run."""

    scenario: ScenarioConfig
    applications: Dict[str, ApplicationResult]
    components: ComponentStats
    recorder: TraceRecorder
    simulated_time: float
    n_steps: int
    wall_time: float
    label: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def app(self, name: str) -> ApplicationResult:
        """Result of the application called ``name``."""
        try:
            return self.applications[name]
        except KeyError as exc:
            raise AnalysisError(
                f"no application named {name!r}; available: {sorted(self.applications)}"
            ) from exc

    def write_time(self, name: str) -> float:
        """Write time of one application (seconds)."""
        return self.app(name).write_time

    def throughput(self, name: str) -> float:
        """Mean throughput of one application (bytes/s)."""
        return self.app(name).throughput

    def aggregate_throughput(self) -> float:
        """Total bytes written divided by the span of all phases."""
        apps = list(self.applications.values())
        if not apps:
            return 0.0
        start = min(a.start_time for a in apps)
        end = max(a.end_time for a in apps)
        total = sum(a.bytes_written for a in apps)
        span = end - start
        if span <= 0:
            return float("inf")
        return total / span

    def total_window_collapses(self) -> int:
        """Window collapses summed over all applications."""
        return self.components.total_window_collapses

    def progress_series(self, name: str):
        """Per-application progress trace (fraction complete over time)."""
        return self.recorder.get_series(f"progress.{name}")

    def window_series_names(self) -> list:
        """Names of traced per-connection window series."""
        return self.recorder.series_names("window.")

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def summary(self) -> Dict[str, float]:
        """Flat dictionary summarizing the run (used by reports and tests)."""
        out: Dict[str, float] = {
            "simulated_time": self.simulated_time,
            "n_steps": float(self.n_steps),
            "wall_time": self.wall_time,
            "aggregate_throughput": self.aggregate_throughput(),
            "window_collapses": float(self.total_window_collapses()),
            "mean_server_utilization": self.components.mean_server_utilization(),
            "mean_device_utilization": self.components.mean_device_utilization(),
            "mean_buffer_pressure": self.components.mean_buffer_pressure(),
        }
        for name, app in self.applications.items():
            out[f"write_time.{name}"] = app.write_time
            out[f"throughput.{name}"] = app.throughput
            out[f"collapses.{name}"] = float(app.window_collapses)
        out.update(self.extra)
        return out

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"run {self.label or self.scenario.label}:"]
        for name, app in sorted(self.applications.items()):
            lines.append(
                f"  app {name}: write time {app.write_time:.3f}s, "
                f"throughput {app.throughput / 1e6:.1f} MB/s, "
                f"{app.window_collapses} window collapses"
            )
        lines.append(
            f"  servers: mean utilization {self.components.mean_server_utilization():.2f}, "
            f"buffer pressure {self.components.mean_buffer_pressure():.2f}"
        )
        return "\n".join(lines)


def merge_extra(result: RunResult, **values: float) -> Optional[RunResult]:
    """Attach extra scalar metadata to a result (returns the same object)."""
    result.extra.update({k: float(v) for k, v in values.items()})
    return result
