"""The integrated I/O-path model.

This package assembles the substrates (network, PVFS servers, storage
devices, workloads) into one vectorized fluid/discrete-event simulation:

* :mod:`repro.model.state`     — builds the vectorized per-connection and
  per-application state from a :class:`~repro.config.scenario.ScenarioConfig`,
* :mod:`repro.model.stepper`   — the per-step update (drain → admit → window
  dynamics → operation completion),
* :mod:`repro.model.simulator` — :class:`IOPathSimulator`, the run loop on
  top of the discrete-event engine,
* :mod:`repro.model.results`   — :class:`RunResult`, per-application write
  times plus component statistics and traces,
* :mod:`repro.model.local`     — the single-node model used for the paper's
  Table I (local writes without a network).
"""

from repro.model.results import ApplicationResult, RunResult
from repro.model.simulator import IOPathSimulator, simulate_scenario
from repro.model.local import LocalWriteResult, simulate_local_writes

__all__ = [
    "ApplicationResult",
    "RunResult",
    "IOPathSimulator",
    "simulate_scenario",
    "LocalWriteResult",
    "simulate_local_writes",
]
