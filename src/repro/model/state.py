"""Vectorized model state.

:class:`ModelState` is built once per run from a
:class:`~repro.config.scenario.ScenarioConfig`.  It holds:

* the :class:`~repro.workload.application.Application` objects (placement,
  per-operation extents),
* one *connection* per (process, target server) pair with the transport
  state (:class:`~repro.network.congestion.WindowState`) and the server
  receive buffers (:class:`~repro.network.incast.ServerBuffers`),
* the per-connection "bytes still to send for the current operation" array
  the stepper updates,
* per-application progress bookkeeping (current operation, completion
  times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config.scenario import ScenarioConfig
from repro.errors import SimulationError
from repro.network.congestion import WindowState
from repro.network.incast import ServerBuffers
from repro.network.topology import StarTopology
from repro.pfs.filesystem import PVFSDeployment
from repro.pfs.striping import extent_to_server_bytes
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceRecorder
from repro.workload.application import Application

__all__ = ["AppRuntime", "ModelState"]


@dataclass
class AppRuntime:
    """Mutable per-application bookkeeping."""

    app: Application
    started: bool = False
    finished: bool = False
    waiting_issue: bool = False
    current_op: int = -1
    ops_completed: int = 0
    actual_start_time: float = 0.0
    end_time: float = float("nan")
    issued_bytes: float = 0.0
    completed_bytes: float = 0.0

    @property
    def write_time(self) -> float:
        """Duration of the application's I/O phase (NaN until finished)."""
        if not self.finished:
            return float("nan")
        return self.end_time - self.actual_start_time


class ModelState:
    """All mutable arrays of one simulation run."""

    def __init__(self, scenario: ScenarioConfig, streams: RandomStreams,
                 recorder: Optional[TraceRecorder] = None) -> None:
        self.scenario = scenario
        self.streams = streams
        self.recorder = recorder or TraceRecorder(scenario.control.trace)

        fs = scenario.filesystem
        platform = scenario.platform
        self.deployment = PVFSDeployment(fs, server_nic_bw=platform.network.server_nic_bw)
        self.topology = StarTopology(
            n_client_nodes=platform.n_client_nodes,
            n_servers=fs.n_servers,
            network=platform.network,
        )

        # ---------------- applications and processes ---------------------
        self.applications: List[Application] = []
        node_ranges = scenario.node_ranges()
        first_proc = 0
        for idx, (spec, node_range) in enumerate(zip(scenario.applications, node_ranges)):
            app = Application(
                index=idx,
                spec=spec,
                node_range=node_range,
                servers=scenario.app_servers(spec),
                first_proc_id=first_proc,
            )
            self.applications.append(app)
            first_proc += app.n_processes
        self.n_processes = first_proc
        self.n_servers = fs.n_servers
        self.n_apps = len(self.applications)

        self.proc_app = np.empty(self.n_processes, dtype=np.int64)
        self.proc_node = np.empty(self.n_processes, dtype=np.int64)
        self.proc_rank = np.empty(self.n_processes, dtype=np.int64)
        for app in self.applications:
            ids = app.proc_ids()
            self.proc_app[ids] = app.index
            self.proc_node[ids] = app.node_of_rank()
            self.proc_rank[ids] = app.ranks()

        # ---------------- connections -------------------------------------
        conn_proc: List[np.ndarray] = []
        conn_server: List[np.ndarray] = []
        self.conn_matrix = np.full((self.n_processes, self.n_servers), -1, dtype=np.int64)
        offset = 0
        for app in self.applications:
            ids = app.proc_ids()
            servers = np.asarray(app.servers, dtype=np.int64)
            procs_rep = np.repeat(ids, servers.shape[0])
            servers_rep = np.tile(servers, ids.shape[0])
            count = procs_rep.shape[0]
            conn_proc.append(procs_rep)
            conn_server.append(servers_rep)
            self.conn_matrix[procs_rep, servers_rep] = offset + np.arange(count)
            offset += count
        self.n_connections = offset
        self.conn_proc = np.concatenate(conn_proc) if conn_proc else np.zeros(0, dtype=np.int64)
        self.conn_server = (
            np.concatenate(conn_server) if conn_server else np.zeros(0, dtype=np.int64)
        )
        self.conn_app = self.proc_app[self.conn_proc]
        self.conn_node = self.proc_node[self.conn_proc]

        # Step-invariant index groups, computed once so the hot path (stepper
        # completion phase, trace sampling) never rebuilds them:
        #: Global process indices per application, in rank order.
        self.app_proc_ids: List[np.ndarray] = [app.proc_ids() for app in self.applications]
        #: Connection indices per application (every process/server pair).
        self._app_conn_ids: List[np.ndarray] = [
            self.conn_matrix[np.ix_(self.app_proc_ids[app.index],
                                    np.asarray(app.servers, dtype=np.int64))].reshape(-1)
            for app in self.applications
        ]

        # Transport and buffer state.
        transport = platform.network.transport
        self.windows = WindowState(
            self.n_connections, transport, rng=streams.stream("transport")
        )
        self.buffers = ServerBuffers(
            n_servers=self.n_servers,
            capacity_bytes=fs.server.buffer_bytes,
            conn_server=self.conn_server,
        )

        #: Bytes of the current operation still to be sent, per connection.
        self.send_remaining = np.zeros(self.n_connections, dtype=np.float64)
        #: Size of the current operation's fragment on each connection.
        self.frag_size = np.zeros(self.n_connections, dtype=np.float64)

        # Per-application runtime bookkeeping.
        self.app_runtime: List[AppRuntime] = [AppRuntime(app=app) for app in self.applications]

        # Per-process bookkeeping for the non-collective mode.
        self.proc_current_op = np.full(self.n_processes, -1, dtype=np.int64)
        self.proc_next_issue = np.zeros(self.n_processes, dtype=np.float64)

        # Cached per-server drain rate of the previous step (for RTT estimates).
        self.last_drain_rate = np.full(
            self.n_servers, fs.server.ingest_bw, dtype=np.float64
        )
        # Cached per-server admission rate (B/s) of the previous step; the
        # adaptive stepper derives buffer fill/empty horizons from it.
        self.last_admission_rate = np.zeros(self.n_servers, dtype=np.float64)

        # Collapse statistics per application (Incast detection).
        self.collapses_per_app = np.zeros(self.n_apps, dtype=np.int64)

        # Traced connections (window figures): first connection of each app.
        limit = self.recorder.config.window_connection_limit
        self.traced_connections: Dict[int, str] = {}
        if self.recorder.config.record_windows and limit > 0:
            for app in self.applications:
                ids = app.proc_ids()
                count = 0
                for proc in ids[: max(limit, 1)]:
                    for server in app.servers[:1]:
                        conn = int(self.conn_matrix[proc, server])
                        if conn >= 0:
                            self.traced_connections[conn] = (
                                f"window.{app.name}.rank{int(proc - app.first_proc_id)}"
                                f".server{int(server)}"
                            )
                            count += 1
                    if count >= limit:
                        break

    # ------------------------------------------------------------------ #
    # Operation issue
    # ------------------------------------------------------------------ #

    def app_connection_ids(self, app: Application) -> np.ndarray:
        """Connection indices of every (process, server) pair of ``app``.

        Returns the precomputed (step-invariant) index array; treat it as
        read-only.
        """
        return self._app_conn_ids[app.index]

    def issue_operation(self, app: Application, op_index: int) -> float:
        """Load operation ``op_index`` of ``app`` onto its connections.

        Returns the number of bytes issued.  Used for collective operations
        (all processes issue together).
        """
        if op_index < 0 or op_index >= app.n_operations:
            raise SimulationError(
                f"application {app.name!r} has no operation {op_index}"
            )
        offsets, lengths = app.operation_extents(op_index)
        fs = self.scenario.filesystem
        ids = self.app_proc_ids[app.index]
        issued = 0.0
        for local_rank in range(ids.shape[0]):
            proc = int(ids[local_rank])
            per_server = extent_to_server_bytes(
                float(offsets[local_rank]),
                float(lengths[local_rank]),
                fs.stripe_size,
                app.servers,
                self.n_servers,
            )
            touched = np.flatnonzero(per_server > 0)
            conns = self.conn_matrix[proc, touched]
            if np.any(conns < 0):  # pragma: no cover - defensive
                raise SimulationError(
                    f"process {proc} has no connection to one of servers {touched}"
                )
            self.send_remaining[conns] += per_server[touched]
            self.frag_size[conns] = per_server[touched]
            issued += float(per_server[touched].sum())
        runtime = self.app_runtime[app.index]
        runtime.issued_bytes += issued
        runtime.current_op = op_index
        runtime.waiting_issue = False
        return issued

    def issue_process_operation(self, proc: int, op_index: int) -> float:
        """Load operation ``op_index`` of one process (non-collective mode)."""
        app = self.applications[int(self.proc_app[proc])]
        offsets, lengths = app.operation_extents(op_index)
        local_rank = int(self.proc_rank[proc])
        fs = self.scenario.filesystem
        per_server = extent_to_server_bytes(
            float(offsets[local_rank]),
            float(lengths[local_rank]),
            fs.stripe_size,
            app.servers,
            self.n_servers,
        )
        touched = np.flatnonzero(per_server > 0)
        conns = self.conn_matrix[proc, touched]
        self.send_remaining[conns] += per_server[touched]
        self.frag_size[conns] = per_server[touched]
        issued = float(per_server[touched].sum())
        self.app_runtime[app.index].issued_bytes += issued
        self.proc_current_op[proc] = op_index
        return issued

    # ------------------------------------------------------------------ #
    # Aggregations used by the stepper
    # ------------------------------------------------------------------ #

    def outstanding_per_connection(self) -> np.ndarray:
        """Bytes not yet durably handled per connection (in flight + to send)."""
        return self.send_remaining + self.buffers.conn_bytes

    def outstanding_per_app(self) -> np.ndarray:
        """Bytes not yet durably handled per application."""
        return np.bincount(
            self.conn_app, weights=self.outstanding_per_connection(), minlength=self.n_apps
        )

    def outstanding_per_process(self) -> np.ndarray:
        """Bytes not yet durably handled per process."""
        return np.bincount(
            self.conn_proc, weights=self.outstanding_per_connection(), minlength=self.n_processes
        )

    def all_finished(self) -> bool:
        """True when every application has completed its I/O phase."""
        return all(rt.finished for rt in self.app_runtime)

    def completed_bytes_per_app(self) -> np.ndarray:
        """Bytes durably handled so far, per application."""
        issued = np.array([rt.issued_bytes for rt in self.app_runtime])
        outstanding = self.outstanding_per_app()
        return np.maximum(issued - outstanding, 0.0)
