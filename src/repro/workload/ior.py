"""IOR-style front end.

The paper's microbenchmark is "similar to IOR"; many HPC users think in IOR
parameters (``blockSize``, ``transferSize``, ``segmentCount``, ``filePerProc``,
number of tasks).  :class:`IORParameters` accepts those parameters and
produces the equivalent :class:`~repro.config.workload.ApplicationSpec` for
the simulator, so existing IOR command lines can be translated directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.config.workload import ApplicationSpec, PatternSpec
from repro.errors import ConfigurationError

__all__ = ["IORParameters", "ior_application"]


@dataclass(frozen=True)
class IORParameters:
    """A subset of IOR's options sufficient for write-phase studies.

    Attributes
    ----------
    tasks:
        Number of MPI tasks (processes).
    tasks_per_node:
        Tasks per compute node.
    block_size:
        IOR ``blockSize``: contiguous bytes each task owns per segment.
    transfer_size:
        IOR ``transferSize``: bytes moved per I/O call.
    segment_count:
        IOR ``segmentCount``: number of (blockSize x tasks) segments.
    collective:
        Whether I/O calls are collective (MPI-IO ``write_all``).
    """

    tasks: int
    tasks_per_node: int
    block_size: float = 64 * units.MiB
    transfer_size: float = 64 * units.MiB
    segment_count: int = 1
    collective: bool = True

    def __post_init__(self) -> None:
        if self.tasks <= 0 or self.tasks_per_node <= 0:
            raise ConfigurationError("tasks and tasks_per_node must be positive")
        if self.tasks % self.tasks_per_node != 0:
            raise ConfigurationError("tasks must be a multiple of tasks_per_node")
        if self.block_size <= 0 or self.transfer_size <= 0:
            raise ConfigurationError("block_size and transfer_size must be positive")
        if self.transfer_size > self.block_size:
            raise ConfigurationError("transfer_size cannot exceed block_size")
        if self.segment_count <= 0:
            raise ConfigurationError("segment_count must be positive")

    @property
    def n_nodes(self) -> int:
        """Number of compute nodes used."""
        return self.tasks // self.tasks_per_node

    @property
    def bytes_per_task(self) -> float:
        """Total bytes written by each task."""
        return self.block_size * self.segment_count

    @property
    def is_contiguous(self) -> bool:
        """True when each I/O call moves a whole block (segmented layout)."""
        return self.transfer_size >= self.block_size and self.segment_count == 1


def ior_application(
    name: str,
    params: IORParameters,
    start_time: float = 0.0,
    collective_overhead: float = 0.0,
) -> ApplicationSpec:
    """Translate IOR parameters into an :class:`ApplicationSpec`.

    A single segment with ``transferSize == blockSize`` maps to the paper's
    contiguous pattern; anything else maps to the strided pattern with the
    transfer size as the request size.
    """
    if params.is_contiguous:
        pattern = PatternSpec.contiguous(
            bytes_per_process=params.bytes_per_task,
            collective=params.collective,
            collective_overhead=collective_overhead,
        )
    else:
        pattern = PatternSpec.strided(
            bytes_per_process=params.bytes_per_task,
            request_size=params.transfer_size,
            collective=params.collective,
            collective_overhead=collective_overhead,
        )
    return ApplicationSpec(
        name=name,
        n_nodes=params.n_nodes,
        procs_per_node=params.tasks_per_node,
        pattern=pattern,
        start_time=start_time,
    )
