"""Runtime view of one application group.

An :class:`Application` binds an :class:`~repro.config.workload.ApplicationSpec`
to concrete resources: global node indices, global process indices, and the
set of servers its file is striped over.  It exposes the per-operation
extents the model needs when issuing collective operations.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.config.workload import ApplicationSpec
from repro.errors import ConfigurationError
from repro.workload.patterns import pattern_extents

__all__ = ["Application"]


class Application:
    """One application group placed on the platform.

    Parameters
    ----------
    index:
        Dense application index (0-based) within the scenario.
    spec:
        Static description of the group.
    node_range:
        Half-open range ``(first_node, last_node)`` of global node indices
        assigned to the group.
    servers:
        Server indices the group's shared file is striped over.
    first_proc_id:
        Global index of the group's rank-0 process.
    """

    def __init__(
        self,
        index: int,
        spec: ApplicationSpec,
        node_range: Tuple[int, int],
        servers: Sequence[int],
        first_proc_id: int,
    ) -> None:
        if node_range[1] - node_range[0] != spec.n_nodes:
            raise ConfigurationError(
                f"application {spec.name!r} was given {node_range[1] - node_range[0]} "
                f"nodes but needs {spec.n_nodes}"
            )
        if first_proc_id < 0:
            raise ConfigurationError("first_proc_id must be non-negative")
        self.index = int(index)
        self.spec = spec
        self.node_range = (int(node_range[0]), int(node_range[1]))
        self.servers = tuple(int(s) for s in servers)
        if not self.servers:
            raise ConfigurationError("an application needs at least one target server")
        self.first_proc_id = int(first_proc_id)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """Application name (from the spec)."""
        return self.spec.name

    @property
    def n_processes(self) -> int:
        """Number of I/O processes in the group."""
        return self.spec.n_processes

    @property
    def n_operations(self) -> int:
        """Number of (collective) operations in one I/O phase."""
        return self.spec.pattern.requests_per_process

    @property
    def start_time(self) -> float:
        """Simulated time at which the group's I/O phase begins."""
        return self.spec.start_time

    @property
    def total_bytes(self) -> float:
        """Bytes the group writes during one phase."""
        return self.spec.total_bytes

    def proc_ids(self) -> np.ndarray:
        """Global process indices of the group's ranks (rank order)."""
        return self.first_proc_id + np.arange(self.n_processes, dtype=np.int64)

    def ranks(self) -> np.ndarray:
        """Rank of every process within the group."""
        return np.arange(self.n_processes, dtype=np.int64)

    def node_of_rank(self) -> np.ndarray:
        """Global node index hosting each rank (block placement, rank-major)."""
        per_node = self.spec.procs_per_node
        return self.node_range[0] + (self.ranks() // per_node)

    # ------------------------------------------------------------------ #
    # Workload
    # ------------------------------------------------------------------ #

    def operation_extents(self, op_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Extents (offsets, lengths) of operation ``op_index`` for every rank."""
        return pattern_extents(self.spec.pattern, op_index, self.n_processes)

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.name}: ranks {self.first_proc_id}..{self.first_proc_id + self.n_processes - 1}, "
            f"nodes {self.node_range[0]}..{self.node_range[1] - 1}, "
            f"{self.n_operations} ops, servers {list(self.servers)}"
        )
