"""I/O phase scheduling helpers.

The paper's experiments contain a single write phase per application, offset
by the Δ delay.  Real HPC applications alternate computation and I/O
(checkpointing); the helpers here describe such schedules so the examples and
the extension experiments can model them on top of the same simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ConfigurationError

__all__ = ["IOPhase", "PeriodicCheckpointSchedule"]


@dataclass(frozen=True)
class IOPhase:
    """One I/O burst of an application.

    Attributes
    ----------
    start_time:
        Simulated time at which the burst begins.
    label:
        Free-form label ("checkpoint-3", "analysis-dump", ...).
    """

    start_time: float
    label: str = "io-phase"

    def __post_init__(self) -> None:
        if self.start_time < -1e12:
            raise ConfigurationError("start_time is unreasonably negative")


@dataclass(frozen=True)
class PeriodicCheckpointSchedule:
    """A periodic checkpointing schedule.

    Attributes
    ----------
    period:
        Time between the start of two consecutive checkpoints (compute time
        plus write time as seen by the scheduler).
    n_checkpoints:
        Number of checkpoints to produce.
    first_start:
        Start time of the first checkpoint.
    jitter:
        Optional deterministic phase shift applied to every start (used to
        stagger two applications without randomness).
    """

    period: float
    n_checkpoints: int
    first_start: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("period must be positive")
        if self.n_checkpoints <= 0:
            raise ConfigurationError("n_checkpoints must be positive")

    def phases(self) -> List[IOPhase]:
        """Materialize the schedule as a list of :class:`IOPhase`."""
        return [
            IOPhase(
                start_time=self.first_start + self.jitter + i * self.period,
                label=f"checkpoint-{i}",
            )
            for i in range(self.n_checkpoints)
        ]

    def __iter__(self) -> Iterator[IOPhase]:
        return iter(self.phases())

    def __len__(self) -> int:
        return self.n_checkpoints
