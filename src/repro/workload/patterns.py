"""File-offset generation for the paper's access patterns.

Both patterns write ``bytes_per_process`` per process into a file shared by
the application:

* **Contiguous** — process ``rank`` writes one extent starting at
  ``rank * bytes_per_process`` (the IOR "segmented" layout).  If a request
  size smaller than the whole extent is configured, the extent is split into
  consecutive requests.
* **Strided**   — the file is organised as interleaved blocks: request ``k``
  of process ``rank`` starts at ``(k * n_procs + rank) * request_size``
  (the IOR "strided"/interleaved layout with one block per transfer).

The functions return NumPy arrays so the model can build per-operation
extents for every process at once.
"""

from __future__ import annotations

import numpy as np

from repro.config.workload import AccessKind, PatternSpec
from repro.errors import ConfigurationError

__all__ = ["request_offsets", "request_sizes", "pattern_extents", "total_file_size"]


def request_sizes(pattern: PatternSpec, rank: int = 0) -> np.ndarray:
    """Sizes (bytes) of every request one process issues during a phase.

    All requests have the configured request size except possibly the last,
    which is truncated so the per-process volume is exactly
    ``bytes_per_process``.
    """
    if rank < 0:
        raise ConfigurationError("rank must be non-negative")
    n = pattern.requests_per_process
    sizes = np.full(n, pattern.effective_request_size, dtype=np.float64)
    sizes[-1] = pattern.last_request_size
    return sizes


def request_offsets(pattern: PatternSpec, rank: int, n_procs: int) -> np.ndarray:
    """File offsets of every request one process issues during a phase."""
    if n_procs <= 0:
        raise ConfigurationError("n_procs must be positive")
    if rank < 0 or rank >= n_procs:
        raise ConfigurationError(f"rank {rank} out of range for {n_procs} processes")
    n = pattern.requests_per_process
    req = pattern.effective_request_size
    k = np.arange(n, dtype=np.float64)
    if pattern.kind is AccessKind.CONTIGUOUS:
        return rank * pattern.bytes_per_process + k * req
    return (k * n_procs + rank) * req


def pattern_extents(pattern: PatternSpec, op_index: int, n_procs: int) -> tuple[np.ndarray, np.ndarray]:
    """Extents (offsets, lengths) of operation ``op_index`` for every process.

    Returns two arrays of shape ``(n_procs,)``: the file offset and the size
    of the request each rank issues as its ``op_index``-th operation.
    """
    if op_index < 0 or op_index >= pattern.requests_per_process:
        raise ConfigurationError(
            f"op_index {op_index} out of range (pattern has "
            f"{pattern.requests_per_process} operations)"
        )
    req = pattern.effective_request_size
    ranks = np.arange(n_procs, dtype=np.float64)
    size = pattern.last_request_size if op_index == pattern.requests_per_process - 1 else req
    lengths = np.full(n_procs, size, dtype=np.float64)
    if pattern.kind is AccessKind.CONTIGUOUS:
        offsets = ranks * pattern.bytes_per_process + op_index * req
    else:
        offsets = (op_index * n_procs + ranks) * req
    return offsets, lengths


def total_file_size(pattern: PatternSpec, n_procs: int) -> float:
    """Size of the shared file after one complete phase of ``n_procs`` processes."""
    if n_procs <= 0:
        raise ConfigurationError("n_procs must be positive")
    if pattern.kind is AccessKind.CONTIGUOUS:
        return n_procs * pattern.bytes_per_process
    # Strided: the last block of the last segment defines the file size; with
    # equal-size requests this is simply the total volume as well.
    return n_procs * pattern.bytes_per_process
