"""Workload substrate: applications, access patterns, and phases.

* :mod:`repro.workload.patterns`    — file-offset generation for the paper's
  contiguous and strided patterns,
* :mod:`repro.workload.application` — the runtime view of one application
  group (process placement, per-operation extents),
* :mod:`repro.workload.phases`      — I/O phase scheduling helpers (delayed
  starts, periodic checkpoint schedules),
* :mod:`repro.workload.ior`         — an IOR-style front end for building
  application specs from familiar IOR parameters.
"""

from repro.workload.patterns import request_offsets, request_sizes, pattern_extents
from repro.workload.application import Application
from repro.workload.phases import IOPhase, PeriodicCheckpointSchedule
from repro.workload.ior import IORParameters, ior_application

__all__ = [
    "request_offsets",
    "request_sizes",
    "pattern_extents",
    "Application",
    "IOPhase",
    "PeriodicCheckpointSchedule",
    "IORParameters",
    "ior_application",
]
