"""Dedicated I/O writers (aggregation).

The paper's Figure 4 shows that funnelling each node's I/O through a single
writer process both improves single-application performance and removes the
unfair interference, because it reduces the number of sockets per server and
serializes requests at the node level — the Damaris / two-phase-I/O
aggregator idea.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.scenario import ScenarioConfig
from repro.errors import ConfigurationError
from repro.mitigation.base import Mitigation

__all__ = ["DedicatedWriters"]


@dataclass
class DedicatedWriters(Mitigation):
    """Dedicated I/O processes: ``writers_per_node`` writers handle a node's I/O.

    Attributes
    ----------
    writers_per_node:
        Number of writer processes per node after aggregation (the paper
        uses 1).
    """

    writers_per_node: int = 1
    name: str = "dedicated-writers"

    def __post_init__(self) -> None:
        if self.writers_per_node <= 0:
            raise ConfigurationError("writers_per_node must be positive")

    def apply(self, scenario: ScenarioConfig) -> ScenarioConfig:
        """Rewrite every application to use the reduced writer count."""
        new_apps = []
        for app in scenario.applications:
            if self.writers_per_node > app.procs_per_node:
                raise ConfigurationError(
                    f"cannot aggregate to {self.writers_per_node} writers per node: "
                    f"application {app.name!r} only has {app.procs_per_node}"
                )
            new_apps.append(
                app.with_writers(app.n_nodes, self.writers_per_node, keep_total_bytes=True)
            )
        return scenario.with_applications(new_apps)
