"""Server-side request-order coordination.

Song et al. (the paper's reference [3]) make all servers serve applications
in the same order so that a request striped over many servers is never
delayed by a single server that chose to serve the other application first.
The paper confirms the intuition behind this approach in its stripe-size
experiment (Section IV-A6): when each request only involves one server, the
cross-server ordering problem disappears.

The simulator does not expose a per-request server-side scheduler, so this
mitigation approximates perfect coordination the same way the paper's
experiment does: by making the stripe at least as large as the application's
request size, which reduces every request to a single server and removes the
cross-server straggler effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.scenario import ScenarioConfig
from repro.errors import ConfigurationError
from repro.mitigation.base import Mitigation

__all__ = ["ServerSideCoordination"]


@dataclass
class ServerSideCoordination(Mitigation):
    """Serve each request from a single server (coordination by layout).

    Attributes
    ----------
    stripe_size:
        Stripe size to use; defaults to the applications' request size so
        that each request maps to exactly one server.
    """

    stripe_size: Optional[float] = None
    name: str = "server-coordination"

    def __post_init__(self) -> None:
        if self.stripe_size is not None and self.stripe_size <= 0:
            raise ConfigurationError("stripe_size must be positive")

    def apply(self, scenario: ScenarioConfig) -> ScenarioConfig:
        """Raise the stripe size to cover a whole request."""
        stripe = self.stripe_size
        if stripe is None:
            stripe = max(
                app.pattern.effective_request_size for app in scenario.applications
            )
        fs = scenario.filesystem.with_stripe_size(stripe)
        return scenario.with_filesystem(fs)
