"""Source-side rate limiting.

The paper observes that simply lowering the network bandwidth to 1 Gbps can
*eliminate* interference when nothing else is congested, because it
constrains the rate at which each client sends requests to something the
backend can sustain (Section IV-A3).  This mitigation applies that idea
deliberately: cap each compute node's injection bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config.scenario import ScenarioConfig
from repro.errors import ConfigurationError
from repro.mitigation.base import Mitigation

__all__ = ["SourceRateLimit"]


@dataclass
class SourceRateLimit(Mitigation):
    """Throttle every compute node's injection bandwidth.

    Attributes
    ----------
    node_bw:
        Maximum injection rate per compute node (bytes/s).
    """

    node_bw: float = 125e6
    name: str = "source-rate-limit"

    def __post_init__(self) -> None:
        if self.node_bw <= 0:
            raise ConfigurationError("node_bw must be positive")

    def apply(self, scenario: ScenarioConfig) -> ScenarioConfig:
        """Cap the per-node injection bandwidth of the platform."""
        network = scenario.platform.network
        limited = replace(
            network,
            node_injection_bw=min(network.node_injection_bw, self.node_bw),
            client_nic_bw=min(network.client_nic_bw, max(self.node_bw, 1.0)),
            name=f"{network.name} (rate-limited)",
        )
        return scenario.with_platform(scenario.platform.with_network(limited))
