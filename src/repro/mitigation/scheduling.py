"""Cross-application I/O scheduling (CALCioM-style coordination).

The related work the paper builds on (its reference [1], CALCioM, and the
batch-scheduler line of work by Zhou et al. and Gainaru et al.) avoids
interference by *coordinating* the applications: when two I/O phases would
overlap, one of them is delayed until the other finishes, trading waiting
time for interference-free transfers.

The standard :class:`~repro.mitigation.base.Mitigation` interface cannot
express this policy — it rewrites a static scenario, while coordination is a
decision made per delay — so this module provides its own evaluation helper:

* :func:`coordinated_start_times` — the serialized schedule for one delay,
* :func:`evaluate_coordination` — run both the interfering and the
  coordinated execution for a set of delays and compare write times *and*
  completion times (including the waiting introduced by the scheduler).

The resulting :class:`CoordinationOutcome` quantifies the paper's remark that
scheduling-level solutions "can help control the level of interference [but
do] not always lead to improved performance at the same time": the write time
always improves, the completion time may not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.scenario import ScenarioConfig
from repro.core.delta import default_deltas
from repro.errors import ExperimentError
from repro.model.simulator import simulate_scenario

__all__ = [
    "CoordinationPoint",
    "CoordinationOutcome",
    "coordinated_start_times",
    "evaluate_coordination",
]


@dataclass(frozen=True)
class CoordinationPoint:
    """Comparison of interfering vs. coordinated execution at one delay."""

    delta: float
    interfering_write_times: Dict[str, float]
    coordinated_write_times: Dict[str, float]
    interfering_completion_times: Dict[str, float]
    coordinated_completion_times: Dict[str, float]
    scheduler_wait: Dict[str, float]

    def write_time_improvement(self, app: str) -> float:
        """Write-time reduction for one application (positive = faster)."""
        return self.interfering_write_times[app] - self.coordinated_write_times[app]

    def completion_change(self, app: str) -> float:
        """Completion-time change (positive = the application finished later)."""
        return (
            self.coordinated_completion_times[app]
            - self.interfering_completion_times[app]
        )


@dataclass
class CoordinationOutcome:
    """Aggregate outcome of a coordination evaluation."""

    points: List[CoordinationPoint]
    alone_times: Dict[str, float]
    label: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #

    @property
    def applications(self) -> Tuple[str, ...]:
        """Application names covered by the evaluation."""
        if not self.points:
            return tuple(sorted(self.alone_times))
        return tuple(sorted(self.points[0].interfering_write_times))

    def peak_interference_factor(self, coordinated: bool = False) -> float:
        """Worst write-time slowdown across delays and applications."""
        worst = 1.0
        for point in self.points:
            times = (
                point.coordinated_write_times if coordinated else point.interfering_write_times
            )
            for app, t in times.items():
                worst = max(worst, t / self.alone_times[app])
        return worst

    def mean_completion_change(self) -> float:
        """Average completion-time change introduced by the coordination.

        Positive values mean applications finish later on average — the
        scheduler converted interference into waiting instead of removing the
        cost altogether.
        """
        changes = [
            point.completion_change(app)
            for point in self.points
            for app in point.coordinated_completion_times
        ]
        return float(np.mean(changes)) if changes else 0.0

    def max_scheduler_wait(self) -> float:
        """Largest waiting time the scheduler imposed on any application."""
        waits = [max(point.scheduler_wait.values()) for point in self.points]
        return float(max(waits)) if waits else 0.0

    def rows(self) -> List[Dict[str, float]]:
        """One flat row per delay (for tables and CSV)."""
        rows = []
        for point in self.points:
            row: Dict[str, float] = {"delta": point.delta}
            for app in sorted(point.interfering_write_times):
                row[f"interfering_write_time.{app}"] = point.interfering_write_times[app]
                row[f"coordinated_write_time.{app}"] = point.coordinated_write_times[app]
                row[f"scheduler_wait.{app}"] = point.scheduler_wait[app]
                row[f"completion_change.{app}"] = point.completion_change(app)
            rows.append(row)
        return rows

    def summary(self) -> Dict[str, float]:
        """Headline metrics of the evaluation."""
        out = {
            "peak_if_interfering": self.peak_interference_factor(coordinated=False),
            "peak_if_coordinated": self.peak_interference_factor(coordinated=True),
            "mean_completion_change": self.mean_completion_change(),
            "max_scheduler_wait": self.max_scheduler_wait(),
        }
        out.update(self.extra)
        return out


def coordinated_start_times(
    scenario: ScenarioConfig,
    delta: float,
    alone_times: Dict[str, float],
    slack: float = 0.0,
) -> Dict[str, float]:
    """Serialized start times for a two-application scenario at one delay.

    The first application (by requested start time) keeps its start; every
    following application is pushed back until the previous one's I/O phase
    is expected to be over (its start plus its interference-free write time,
    plus ``slack``).
    """
    if len(scenario.applications) < 2:
        raise ExperimentError("coordination needs at least two applications")
    requested = {app.name: 0.0 for app in scenario.applications}
    requested[scenario.applications[1].name] = float(delta)
    order = sorted(requested, key=lambda name: (requested[name], name))
    starts: Dict[str, float] = {}
    previous_end: Optional[float] = None
    for name in order:
        start = requested[name]
        if previous_end is not None:
            start = max(start, previous_end + slack)
        starts[name] = start
        previous_end = start + alone_times[name]
    return starts


def evaluate_coordination(
    scenario: ScenarioConfig,
    deltas: Optional[Sequence[float]] = None,
    n_points: int = 5,
    slack: float = 0.0,
    seed: Optional[int] = None,
    label: str = "",
) -> CoordinationOutcome:
    """Compare interfering execution against coordinated (serialized) execution.

    Parameters
    ----------
    scenario:
        The two-application scenario to evaluate.
    deltas:
        Delays between the applications' *requested* I/O phases; defaults to
        a symmetric span around the interference window.
    n_points:
        Number of delays when ``deltas`` is not given.
    slack:
        Extra gap (seconds) the scheduler leaves between serialized phases.
    seed:
        Seed override for common random numbers across runs.
    label:
        Label stored on the outcome.
    """
    if len(scenario.applications) < 2:
        raise ExperimentError("coordination evaluation needs two applications")
    first = scenario.applications[0].name

    alone_scenario = scenario.with_applications(scenario.applications[:1])
    alone_result = simulate_scenario(alone_scenario, seed=seed)
    alone_times = {
        app.name: alone_result.write_time(first) for app in scenario.applications
    }
    if deltas is None:
        deltas = default_deltas(alone_times[first], n_points=n_points)

    points: List[CoordinationPoint] = []
    for delta in deltas:
        interfering = simulate_scenario(scenario.with_delay(float(delta)), seed=seed)

        starts = coordinated_start_times(scenario, float(delta), alone_times, slack=slack)
        serialized_apps = [
            app.with_start_time(starts[app.name]) for app in scenario.applications
        ]
        coordinated = simulate_scenario(
            scenario.with_applications(serialized_apps), seed=seed
        )

        requested_start = {app.name: 0.0 for app in scenario.applications}
        requested_start[scenario.applications[1].name] = float(delta)
        points.append(
            CoordinationPoint(
                delta=float(delta),
                interfering_write_times={
                    name: result.write_time for name, result in interfering.applications.items()
                },
                coordinated_write_times={
                    name: result.write_time for name, result in coordinated.applications.items()
                },
                interfering_completion_times={
                    name: result.end_time - requested_start[name]
                    for name, result in interfering.applications.items()
                },
                coordinated_completion_times={
                    name: result.end_time - requested_start[name]
                    for name, result in coordinated.applications.items()
                },
                scheduler_wait={
                    name: starts[name] - requested_start[name]
                    for name in requested_start
                },
            )
        )

    return CoordinationOutcome(
        points=points, alone_times=alone_times, label=label or scenario.label
    )
