"""Server partitioning.

The paper's Figure 7 shows that making each application target a distinct
set of servers removes both the interference and the unfairness — at the
cost of halving the parallelism available to each application.  This
mitigation applies that partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.scenario import ScenarioConfig
from repro.core.scenarios import partitioned_servers_scenario
from repro.mitigation.base import Mitigation

__all__ = ["ServerPartitioning"]


@dataclass
class ServerPartitioning(Mitigation):
    """Give each application a disjoint, equal share of the servers."""

    name: str = "server-partitioning"

    def apply(self, scenario: ScenarioConfig) -> ScenarioConfig:
        """Split the deployment's servers between the applications."""
        return partitioned_servers_scenario(scenario)
