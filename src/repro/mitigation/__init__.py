"""Interference-mitigation baselines.

The related work the paper discusses (Section V) proposes mitigations that
each target one point of contention.  This package implements the four whose
effect the paper itself probes, as scenario transformations plus an
evaluation harness, so they can be compared on equal footing:

* :mod:`repro.mitigation.aggregation`  — dedicated I/O processes (fewer
  writers per node; Damaris-style, paper Section IV-A2),
* :mod:`repro.mitigation.ratelimit`    — throttling the injection rate at the
  source (the effect the 1 G network produces accidentally, Section IV-A3),
* :mod:`repro.mitigation.partitioning` — giving each application a disjoint
  set of servers (Section IV-A5),
* :mod:`repro.mitigation.coordination` — server-side coordination that makes
  all servers serve applications in the same order (Song et al., reference
  [3]; approximated by a larger stripe so each request involves one server),
* :mod:`repro.mitigation.scheduling`   — cross-application I/O scheduling
  (CALCioM / I/O-aware batch scheduling): serialize overlapping I/O phases
  and account for the waiting time this introduces.
"""

from repro.mitigation.base import Mitigation, MitigationOutcome, evaluate_mitigation
from repro.mitigation.aggregation import DedicatedWriters
from repro.mitigation.ratelimit import SourceRateLimit
from repro.mitigation.partitioning import ServerPartitioning
from repro.mitigation.coordination import ServerSideCoordination
from repro.mitigation.scheduling import (
    CoordinationOutcome,
    CoordinationPoint,
    coordinated_start_times,
    evaluate_coordination,
)

__all__ = [
    "Mitigation",
    "MitigationOutcome",
    "evaluate_mitigation",
    "DedicatedWriters",
    "SourceRateLimit",
    "ServerPartitioning",
    "ServerSideCoordination",
    "CoordinationOutcome",
    "CoordinationPoint",
    "coordinated_start_times",
    "evaluate_coordination",
]
