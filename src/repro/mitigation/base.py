"""Common interface for interference mitigations.

A mitigation is a named transformation of a two-application scenario.  The
evaluation harness runs a Δ-graph sweep with and without the mitigation and
reports how the peak interference factor, the asymmetry, and the
interference-free performance change — the last one matters because the
paper warns that removing interference is worthless if it costs more
single-application performance than it saves (Section IV-A7).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.config.scenario import ScenarioConfig
from repro.core.delta import DeltaSweep, run_delta_sweep, default_deltas
from repro.errors import ExperimentError
from repro.model.simulator import simulate_scenario

__all__ = ["Mitigation", "MitigationOutcome", "evaluate_mitigation"]


class Mitigation(abc.ABC):
    """A named scenario transformation."""

    #: Human-readable name used in reports.
    name: str = "mitigation"

    @abc.abstractmethod
    def apply(self, scenario: ScenarioConfig) -> ScenarioConfig:
        """Return the scenario with the mitigation applied."""

    def describe(self) -> str:
        """One-line description (defaults to the class docstring's first line)."""
        doc = (self.__doc__ or "").strip().splitlines()
        return doc[0] if doc else self.name


@dataclass(frozen=True)
class MitigationOutcome:
    """Before/after comparison of one mitigation."""

    name: str
    baseline_alone_time: float
    mitigated_alone_time: float
    baseline_peak_if: float
    mitigated_peak_if: float
    baseline_asymmetry: float
    mitigated_asymmetry: float

    @property
    def interference_reduction(self) -> float:
        """Reduction of the peak interference factor (positive = better)."""
        return self.baseline_peak_if - self.mitigated_peak_if

    @property
    def alone_cost(self) -> float:
        """Relative cost to interference-free performance (positive = slower)."""
        return self.mitigated_alone_time / self.baseline_alone_time - 1.0

    def worth_it(self, max_alone_cost: float = 0.25) -> bool:
        """Does the mitigation cut interference without hurting the baseline much?

        The paper's warning (Section IV-A7): a configuration that removes
        interference but is far from optimal for a single application is not
        a real solution.
        """
        return self.interference_reduction > 0.2 and self.alone_cost <= max_alone_cost

    def summary(self) -> Dict[str, float]:
        """Flat dictionary for tables."""
        return {
            "alone_time_baseline": self.baseline_alone_time,
            "alone_time_mitigated": self.mitigated_alone_time,
            "peak_if_baseline": self.baseline_peak_if,
            "peak_if_mitigated": self.mitigated_peak_if,
            "asymmetry_baseline": self.baseline_asymmetry,
            "asymmetry_mitigated": self.mitigated_asymmetry,
            "interference_reduction": self.interference_reduction,
            "alone_cost": self.alone_cost,
        }


def _sweep(scenario: ScenarioConfig, deltas: Optional[Sequence[float]]) -> DeltaSweep:
    alone = scenario.with_applications(scenario.applications[:1])
    alone_result = simulate_scenario(alone)
    first = scenario.applications[0].name
    if deltas is None:
        deltas = default_deltas(alone_result.write_time(first), n_points=5)
    return run_delta_sweep(scenario, deltas, alone_result=alone_result)


def evaluate_mitigation(
    mitigation: Mitigation,
    scenario: ScenarioConfig,
    deltas: Optional[Sequence[float]] = None,
) -> MitigationOutcome:
    """Run the before/after comparison for one mitigation.

    Both the baseline and the mitigated configuration get their own
    interference-free baseline and Δ sweep (delays are chosen per
    configuration since the mitigation may change the interference window).
    """
    if len(scenario.applications) < 2:
        raise ExperimentError("mitigation evaluation needs a two-application scenario")
    baseline_sweep = _sweep(scenario, deltas)
    mitigated_scenario = mitigation.apply(scenario)
    mitigated_sweep = _sweep(mitigated_scenario, deltas)
    first = scenario.applications[0].name
    return MitigationOutcome(
        name=mitigation.name,
        baseline_alone_time=baseline_sweep.alone_time(first),
        mitigated_alone_time=mitigated_sweep.alone_time(
            mitigated_scenario.applications[0].name
        ),
        baseline_peak_if=baseline_sweep.peak_interference_factor(),
        mitigated_peak_if=mitigated_sweep.peak_interference_factor(),
        baseline_asymmetry=baseline_sweep.asymmetry_index(),
        mitigated_asymmetry=mitigated_sweep.asymmetry_index(),
    )
