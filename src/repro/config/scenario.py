"""The full scenario description consumed by the simulator.

A :class:`ScenarioConfig` bundles a platform, a file-system deployment, the
list of applications, and the simulation control knobs (step size, horizon,
seed, tracing).  It validates global consistency — enough compute nodes for
all applications, server targets within the deployment — so that the model
can trust its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.config.control import SteppingPolicy, default_stepping_policy
from repro.config.filesystem import FileSystemConfig
from repro.config.platform import PlatformConfig
from repro.config.workload import ApplicationSpec
from repro.errors import ConfigurationError
from repro.sim.tracing import TraceConfig

__all__ = ["SimulationControl", "ScenarioConfig"]


@dataclass(frozen=True)
class SimulationControl:
    """Simulation control parameters.

    Attributes
    ----------
    step:
        Fixed step (seconds) of the fluid model update.  ``None`` selects an
        adaptive default based on the expected run duration (about 1/2000 of
        the estimated phase length, clamped to ``[min_step, max_step]``).
    min_step / max_step:
        Bounds for the adaptive step.
    max_time:
        Hard limit on simulated time; exceeding it raises an error, which
        protects sweeps against pathological configurations.
    seed:
        Master seed of the run's random streams.
    trace:
        Trace categories to record.
    stepping:
        Time-advance policy of the simulation core
        (:class:`~repro.config.control.SteppingPolicy`).  ``None`` — the
        default — resolves to the process-wide default policy at run time
        (``fixed`` unless overridden via
        :func:`repro.config.control.stepping_policy`).
    """

    step: Optional[float] = None
    min_step: float = 2.0e-3
    max_step: float = 25.0e-3
    max_time: float = 36000.0
    seed: int = 20160523
    trace: TraceConfig = field(default_factory=TraceConfig)
    stepping: Optional[SteppingPolicy] = None

    def __post_init__(self) -> None:
        if self.step is not None and self.step <= 0:
            raise ConfigurationError("step must be positive when given")
        if self.min_step <= 0 or self.max_step <= 0:
            raise ConfigurationError("step bounds must be positive")
        if self.min_step > self.max_step:
            raise ConfigurationError("min_step must be <= max_step")
        if self.max_time <= 0:
            raise ConfigurationError("max_time must be positive")

    def resolve_step(self, expected_duration: float) -> float:
        """Pick the actual step for a run expected to last ``expected_duration``."""
        if self.step is not None:
            return self.step
        if expected_duration <= 0:
            return self.min_step
        candidate = expected_duration / 2000.0
        return min(max(candidate, self.min_step), self.max_step)

    def resolve_stepping(self) -> SteppingPolicy:
        """The effective stepping policy of a run using this control block."""
        if self.stepping is not None:
            return self.stepping
        return default_stepping_policy()

    def with_stepping(self, stepping: Optional[SteppingPolicy]) -> "SimulationControl":
        """Return a copy with a different (or cleared) stepping policy."""
        return replace(self, stepping=stepping)


@dataclass(frozen=True)
class ScenarioConfig:
    """A complete, validated experiment scenario.

    Attributes
    ----------
    platform:
        Client-side hardware and network.
    filesystem:
        The PVFS-like deployment.
    applications:
        Application groups; they are placed on disjoint, contiguous node
        ranges in the order given.
    control:
        Simulation control knobs.
    label:
        Free-form label used in reports.
    """

    platform: PlatformConfig
    filesystem: FileSystemConfig
    applications: Tuple[ApplicationSpec, ...]
    control: SimulationControl = field(default_factory=SimulationControl)
    label: str = ""

    def __post_init__(self) -> None:
        if not self.applications:
            raise ConfigurationError("a scenario needs at least one application")
        names = [app.name for app in self.applications]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate application names: {names}")
        total_nodes = sum(app.n_nodes for app in self.applications)
        if total_nodes > self.platform.n_client_nodes:
            raise ConfigurationError(
                f"applications need {total_nodes} nodes but the platform has "
                f"{self.platform.n_client_nodes}"
            )
        for app in self.applications:
            if app.procs_per_node > self.platform.cores_per_node:
                raise ConfigurationError(
                    f"application {app.name!r} uses {app.procs_per_node} processes per "
                    f"node but nodes have {self.platform.cores_per_node} cores"
                )
            if app.target_servers is not None:
                bad = [s for s in app.target_servers if s >= self.filesystem.n_servers]
                if bad:
                    raise ConfigurationError(
                        f"application {app.name!r} targets servers {bad} but the "
                        f"deployment has only {self.filesystem.n_servers} servers"
                    )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def n_applications(self) -> int:
        """Number of application groups."""
        return len(self.applications)

    def node_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Half-open node index range assigned to each application."""
        ranges = []
        start = 0
        for app in self.applications:
            ranges.append((start, start + app.n_nodes))
            start += app.n_nodes
        return tuple(ranges)

    def application(self, name: str) -> ApplicationSpec:
        """Look up an application by name."""
        for app in self.applications:
            if app.name == name:
                return app
        raise KeyError(f"no application named {name!r}")

    def app_servers(self, app: ApplicationSpec) -> Tuple[int, ...]:
        """Servers targeted by ``app`` (all servers unless restricted)."""
        if app.target_servers is None:
            return self.filesystem.all_servers
        return app.target_servers

    def total_bytes(self) -> float:
        """Total bytes written by all applications."""
        return sum(app.total_bytes for app in self.applications)

    def estimate_duration(self) -> float:
        """Crude a-priori estimate of the run duration (for step selection).

        Uses the slowest plausible path: total bytes over the smaller of the
        aggregate device bandwidth and the aggregate ingest bandwidth, plus
        application start offsets.
        """
        fs = self.filesystem
        device_bw = fs.device.effective_write_bw(
            n_streams=max(sum(a.n_processes for a in self.applications), 1),
            granularity=fs.stripe_size,
        )
        if device_bw == float("inf"):
            device_bw = fs.server.ingest_bw
        per_server = min(device_bw, fs.server.ingest_bw)
        aggregate = per_server * fs.n_servers
        span = max((app.start_time for app in self.applications), default=0.0) - min(
            (app.start_time for app in self.applications), default=0.0
        )
        return self.total_bytes() / max(aggregate, 1.0) + span + 1.0

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #

    def with_applications(self, applications: Sequence[ApplicationSpec]) -> "ScenarioConfig":
        """Return a copy with a different set of applications."""
        return replace(self, applications=tuple(applications))

    def with_filesystem(self, filesystem: FileSystemConfig) -> "ScenarioConfig":
        """Return a copy with a different file-system deployment."""
        return replace(self, filesystem=filesystem)

    def with_platform(self, platform: PlatformConfig) -> "ScenarioConfig":
        """Return a copy with a different platform."""
        return replace(self, platform=platform)

    def with_control(self, control: SimulationControl) -> "ScenarioConfig":
        """Return a copy with different simulation control knobs."""
        return replace(self, control=control)

    def with_stepping(self, stepping: Optional[SteppingPolicy]) -> "ScenarioConfig":
        """Return a copy whose control block pins the given stepping policy."""
        return replace(self, control=self.control.with_stepping(stepping))

    def with_delay(self, delay: float, second_app: str | None = None) -> "ScenarioConfig":
        """Return a copy where the second application starts ``delay`` seconds
        after the first (negative delays start it earlier).

        The first application keeps ``start_time=0``; the application named
        ``second_app`` (default: the second in the list) starts at ``delay``.
        This is the knob the Δ-graph experiments sweep.
        """
        if len(self.applications) < 2:
            raise ConfigurationError("with_delay needs at least two applications")
        target = second_app or self.applications[1].name
        new_apps = []
        for app in self.applications:
            if app.name == target:
                new_apps.append(app.with_start_time(float(delay)))
            else:
                new_apps.append(app.with_start_time(0.0))
        return replace(self, applications=tuple(new_apps))

    def describe(self) -> str:
        """Multi-line human-readable description for logs and reports."""
        lines = [
            f"scenario {self.label or '(unnamed)'}:",
            f"  platform:   {self.platform.describe()}",
            f"  filesystem: {self.filesystem.describe()}",
        ]
        for app in self.applications:
            lines.append(f"  {app.describe()}")
        return "\n".join(lines)
