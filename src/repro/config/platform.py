"""Compute-platform configuration.

Describes the client side of the testbed: how many compute nodes are
available, how many cores each has, how fast a single process can push data
through its own user-space copy path, and the storage network connecting the
nodes to the servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import units
from repro.config.network import NetworkConfig
from repro.errors import ConfigurationError

__all__ = ["PlatformConfig"]


@dataclass(frozen=True)
class PlatformConfig:
    """Client-side hardware description.

    Attributes
    ----------
    n_client_nodes:
        Number of compute nodes available for applications.
    cores_per_node:
        Cores per compute node (the paper's paravance nodes have 16).
    process_copy_bw:
        Bandwidth (bytes/s) at which a single client process can prepare and
        copy its data into the I/O stack.  This per-process, unshared cost is
        what keeps the Table I RAM-backend slowdown below 2x.
    network:
        Storage-network description.
    name:
        Human-readable label (e.g. ``"grid5000-paravance"``).
    """

    n_client_nodes: int = 60
    cores_per_node: int = 16
    process_copy_bw: float = 3600 * units.MiB
    network: NetworkConfig = field(default_factory=NetworkConfig)
    name: str = "cluster"

    def __post_init__(self) -> None:
        if self.n_client_nodes <= 0:
            raise ConfigurationError("n_client_nodes must be positive")
        if self.cores_per_node <= 0:
            raise ConfigurationError("cores_per_node must be positive")
        if self.process_copy_bw <= 0:
            raise ConfigurationError("process_copy_bw must be positive")

    @property
    def total_cores(self) -> int:
        """Total number of client cores on the platform."""
        return self.n_client_nodes * self.cores_per_node

    def with_network(self, network: NetworkConfig) -> "PlatformConfig":
        """Return a copy using a different storage network."""
        return replace(self, network=network)

    def with_nodes(self, n_client_nodes: int) -> "PlatformConfig":
        """Return a copy with a different number of compute nodes."""
        return replace(self, n_client_nodes=int(n_client_nodes))

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.name}: {self.n_client_nodes} nodes x {self.cores_per_node} cores, "
            f"{self.network.name}"
        )
