"""Configuration dataclasses and presets.

Everything the simulator needs to know about the platform, the parallel file
system deployment, and the workloads is described by small, validated,
immutable-ish dataclasses defined here:

* :mod:`repro.config.network`   — NICs, link rates, TCP-like transport knobs,
* :mod:`repro.config.server`    — per-server ingest, buffering, caching,
* :mod:`repro.config.filesystem`— the PVFS-like deployment (stripe, sync, devices),
* :mod:`repro.config.platform`  — compute-node hardware,
* :mod:`repro.config.workload`  — access patterns and application groups,
* :mod:`repro.config.scenario`  — the full experiment description,
* :mod:`repro.config.control`   — the stepping policy of the simulation core,
* :mod:`repro.config.presets`   — paper-scale and reduced-scale presets
  modelled after the Grid'5000 parasilo/paravance clusters used in the paper.

The split mirrors the paper's "potential points of contention" (Figure 1):
network interface, storage network, file-system servers, and backend devices.
"""

from repro.config.network import NetworkConfig, TransportConfig
from repro.config.platform import PlatformConfig
from repro.config.server import ServerConfig
from repro.config.filesystem import FileSystemConfig, SyncMode
from repro.config.workload import AccessKind, ApplicationSpec, PatternSpec
from repro.config.scenario import ScenarioConfig, SimulationControl
from repro.config.control import (
    SteppingMode,
    SteppingPolicy,
    default_stepping_policy,
    set_default_stepping_policy,
    stepping_policy,
)
from repro.config.presets import (
    PresetName,
    grid5000_platform,
    make_multi_app_scenario,
    make_scenario,
    make_single_app_scenario,
    paper_scale,
    reduced_scale,
    tiny_scale,
)

__all__ = [
    "NetworkConfig",
    "TransportConfig",
    "PlatformConfig",
    "ServerConfig",
    "FileSystemConfig",
    "SyncMode",
    "AccessKind",
    "PatternSpec",
    "ApplicationSpec",
    "ScenarioConfig",
    "SimulationControl",
    "SteppingMode",
    "SteppingPolicy",
    "default_stepping_policy",
    "set_default_stepping_policy",
    "stepping_policy",
    "PresetName",
    "grid5000_platform",
    "make_scenario",
    "make_single_app_scenario",
    "make_multi_app_scenario",
    "paper_scale",
    "reduced_scale",
    "tiny_scale",
]
