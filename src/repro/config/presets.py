"""Scenario presets.

Three scales are provided:

* ``paper``   — the dimensions of the paper's Grid'5000 campaign
  (2 x 30 nodes x 16 cores writing 64 MiB each to 12 servers);
* ``reduced`` — the default for benchmarks: same structure, roughly 1/10th of
  the processes and data, with server buffering and transport time constants
  rescaled so that the *regimes* (which component saturates, when Incast
  appears) match the paper-scale behaviour while a full Δ-graph sweep runs in
  seconds;
* ``tiny``    — for unit/integration tests: small enough that a simulation
  finishes in a few hundredths of a second of wall time.

The helper :func:`make_scenario` builds a complete two-application
:class:`~repro.config.scenario.ScenarioConfig` from a preset plus the knobs
the paper sweeps (device, sync mode, pattern, stripe size, number of servers,
writers per node, network, delay, targeted servers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple, Union

from repro import units
from repro.config.control import SteppingPolicy
from repro.config.filesystem import FileSystemConfig, SyncMode
from repro.config.network import NetworkConfig, TransportConfig
from repro.config.platform import PlatformConfig
from repro.config.scenario import ScenarioConfig, SimulationControl
from repro.config.server import ServerConfig
from repro.config.workload import AccessKind, ApplicationSpec, PatternSpec
from repro.errors import ConfigurationError
from repro.sim.tracing import TraceConfig
from repro.storage import device_by_name
from repro.storage.device import DeviceSpec

__all__ = [
    "PresetName",
    "ScalePreset",
    "paper_scale",
    "reduced_scale",
    "tiny_scale",
    "get_scale",
    "grid5000_platform",
    "make_filesystem",
    "make_scenario",
    "make_single_app_scenario",
    "make_multi_app_scenario",
]


class PresetName(str, enum.Enum):
    """Names of the built-in scales."""

    PAPER = "paper"
    REDUCED = "reduced"
    TINY = "tiny"


@dataclass(frozen=True)
class ScalePreset:
    """All scale-dependent constants of a scenario family.

    Attributes
    ----------
    name:
        Preset label.
    nodes_per_app / procs_per_node:
        Default size of each of the two application groups.
    n_servers:
        Default number of PVFS servers.
    bytes_per_process:
        Default volume written by each process in one I/O phase.
    node_injection_bw:
        Effective per-node injection goodput on the 10G network.
    server_ingest_bw:
        Per-server request-processing byte rate.
    server_buffer:
        Per-server receive/staging buffer (the Incast knob).
    fragment_op_cost:
        Per-fragment CPU cost at the server.
    rto:
        Transport retransmission timeout (scaled with the run duration).
    rtt:
        Base network round-trip time.
    collective_overhead:
        Synchronization cost between consecutive collective operations.
    page_cache:
        Per-server write-back cache capacity (sync OFF).
    seed:
        Default master seed.
    """

    name: str
    nodes_per_app: int
    procs_per_node: int
    n_servers: int
    bytes_per_process: float
    node_injection_bw: float
    server_ingest_bw: float
    server_buffer: float
    fragment_op_cost: float
    rto: float
    rtt: float
    collective_overhead: float
    page_cache: float
    seed: int = 20160523

    @property
    def procs_per_app(self) -> int:
        """Number of processes in each application group."""
        return self.nodes_per_app * self.procs_per_node

    @property
    def total_clients(self) -> int:
        """Total number of client processes across both applications."""
        return 2 * self.procs_per_app


def paper_scale() -> ScalePreset:
    """The dimensions of the paper's campaign (60 nodes / 960 cores)."""
    return ScalePreset(
        name="paper",
        nodes_per_app=30,
        procs_per_node=16,
        n_servers=12,
        bytes_per_process=64 * units.MiB,
        node_injection_bw=220 * units.MiB,
        server_ingest_bw=600 * units.MiB,
        server_buffer=4 * units.MiB,
        fragment_op_cost=0.30e-3,
        rto=0.2,
        rtt=0.2e-3,
        collective_overhead=80.0e-3,
        page_cache=96 * units.GiB,
    )


def reduced_scale() -> ScalePreset:
    """Benchmark default: ~1/10th of the paper's processes and data.

    The server ingest rate, buffer, RTO and collective overhead are rescaled
    so that the offered-load-to-capacity ratios and the ratio of transfer
    time to timeout stalls remain close to the paper-scale configuration.
    """
    return ScalePreset(
        name="reduced",
        nodes_per_app=12,
        procs_per_node=8,
        n_servers=12,
        bytes_per_process=32 * units.MiB,
        node_injection_bw=220 * units.MiB,
        server_ingest_bw=240 * units.MiB,
        server_buffer=768 * units.KiB,
        fragment_op_cost=0.30e-3,
        rto=0.05,
        rtt=0.2e-3,
        collective_overhead=30.0e-3,
        page_cache=8 * units.GiB,
    )


def tiny_scale() -> ScalePreset:
    """Test-suite scale: a simulation completes in milliseconds of wall time."""
    return ScalePreset(
        name="tiny",
        nodes_per_app=4,
        procs_per_node=4,
        n_servers=4,
        bytes_per_process=8 * units.MiB,
        node_injection_bw=220 * units.MiB,
        server_ingest_bw=240 * units.MiB,
        server_buffer=128 * units.KiB,
        fragment_op_cost=0.30e-3,
        rto=0.02,
        rtt=0.2e-3,
        collective_overhead=10.0e-3,
        page_cache=2 * units.GiB,
    )


_SCALES = {
    PresetName.PAPER: paper_scale,
    PresetName.REDUCED: reduced_scale,
    PresetName.TINY: tiny_scale,
}


def get_scale(scale: Union[str, PresetName, ScalePreset]) -> ScalePreset:
    """Resolve a scale given by name, enum, or preset object."""
    if isinstance(scale, ScalePreset):
        return scale
    if isinstance(scale, PresetName):
        return _SCALES[scale]()
    try:
        return _SCALES[PresetName(str(scale).lower())]()
    except ValueError as exc:
        raise ConfigurationError(
            f"unknown scale {scale!r}; expected one of "
            f"{[p.value for p in PresetName]}"
        ) from exc


# --------------------------------------------------------------------------- #
# Platform and scenario builders
# --------------------------------------------------------------------------- #


def grid5000_platform(
    scale: Union[str, PresetName, ScalePreset] = PresetName.REDUCED,
    network: str = "10g",
) -> PlatformConfig:
    """Platform modelled after the Grid'5000 parasilo/paravance clusters.

    Parameters
    ----------
    scale:
        Scale preset (affects node counts and transport time constants).
    network:
        ``"10g"`` (default), ``"1g"`` for the throttled configuration of
        Figure 5, or ``"ib"`` / ``"infiniband"`` for a lossless credit-based
        network (the paper's future-work question).
    """
    preset = get_scale(scale)
    transport = TransportConfig(rto=preset.rto, established_memory=preset.rto)
    key = network.strip().lower()
    if key in ("10g", "10 g", "10gbps", "default"):
        net = NetworkConfig(
            client_nic_bw=units.gbit_per_s(10),
            server_nic_bw=units.gbit_per_s(10),
            node_injection_bw=preset.node_injection_bw,
            rtt=preset.rtt,
            transport=transport,
            name="10G Ethernet",
        )
    elif key in ("1g", "1 g", "1gbps"):
        net = NetworkConfig(
            client_nic_bw=units.gbit_per_s(1),
            server_nic_bw=units.gbit_per_s(10),
            node_injection_bw=preset.node_injection_bw,
            rtt=preset.rtt * 1.25,
            transport=transport,
            name="1G Ethernet",
        )
    elif key in ("ib", "infiniband", "lossless"):
        lossless = TransportConfig.credit_based(
            rto=preset.rto, established_memory=preset.rto
        )
        net = NetworkConfig(
            client_nic_bw=units.gbit_per_s(56),
            server_nic_bw=units.gbit_per_s(56),
            node_injection_bw=preset.node_injection_bw,
            rtt=preset.rtt * 0.25,
            transport=lossless,
            name="FDR InfiniBand (lossless)",
        )
    else:
        raise ConfigurationError(
            f"unknown network {network!r}; use '10g', '1g' or 'infiniband'"
        )
    return PlatformConfig(
        n_client_nodes=2 * preset.nodes_per_app,
        cores_per_node=max(preset.procs_per_node, 16),
        process_copy_bw=3600 * units.MiB,
        network=net,
        name=f"grid5000-{preset.name}",
    )


def _build_pattern(
    preset: ScalePreset,
    pattern: Union[str, AccessKind, PatternSpec],
    request_size: Optional[float],
    bytes_per_process: Optional[float],
) -> PatternSpec:
    if isinstance(pattern, PatternSpec):
        spec = pattern
    else:
        kind = pattern if isinstance(pattern, AccessKind) else AccessKind(str(pattern).lower())
        volume = bytes_per_process if bytes_per_process is not None else preset.bytes_per_process
        if kind is AccessKind.CONTIGUOUS:
            spec = PatternSpec.contiguous(
                bytes_per_process=volume,
                collective_overhead=preset.collective_overhead,
            )
            if request_size is not None:
                spec = spec.with_request_size(request_size)
        else:
            spec = PatternSpec.strided(
                bytes_per_process=volume,
                request_size=request_size if request_size is not None else 256 * units.KiB,
                collective_overhead=preset.collective_overhead,
            )
    return spec


def make_filesystem(
    scale: Union[str, PresetName, ScalePreset] = PresetName.REDUCED,
    *,
    device: Union[str, DeviceSpec] = "hdd",
    sync_mode: Union[str, SyncMode, bool] = SyncMode.SYNC_ON,
    stripe_size: float = 64 * units.KiB,
    n_servers: Optional[int] = None,
) -> FileSystemConfig:
    """Build the PVFS-like deployment of a scale preset.

    Shared by :func:`make_scenario` and the scenario-library builders
    (:mod:`repro.scenarios`), so every entry point resolves device names,
    sync modes and the preset's server constants identically.
    """
    preset = get_scale(scale)
    device_spec = device_by_name(device) if isinstance(device, str) else device
    if isinstance(sync_mode, bool):
        mode = SyncMode.SYNC_ON if sync_mode else SyncMode.SYNC_OFF
    elif isinstance(sync_mode, str):
        mode = SyncMode(sync_mode)
    else:
        mode = sync_mode
    if mode is SyncMode.NULL_AIO:
        device_spec = device_by_name("null")
    server_cfg = ServerConfig(
        ingest_bw=preset.server_ingest_bw,
        fragment_op_cost=preset.fragment_op_cost,
        buffer_bytes=preset.server_buffer,
        page_cache_bytes=preset.page_cache,
    )
    return FileSystemConfig(
        n_servers=n_servers if n_servers is not None else preset.n_servers,
        stripe_size=stripe_size,
        sync_mode=mode,
        device=device_spec,
        server=server_cfg,
        name="orangefs",
    )


def make_scenario(
    scale: Union[str, PresetName, ScalePreset] = PresetName.REDUCED,
    *,
    device: Union[str, DeviceSpec] = "hdd",
    sync_mode: Union[str, SyncMode, bool] = SyncMode.SYNC_ON,
    pattern: Union[str, AccessKind, PatternSpec] = AccessKind.CONTIGUOUS,
    request_size: Optional[float] = None,
    bytes_per_process: Optional[float] = None,
    stripe_size: float = 64 * units.KiB,
    n_servers: Optional[int] = None,
    nodes_per_app: Optional[int] = None,
    procs_per_node: Optional[int] = None,
    network: str = "10g",
    delay: float = 0.0,
    partition_servers: bool = False,
    seed: Optional[int] = None,
    trace: Optional[TraceConfig] = None,
    step: Optional[float] = None,
    stepping: Optional[SteppingPolicy] = None,
    label: str = "",
) -> ScenarioConfig:
    """Build the canonical two-application scenario of the paper.

    Two identically configured applications ("A" and "B") run on disjoint
    node sets and write to the same PVFS deployment; application B starts
    ``delay`` seconds after application A (negative = before).

    Parameters mirror the paper's experimental knobs; everything defaults to
    the paper's baseline (contiguous pattern, HDD backend, sync ON, 64 KiB
    stripes, 12 servers, all cores writing, 10G network, both applications
    targeting all servers).
    """
    preset = get_scale(scale)
    platform = grid5000_platform(preset, network=network)

    fs = make_filesystem(
        preset,
        device=device,
        sync_mode=sync_mode,
        stripe_size=stripe_size,
        n_servers=n_servers,
    )

    nodes = nodes_per_app if nodes_per_app is not None else preset.nodes_per_app
    procs = procs_per_node if procs_per_node is not None else preset.procs_per_node
    pattern_spec = _build_pattern(preset, pattern, request_size, bytes_per_process)

    targets_a: Optional[Tuple[int, ...]] = None
    targets_b: Optional[Tuple[int, ...]] = None
    if partition_servers:
        groups = fs.server_groups(2)
        targets_a, targets_b = groups[0], groups[1]

    app_a = ApplicationSpec(
        name="A",
        n_nodes=nodes,
        procs_per_node=procs,
        pattern=pattern_spec,
        start_time=0.0,
        target_servers=targets_a,
    )
    app_b = ApplicationSpec(
        name="B",
        n_nodes=nodes,
        procs_per_node=procs,
        pattern=pattern_spec,
        start_time=float(delay),
        target_servers=targets_b,
    )

    control = SimulationControl(
        step=step,
        seed=seed if seed is not None else preset.seed,
        trace=trace or TraceConfig(),
        stepping=stepping,
    )
    if platform.n_client_nodes < 2 * nodes:
        platform = platform.with_nodes(2 * nodes)
    return ScenarioConfig(
        platform=platform,
        filesystem=fs,
        applications=(app_a, app_b),
        control=control,
        label=label or f"{preset.name}/{fs.device.name}/{fs.sync_mode.value}",
    )


def make_single_app_scenario(
    scale: Union[str, PresetName, ScalePreset] = PresetName.REDUCED,
    **kwargs,
) -> ScenarioConfig:
    """Same as :func:`make_scenario` but with only application "A".

    Used to measure the interference-free baseline of Δ-graph sweeps and the
    "Alone" column of Table I.
    """
    scenario = make_scenario(scale, **kwargs)
    return scenario.with_applications(scenario.applications[:1])


def make_multi_app_scenario(
    scale: Union[str, PresetName, ScalePreset] = PresetName.REDUCED,
    n_apps: int = 3,
    *,
    start_times: Optional[Sequence[float]] = None,
    nodes_per_app: Optional[int] = None,
    partition_servers: bool = False,
    label: str = "",
    **kwargs,
) -> ScenarioConfig:
    """Scenario with ``n_apps`` identical applications contending on one deployment.

    The paper studies the two-application case; as machines host more and
    more concurrent applications (its motivation for exascale), the natural
    extension is to let ``n_apps`` identical groups write at once.  All other
    keyword arguments are those of :func:`make_scenario`.

    Parameters
    ----------
    n_apps:
        Number of identical application groups (named "A", "B", "C", ...).
    start_times:
        Optional per-application start times (default: all start at 0).
    nodes_per_app:
        Nodes per group; defaults to the preset's value (the platform is
        grown to fit all groups).
    partition_servers:
        Give each group its own disjoint slice of the servers instead of
        letting every group write to all of them.
    """
    if n_apps <= 0:
        raise ConfigurationError("n_apps must be positive")
    if start_times is not None and len(start_times) != n_apps:
        raise ConfigurationError("start_times must have one entry per application")
    preset = get_scale(scale)
    nodes = nodes_per_app if nodes_per_app is not None else preset.nodes_per_app

    base = make_scenario(
        scale, nodes_per_app=nodes, partition_servers=False, label=label, **kwargs
    )
    template = base.applications[0]
    groups: Tuple[Tuple[int, ...], ...] = ()
    if partition_servers:
        groups = base.filesystem.server_groups(n_apps)

    names = [chr(ord("A") + i) if i < 26 else f"app{i}" for i in range(n_apps)]
    apps = []
    for i, name in enumerate(names):
        app = ApplicationSpec(
            name=name,
            n_nodes=template.n_nodes,
            procs_per_node=template.procs_per_node,
            pattern=template.pattern,
            start_time=float(start_times[i]) if start_times is not None else 0.0,
            target_servers=groups[i] if partition_servers else None,
        )
        apps.append(app)

    platform = base.platform
    if platform.n_client_nodes < n_apps * nodes:
        platform = platform.with_nodes(n_apps * nodes)
    return ScenarioConfig(
        platform=platform,
        filesystem=base.filesystem,
        applications=tuple(apps),
        control=base.control,
        label=label or f"{base.label}/x{n_apps}",
    )


def scaled_preset(base: ScalePreset, **overrides) -> ScalePreset:
    """Return a copy of ``base`` with the given fields replaced."""
    return replace(base, **overrides)


def _as_tuple(values: Optional[Sequence[int]]) -> Optional[Tuple[int, ...]]:
    """Internal helper to normalize optional index sequences."""
    if values is None:
        return None
    return tuple(int(v) for v in values)
