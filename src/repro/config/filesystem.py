"""Parallel file-system deployment configuration.

Describes an OrangeFS/PVFS2-like deployment: how many servers, how files are
striped across them, whether each write is synchronized to the backend
("Sync ON") or left to kernel buffers ("Sync OFF"), and which backend device
each server uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro import units
from repro.config.server import ServerConfig
from repro.errors import ConfigurationError
from repro.storage.device import DeviceSpec
from repro.storage import device_by_name

__all__ = ["SyncMode", "FileSystemConfig"]


class SyncMode(enum.Enum):
    """Whether servers flush each request to the backend before acknowledging.

    * ``SYNC_ON`` — "Sync ON" in the paper: every request is written to the
      backend device before the acknowledgement; the device is on the
      critical path.
    * ``SYNC_OFF`` — data may stay in kernel buffers (the write-back cache);
      the device is off the critical path as long as memory lasts.
    * ``NULL_AIO`` — the Trove null-aio method: data is discarded; neither
      device nor cache is involved.
    """

    SYNC_ON = "sync-on"
    SYNC_OFF = "sync-off"
    NULL_AIO = "null-aio"

    @property
    def label(self) -> str:
        """Label matching the paper's figures."""
        return {
            SyncMode.SYNC_ON: "Sync ON",
            SyncMode.SYNC_OFF: "Sync OFF",
            SyncMode.NULL_AIO: "Null-aio",
        }[self]


@dataclass(frozen=True)
class FileSystemConfig:
    """A PVFS-like deployment.

    Attributes
    ----------
    n_servers:
        Number of storage servers (the paper deploys 4 to 24).
    stripe_size:
        Round-robin striping unit (bytes); PVFS default is 64 KiB.
    sync_mode:
        Synchronization policy (see :class:`SyncMode`).
    device:
        Backend device specification used by every server (the paper always
        uses homogeneous backends).
    server:
        Per-server resource description.
    name:
        Optional label for reports.
    """

    n_servers: int = 12
    stripe_size: float = 64 * units.KiB
    sync_mode: SyncMode = SyncMode.SYNC_ON
    device: DeviceSpec = field(default_factory=lambda: device_by_name("hdd"))
    server: ServerConfig = field(default_factory=ServerConfig)
    name: str = "pvfs"

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ConfigurationError("n_servers must be positive")
        if self.stripe_size <= 0:
            raise ConfigurationError("stripe_size must be positive")
        if not isinstance(self.sync_mode, SyncMode):
            raise ConfigurationError(f"sync_mode must be a SyncMode, got {self.sync_mode!r}")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def all_servers(self) -> Tuple[int, ...]:
        """Indices of every server in the deployment."""
        return tuple(range(self.n_servers))

    def server_groups(self, n_groups: int) -> Tuple[Tuple[int, ...], ...]:
        """Split the servers into ``n_groups`` contiguous, near-equal groups.

        Used by the "targeted servers" experiment (Figure 7): with two groups
        each application writes to its own half of the deployment.
        """
        if n_groups <= 0:
            raise ConfigurationError("n_groups must be positive")
        if n_groups > self.n_servers:
            raise ConfigurationError(
                f"cannot split {self.n_servers} servers into {n_groups} groups"
            )
        base = self.n_servers // n_groups
        extra = self.n_servers % n_groups
        groups = []
        start = 0
        for g in range(n_groups):
            size = base + (1 if g < extra else 0)
            groups.append(tuple(range(start, start + size)))
            start += size
        return tuple(groups)

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #

    def with_device(self, device: DeviceSpec | str) -> "FileSystemConfig":
        """Return a copy using a different backend device (spec or preset name)."""
        spec = device_by_name(device) if isinstance(device, str) else device
        return replace(self, device=spec)

    def with_sync(self, sync_mode: SyncMode | str | bool) -> "FileSystemConfig":
        """Return a copy with a different synchronization policy.

        Accepts a :class:`SyncMode`, the strings ``"sync-on"`` /
        ``"sync-off"`` / ``"null-aio"``, or a boolean (True = sync ON).
        """
        if isinstance(sync_mode, bool):
            mode = SyncMode.SYNC_ON if sync_mode else SyncMode.SYNC_OFF
        elif isinstance(sync_mode, str):
            try:
                mode = SyncMode(sync_mode)
            except ValueError as exc:
                raise ConfigurationError(f"unknown sync mode {sync_mode!r}") from exc
        else:
            mode = sync_mode
        return replace(self, sync_mode=mode)

    def with_stripe_size(self, stripe_size: float) -> "FileSystemConfig":
        """Return a copy with a different striping unit."""
        return replace(self, stripe_size=float(stripe_size))

    def with_servers(self, n_servers: int) -> "FileSystemConfig":
        """Return a copy with a different number of servers."""
        return replace(self, n_servers=int(n_servers))

    def with_server_config(self, server: ServerConfig) -> "FileSystemConfig":
        """Return a copy with different per-server resources."""
        return replace(self, server=server)

    def describe(self) -> str:
        """One-line human-readable description for reports."""
        return (
            f"{self.name}: {self.n_servers} servers, stripe "
            f"{units.bytes_to_human(self.stripe_size)}, {self.sync_mode.label}, "
            f"backend {self.device.name}"
        )


def _coerce_optional(value: Optional[Sequence[int]]) -> Optional[Tuple[int, ...]]:
    """Normalize an optional sequence of server indices (helper for callers)."""
    if value is None:
        return None
    return tuple(int(v) for v in value)
