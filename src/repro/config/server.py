"""Per-server configuration (the PVFS/OrangeFS server and its host).

The server model has three stages, mirroring the real data path the paper
studies (client → network → server buffer → Trove → backend device):

1. a **receive buffer** of bounded size into which the network delivers data;
   this is where flow control breaks down (the Incast problem),
2. an **ingest path** with a byte-rate cap (request processing, memory
   copies) and a per-fragment CPU cost (request handling, metadata, syscall
   overhead) — the Trove layer,
3. a **backend sink**: the storage device (sync ON), the page cache with a
   background flusher (sync OFF), or nothing (null-aio).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import units
from repro.errors import ConfigurationError

__all__ = ["ServerConfig"]


@dataclass(frozen=True)
class ServerConfig:
    """Static description of one storage server.

    Attributes
    ----------
    ingest_bw:
        Maximum rate (bytes/s) at which the server's request-processing path
        (network stack + Trove + memory copies) can absorb data, regardless
        of how fast the backend is.  This is what limits the aggregate
        throughput scaling of Figure 6.
    fragment_op_cost:
        CPU time (seconds) spent per request *fragment* (per stripe piece of
        a client request).  Small stripe sizes and small request sizes
        multiply the number of fragments and become op-bound — the effect
        behind Figures 8 and 9.
    buffer_bytes:
        Size of the receive/staging buffer between the network and the
        backend.  When the backend drains slowly this buffer fills up and the
        transport windows of the clients collapse (Incast).
    page_cache_bytes:
        Amount of host memory available to buffer writes when synchronization
        is disabled ("Sync OFF").  The paper's workloads fit in memory, so by
        default this is large.
    memory_bw:
        Bandwidth (bytes/s) of writing into the page cache (sync OFF path).
    flush_bw_fraction:
        Fraction of the backend device bandwidth used by the background
        flusher while clients are still writing (sync OFF).  Only matters
        when the page cache fills up.
    sync_write_unit:
        Granularity (bytes) at which the server issues synchronous writes to
        the backend when synchronization is enabled.  Together with the
        device's positioning cost this sets the effective sync-ON drain rate.
    """

    ingest_bw: float = 600 * units.MiB
    fragment_op_cost: float = 0.3e-3
    buffer_bytes: float = 8 * units.MiB
    page_cache_bytes: float = 96 * units.GiB
    memory_bw: float = 2600 * units.MiB
    flush_bw_fraction: float = 0.7
    sync_write_unit: float = 4 * units.MiB

    def __post_init__(self) -> None:
        if self.ingest_bw <= 0:
            raise ConfigurationError("ingest_bw must be positive")
        if self.fragment_op_cost < 0:
            raise ConfigurationError("fragment_op_cost must be non-negative")
        if self.buffer_bytes <= 0:
            raise ConfigurationError("buffer_bytes must be positive")
        if self.page_cache_bytes < 0:
            raise ConfigurationError("page_cache_bytes must be non-negative")
        if self.memory_bw <= 0:
            raise ConfigurationError("memory_bw must be positive")
        if not 0.0 < self.flush_bw_fraction <= 1.0:
            raise ConfigurationError("flush_bw_fraction must be in (0, 1]")
        if self.sync_write_unit <= 0:
            raise ConfigurationError("sync_write_unit must be positive")

    @property
    def ops_per_second(self) -> float:
        """Fragment-processing rate implied by :attr:`fragment_op_cost`."""
        if self.fragment_op_cost == 0:
            return float("inf")
        return 1.0 / self.fragment_op_cost

    def with_buffer(self, buffer_bytes: float) -> "ServerConfig":
        """Return a copy with a different receive-buffer size."""
        return replace(self, buffer_bytes=float(buffer_bytes))

    def with_ingest_bw(self, ingest_bw: float) -> "ServerConfig":
        """Return a copy with a different ingest byte-rate cap."""
        return replace(self, ingest_bw=float(ingest_bw))

    def scaled(self, factor: float) -> "ServerConfig":
        """Return a copy with buffer and cache scaled by ``factor``.

        Used by reduced-scale presets so that the ratio between in-flight
        data and buffer capacity — which controls when Incast appears —
        stays comparable to the paper-scale configuration.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return replace(
            self,
            buffer_bytes=self.buffer_bytes * factor,
            page_cache_bytes=self.page_cache_bytes * factor,
        )
