"""Network and transport configuration.

Two layers are described here:

* :class:`NetworkConfig` — the *physical* storage network: client and server
  NIC rates, the per-node effective injection bandwidth (the end-to-end
  goodput a compute node's I/O stack actually achieves, which on the paper's
  testbed is far below the raw 10 Gbps line rate), and the base round-trip
  time.

* :class:`TransportConfig` — the *TCP-like transport* the PVFS clients and
  servers talk over: congestion-window bounds, additive-increase /
  multiplicative-decrease parameters, the retransmission timeout, and the
  knobs of the Incast model (established-flow admission weight, collapse
  efficiency penalty).  These drive the flow-control phenomena the paper
  identifies as the root cause of unfair interference (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import units
from repro.errors import ConfigurationError

__all__ = ["NetworkConfig", "TransportConfig"]


@dataclass(frozen=True)
class TransportConfig:
    """Parameters of the TCP-like per-connection transport model.

    The model keeps one congestion window per (client process, server)
    connection and updates it once per simulation step:

    * additive increase when the connection got (nearly) the rate it asked
      for,
    * multiplicative decrease when the server buffer throttled it,
    * collapse to ``window_min`` plus a ``rto`` stall when it was starved for
      a full RTO — the Incast signature of the paper's Figure 10.

    Attributes
    ----------
    window_init:
        Initial congestion window of a fresh connection (bytes).
    window_min:
        Floor of the congestion window (bytes); a collapsed connection
        restarts from here.
    window_max:
        Cap of the congestion window (bytes).
    mss:
        Maximum segment size (bytes); used to express the additive-increase
        step and the "too small for fast retransmit" threshold.
    additive_increase_segments:
        Segments added to the window per round-trip of successful delivery.
    multiplicative_decrease:
        Factor applied to the window on a congestion signal (0 < f < 1).
    rto:
        Retransmission timeout (seconds): a starved connection stalls for
        this long before retrying with ``window_min``.
    starvation_fraction:
        A connection is considered starved in a step when it receives less
        than this fraction of the bandwidth it requested.
    established_weight:
        Admission weight of "established" connections (those that delivered
        bytes recently) relative to newcomers when the server buffer is
        oversubscribed.  Values > 1 reproduce the first-application advantage
        the paper observes with slow backends.
    established_memory:
        How long (seconds) a connection stays "established" after its last
        successful delivery.
    collapse_penalty:
        Fractional loss of server drain efficiency when all of its
        connections are stalled (linear in the stalled fraction).  Models the
        service "bubbles" caused by timeouts, which make a 10 G network
        perform *worse* than a throttled 1 G one (paper Section IV-A3).
    rwnd_overcommit:
        How far beyond the server buffer the clients collectively probe.  The
        per-connection flow-control window is
        ``rwnd_overcommit * buffer / n_active_connections``; values above 1
        reproduce TCP's probing beyond the available buffer, which is what
        turns a full buffer into losses and timeouts instead of smooth
        backpressure.
    incast_window_segments:
        A server enters the timeout-prone ("Incast") regime when its buffer
        share per active connection falls below this many MSS.  With only a
        couple of segments of window, a loss cannot be repaired by fast
        retransmit and degenerates into an RTO — the mechanism behind the
        paper's Figure 10/12.
    burst_loss_ratio:
        A connection's bursts are treated as loss-prone only when its NIC can
        deliver them this many times faster than its fair share of the server
        drain; throttled sources (the 1 G network of Figure 5) pace their
        packets and experience backpressure instead of losses.
    source_margin:
        A connection only counts as "window-limited" (and therefore
        loss-prone) when its window-permitted volume per step is below this
        fraction of its source-NIC share: sources running close to their NIC
        share are pacing-limited, not window-limited.
    max_backoff_exponent:
        Cap on the exponential backoff of the retransmission timeout
        (stall <= rto * 2**max_backoff_exponent).
    burst_escape_probability:
        Probability that a *bursty* connection (one without a running ACK
        clock: freshly started, or restarting after a timeout) manages to
        slip its burst into an Incast-regime server and re-establish itself.
        Failed attempts are whole-window losses that end in a timeout.  The
        low escape probability is what keeps the second application's windows
        collapsed while the first one keeps streaming (paper Figures 2(a), 11
        and 12).
    burst_reentry_probability:
        Escape probability for a connection that had already established an
        ACK clock earlier in its life and is merely recovering from a single
        timeout: retransmitting one segment into a full buffer is far easier
        than landing a fresh application's initial burst, so recovering
        incumbents re-enter quickly while true newcomers stay out.
    paced_timeout_hazard:
        Residual per-RTO probability that an ACK-clocked ("paced") connection
        suffers a timeout while its server is in the Incast regime.  Small:
        paced packets arrive as buffer space frees, so whole-window losses
        are rare for them — but not zero, which is why even the first
        application is visibly slowed in the paper's Figure 2(a).
    lossless:
        Credit-based (InfiniBand-like) flow control: a sender only transmits
        when the receiver has advertised buffer credits, so bursts are never
        dropped and the timeout-collapse (Incast) machinery never engages.
        Contention then degrades performance only through genuine resource
        sharing — the configuration the paper names as future work ("other
        types of network, e.g. InfiniBand").
    """

    window_init: float = 16 * units.KiB
    window_min: float = 4 * units.KiB
    window_max: float = 1 * units.MiB
    mss: float = 1500.0
    additive_increase_segments: float = 1.0
    multiplicative_decrease: float = 0.6
    rto: float = 0.2
    starvation_fraction: float = 0.12
    established_weight: float = 4.0
    established_memory: float = 0.02
    collapse_penalty: float = 0.35
    rwnd_overcommit: float = 2.0
    incast_window_segments: float = 4.0
    burst_loss_ratio: float = 8.0
    source_margin: float = 0.7
    max_backoff_exponent: int = 2
    burst_escape_probability: float = 0.1
    burst_reentry_probability: float = 0.7
    paced_timeout_hazard: float = 0.005
    lossless: bool = False

    def __post_init__(self) -> None:
        if self.window_min <= 0:
            raise ConfigurationError("window_min must be positive")
        if self.window_init < self.window_min:
            raise ConfigurationError("window_init must be >= window_min")
        if self.window_max < self.window_init:
            raise ConfigurationError("window_max must be >= window_init")
        if self.mss <= 0:
            raise ConfigurationError("mss must be positive")
        if not 0.0 < self.multiplicative_decrease < 1.0:
            raise ConfigurationError("multiplicative_decrease must be in (0, 1)")
        if self.additive_increase_segments <= 0:
            raise ConfigurationError("additive_increase_segments must be positive")
        if self.rto <= 0:
            raise ConfigurationError("rto must be positive")
        if not 0.0 <= self.starvation_fraction < 1.0:
            raise ConfigurationError("starvation_fraction must be in [0, 1)")
        if self.established_weight < 1.0:
            raise ConfigurationError("established_weight must be >= 1")
        if self.established_memory < 0:
            raise ConfigurationError("established_memory must be non-negative")
        if not 0.0 <= self.collapse_penalty <= 1.0:
            raise ConfigurationError("collapse_penalty must be in [0, 1]")
        if self.rwnd_overcommit <= 0:
            raise ConfigurationError("rwnd_overcommit must be positive")
        if self.incast_window_segments <= 0:
            raise ConfigurationError("incast_window_segments must be positive")
        if self.burst_loss_ratio <= 0:
            raise ConfigurationError("burst_loss_ratio must be positive")
        if not 0.0 < self.source_margin <= 1.0:
            raise ConfigurationError("source_margin must be in (0, 1]")
        if self.max_backoff_exponent < 0:
            raise ConfigurationError("max_backoff_exponent must be non-negative")
        if not 0.0 < self.burst_escape_probability <= 1.0:
            raise ConfigurationError("burst_escape_probability must be in (0, 1]")
        if not 0.0 < self.burst_reentry_probability <= 1.0:
            raise ConfigurationError("burst_reentry_probability must be in (0, 1]")
        if not 0.0 <= self.paced_timeout_hazard <= 1.0:
            raise ConfigurationError("paced_timeout_hazard must be in [0, 1]")

    @property
    def incast_window_threshold(self) -> float:
        """Buffer share (bytes) below which a server is in the Incast regime."""
        return self.incast_window_segments * self.mss

    @classmethod
    def credit_based(cls, **overrides) -> "TransportConfig":
        """A lossless, credit-based transport (InfiniBand-style flow control).

        Senders never lose bursts, so the Incast machinery is disabled and
        congestion manifests purely as backpressure.  Any field can still be
        overridden through ``overrides``.
        """
        params = dict(
            lossless=True,
            rwnd_overcommit=1.0,
            collapse_penalty=0.0,
            paced_timeout_hazard=0.0,
            burst_escape_probability=1.0,
            burst_reentry_probability=1.0,
        )
        params.update(overrides)
        return cls(**params)

    def scaled_time(self, factor: float) -> "TransportConfig":
        """Return a copy with all time constants multiplied by ``factor``.

        Reduced-scale presets shrink the data volume; scaling the RTO and the
        established-memory window by the same factor keeps the ratio between
        transfer times and timeout stalls — the dimensionless quantity the
        Incast behaviour depends on — comparable to the paper's testbed.
        """
        if factor <= 0:
            raise ConfigurationError("time scale factor must be positive")
        return replace(
            self,
            rto=self.rto * factor,
            established_memory=self.established_memory * factor,
        )


@dataclass(frozen=True)
class NetworkConfig:
    """Physical storage-network description.

    Attributes
    ----------
    client_nic_bw:
        Raw line rate of a compute node's NIC (bytes/s).
    server_nic_bw:
        Raw line rate of a storage server's NIC (bytes/s).
    node_injection_bw:
        Effective end-to-end injection goodput of one compute node's I/O
        stack (bytes/s).  On the paper's testbed the measured per-node goodput
        of the PVFS client path is a fraction of the 10 Gbps line rate; this
        is the parameter that makes "10 G vs 1 G" a ~1.8x difference rather
        than 10x (Figure 5).  The actual per-node cap used by the model is
        ``min(client_nic_bw, node_injection_bw)``.
    rtt:
        Base round-trip time between a client and a server (seconds),
        excluding queueing at the server buffer (added dynamically).
    transport:
        The TCP-like transport parameters.
    name:
        Human-readable label (e.g. ``"10G Ethernet"``).
    """

    client_nic_bw: float = units.gbit_per_s(10)
    server_nic_bw: float = units.gbit_per_s(10)
    node_injection_bw: float = 220 * units.MiB
    rtt: float = 0.2e-3
    transport: TransportConfig = field(default_factory=TransportConfig)
    name: str = "10G Ethernet"

    def __post_init__(self) -> None:
        if self.client_nic_bw <= 0:
            raise ConfigurationError("client_nic_bw must be positive")
        if self.server_nic_bw <= 0:
            raise ConfigurationError("server_nic_bw must be positive")
        if self.node_injection_bw <= 0:
            raise ConfigurationError("node_injection_bw must be positive")
        if self.rtt <= 0:
            raise ConfigurationError("rtt must be positive")

    @property
    def effective_node_bw(self) -> float:
        """Per-node injection cap: min of line rate and stack goodput."""
        return min(self.client_nic_bw, self.node_injection_bw)

    def with_bandwidth(self, client_nic_bw: float, name: str | None = None) -> "NetworkConfig":
        """Return a copy with a different client NIC line rate.

        Used by the Figure 5 experiment ("1 G vs 10 G"): when the line rate
        drops below the node's stack goodput, the line rate becomes the
        injection cap — which is exactly the throttling effect the paper
        exploits.
        """
        return replace(
            self,
            client_nic_bw=float(client_nic_bw),
            name=name if name is not None else self.name,
        )

    @classmethod
    def ten_gig(cls, transport: TransportConfig | None = None) -> "NetworkConfig":
        """The paper's default 10 Gbps Ethernet storage network."""
        return cls(
            client_nic_bw=units.gbit_per_s(10),
            server_nic_bw=units.gbit_per_s(10),
            node_injection_bw=220 * units.MiB,
            rtt=0.2e-3,
            transport=transport or TransportConfig(),
            name="10G Ethernet",
        )

    @classmethod
    def one_gig(cls, transport: TransportConfig | None = None) -> "NetworkConfig":
        """The throttled 1 Gbps Ethernet configuration of Figure 5."""
        return cls(
            client_nic_bw=units.gbit_per_s(1),
            server_nic_bw=units.gbit_per_s(10),
            node_injection_bw=220 * units.MiB,
            rtt=0.25e-3,
            transport=transport or TransportConfig(),
            name="1G Ethernet",
        )

    @classmethod
    def infiniband(cls, transport: TransportConfig | None = None) -> "NetworkConfig":
        """An FDR InfiniBand-like storage network (lossless, credit-based).

        The paper's future work asks how its findings transfer to other
        network types; this preset keeps the same node-injection goodput
        model but uses credit-based flow control, so the flow-control
        pathologies (Incast, unfairness) cannot occur and any remaining
        interference is genuine resource sharing.
        """
        return cls(
            client_nic_bw=units.gbit_per_s(56),
            server_nic_bw=units.gbit_per_s(56),
            node_injection_bw=220 * units.MiB,
            rtt=0.05e-3,
            transport=transport or TransportConfig.credit_based(),
            name="FDR InfiniBand (lossless)",
        )
