"""Workload configuration: access patterns and application groups.

The paper's microbenchmark (an IOR-like MPI program) splits its processes
into two groups on disjoint node sets; each group performs a series of
collective write operations following one of two access patterns:

* **Contiguous** — each process issues one 64 MB write at offset
  ``rank * 64 MB`` of a shared file;
* **Strided** — each process issues 256 writes of 256 KB each, interleaved
  with the other processes' blocks (a one-dimensional strided layout).

:class:`PatternSpec` describes the pattern; :class:`ApplicationSpec`
describes one application group (size, placement, start time, which servers
it targets).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro import units
from repro.errors import ConfigurationError

__all__ = ["AccessKind", "PatternSpec", "ApplicationSpec"]


class AccessKind(enum.Enum):
    """Spatial layout of one application's accesses in its shared file."""

    #: One large contiguous request per process at ``rank * bytes_per_process``.
    CONTIGUOUS = "contiguous"
    #: ``n`` requests of ``request_size`` bytes per process, 1-D strided.
    STRIDED = "strided"


@dataclass(frozen=True)
class PatternSpec:
    """An application's access pattern.

    Attributes
    ----------
    kind:
        Contiguous or strided (see :class:`AccessKind`).
    bytes_per_process:
        Total bytes written by each process during one I/O phase.
    request_size:
        Size of each individual request.  For a contiguous pattern this
        defaults to ``bytes_per_process`` (one request per process); for a
        strided pattern it is the block size (the paper's default is 256 KiB).
    collective:
        Whether the operations are collective: all processes synchronize
        between consecutive requests (MPI-IO collective writes), which is how
        the paper's microbenchmark issues its series of operations.
    collective_overhead:
        Fixed synchronization/coordination cost (seconds) added between
        consecutive collective operations.  It models the MPI collective and
        two-phase-I/O overhead that does not contend with the other
        application; it is what keeps the interference factor of op-dominated
        strided runs below the full 2x.
    """

    kind: AccessKind = AccessKind.CONTIGUOUS
    bytes_per_process: float = 64 * units.MiB
    request_size: Optional[float] = None
    collective: bool = True
    collective_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.bytes_per_process <= 0:
            raise ConfigurationError("bytes_per_process must be positive")
        if self.request_size is not None and self.request_size <= 0:
            raise ConfigurationError("request_size must be positive")
        if self.request_size is not None and self.request_size > self.bytes_per_process:
            raise ConfigurationError(
                "request_size cannot exceed bytes_per_process "
                f"({self.request_size} > {self.bytes_per_process})"
            )
        if self.collective_overhead < 0:
            raise ConfigurationError("collective_overhead must be non-negative")

    # ------------------------------------------------------------------ #

    @property
    def effective_request_size(self) -> float:
        """Size of one request (defaults to the whole phase for contiguous)."""
        if self.request_size is not None:
            return float(self.request_size)
        if self.kind is AccessKind.CONTIGUOUS:
            return float(self.bytes_per_process)
        # The paper's strided default: 256 KiB blocks.
        return float(256 * units.KiB)

    @property
    def requests_per_process(self) -> int:
        """Number of requests each process issues during one phase."""
        return int(math.ceil(self.bytes_per_process / self.effective_request_size))

    @property
    def last_request_size(self) -> float:
        """Size of the final (possibly short) request of each process."""
        full = self.effective_request_size
        remainder = self.bytes_per_process - full * (self.requests_per_process - 1)
        return remainder if remainder > 0 else full

    # ------------------------------------------------------------------ #

    @classmethod
    def contiguous(cls, bytes_per_process: float = 64 * units.MiB,
                   collective: bool = True,
                   collective_overhead: float = 0.0) -> "PatternSpec":
        """The paper's contiguous pattern (one write per process)."""
        return cls(
            kind=AccessKind.CONTIGUOUS,
            bytes_per_process=bytes_per_process,
            request_size=None,
            collective=collective,
            collective_overhead=collective_overhead,
        )

    @classmethod
    def strided(cls, bytes_per_process: float = 64 * units.MiB,
                request_size: float = 256 * units.KiB,
                collective: bool = True,
                collective_overhead: float = 0.0) -> "PatternSpec":
        """The paper's strided pattern (many fixed-size blocks per process)."""
        return cls(
            kind=AccessKind.STRIDED,
            bytes_per_process=bytes_per_process,
            request_size=request_size,
            collective=collective,
            collective_overhead=collective_overhead,
        )

    def with_request_size(self, request_size: float) -> "PatternSpec":
        """Return a copy with a different block size (Figure 9 sweeps this)."""
        return replace(self, request_size=float(request_size))

    def describe(self) -> str:
        """One-line human-readable description."""
        if self.kind is AccessKind.CONTIGUOUS:
            return (
                f"contiguous, {units.bytes_to_human(self.bytes_per_process)} per process"
            )
        return (
            f"strided, {self.requests_per_process} x "
            f"{units.bytes_to_human(self.effective_request_size)} per process"
        )


@dataclass(frozen=True)
class ApplicationSpec:
    """One application group of the two-application experiment.

    Attributes
    ----------
    name:
        Label used in results ("A", "B", ...).
    n_nodes:
        Number of compute nodes the group runs on (dedicated to it).
    procs_per_node:
        Number of processes per node that perform I/O.  The paper's default
        is 16 (all cores); its "network interface" experiment reduces this to
        1 writer per node performing the node's whole share.
    pattern:
        Access pattern of the group.
    start_time:
        Simulated time (seconds) at which the group's I/O phase begins; the
        Δ-graph experiments vary the difference between the two groups'
        start times.
    target_servers:
        Optional explicit set of server indices the group writes to.  By
        default a group uses every server; the Figure 7 experiment assigns
        disjoint halves to the two applications.
    """

    name: str
    n_nodes: int
    procs_per_node: int
    pattern: PatternSpec
    start_time: float = 0.0
    target_servers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("application name must not be empty")
        if self.n_nodes <= 0:
            raise ConfigurationError("n_nodes must be positive")
        if self.procs_per_node <= 0:
            raise ConfigurationError("procs_per_node must be positive")
        if self.target_servers is not None:
            if len(self.target_servers) == 0:
                raise ConfigurationError("target_servers must not be empty if given")
            if len(set(self.target_servers)) != len(self.target_servers):
                raise ConfigurationError("target_servers must not contain duplicates")
            if any(s < 0 for s in self.target_servers):
                raise ConfigurationError("target_servers indices must be non-negative")

    # ------------------------------------------------------------------ #

    @property
    def n_processes(self) -> int:
        """Total number of I/O processes in the group."""
        return self.n_nodes * self.procs_per_node

    @property
    def total_bytes(self) -> float:
        """Total bytes the group writes during one phase."""
        return self.n_processes * self.pattern.bytes_per_process

    def with_start_time(self, start_time: float) -> "ApplicationSpec":
        """Return a copy starting its I/O phase at ``start_time``."""
        return replace(self, start_time=float(start_time))

    def with_target_servers(self, servers: Optional[Sequence[int]]) -> "ApplicationSpec":
        """Return a copy targeting an explicit set of servers (or all, if None)."""
        target = None if servers is None else tuple(int(s) for s in servers)
        return replace(self, target_servers=target)

    def with_pattern(self, pattern: PatternSpec) -> "ApplicationSpec":
        """Return a copy using a different access pattern."""
        return replace(self, pattern=pattern)

    def with_writers(self, n_nodes: int, procs_per_node: int,
                     keep_total_bytes: bool = True) -> "ApplicationSpec":
        """Return a copy with a different writer layout.

        When ``keep_total_bytes`` is True the per-process volume is rescaled
        so the group writes the same total amount — this is how the paper
        compares "16 clients per node" against "1 client per node writing
        16x the data" (Figure 4).
        """
        if n_nodes <= 0 or procs_per_node <= 0:
            raise ConfigurationError("writer counts must be positive")
        new_procs = n_nodes * procs_per_node
        pattern = self.pattern
        if keep_total_bytes:
            per_proc = self.total_bytes / new_procs
            pattern = replace(pattern, bytes_per_process=per_proc)
        return replace(self, n_nodes=int(n_nodes), procs_per_node=int(procs_per_node),
                       pattern=pattern)

    def describe(self) -> str:
        """One-line human-readable description."""
        servers = "all servers" if self.target_servers is None else (
            f"servers {list(self.target_servers)}"
        )
        return (
            f"app {self.name}: {self.n_nodes} nodes x {self.procs_per_node} procs, "
            f"{self.pattern.describe()}, start t={self.start_time:+.3f}s, {servers}"
        )
