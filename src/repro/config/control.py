"""Stepping-policy control of the simulation core.

The fluid model advances in discrete steps.  How the next step instant is
chosen is a *policy*, independent of the model itself:

* ``fixed``    — the seed behaviour: one step every ``dt`` seconds from the
  first application start to the last completion, regardless of whether
  anything in the model can change.  Deterministic, byte-identical to the
  historical output, and the default everywhere.
* ``adaptive`` — the stepper derives the largest safe step from the current
  rates (:meth:`repro.model.stepper.ModelStepper.next_bound`); quiescent
  intervals (every connection stalled in RTO, buffers empty, an application
  start still far away) collapse into a single jump to the next
  state-changing instant.

:class:`SteppingPolicy` is carried by
:class:`~repro.config.scenario.SimulationControl`.  Because the experiment
modules build their scenarios internally (they only take ``scale``/``quick``),
the module also keeps a *process-wide default policy*: scenarios whose
control block does not pin a policy resolve to it at run time.  The campaign
runner sets it (in every worker process) from the ``--stepping`` CLI flag via
:func:`stepping_policy`.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import ConfigurationError

__all__ = [
    "SteppingMode",
    "SteppingPolicy",
    "default_stepping_policy",
    "set_default_stepping_policy",
    "stepping_policy",
]


class SteppingMode(str, enum.Enum):
    """How the simulator chooses the instant of the next model step."""

    FIXED = "fixed"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class SteppingPolicy:
    """Time-advance policy of the simulation core.

    Attributes
    ----------
    mode:
        ``fixed`` (seed behaviour, the default) or ``adaptive``.
    tolerance:
        Fraction of the time-to-the-next-state-change an *active* adaptive
        step may cross.  Smaller values track the fixed-step trajectory more
        closely (at ``tolerance -> 0`` every active step is the base step);
        it also serves as the relative error budget the adaptive results are
        validated against.  Ignored in ``fixed`` mode.
    max_dt:
        Optional cap (seconds) on a single adaptive jump.  ``None`` leaves
        quiescent jumps bounded only by the next state-changing instant
        (RTO expiry, pending operation issue, scheduled control event).
    """

    mode: SteppingMode = SteppingMode.FIXED
    tolerance: float = 0.05
    max_dt: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.mode, SteppingMode):
            try:
                object.__setattr__(self, "mode", SteppingMode(str(self.mode).lower()))
            except ValueError:
                raise ConfigurationError(
                    f"unknown stepping mode {self.mode!r}; expected "
                    f"{[m.value for m in SteppingMode]}"
                ) from None
        if not 0.0 < self.tolerance <= 1.0:
            raise ConfigurationError(
                f"stepping tolerance must be in (0, 1], got {self.tolerance}"
            )
        if self.max_dt is not None and self.max_dt <= 0:
            raise ConfigurationError("max_dt must be positive when given")

    # ------------------------------------------------------------------ #

    @property
    def is_adaptive(self) -> bool:
        """True when the policy allows variable step sizes."""
        return self.mode is SteppingMode.ADAPTIVE

    @classmethod
    def fixed(cls) -> "SteppingPolicy":
        """The seed behaviour: a fixed-cadence step."""
        return cls(mode=SteppingMode.FIXED)

    @classmethod
    def adaptive(
        cls, tolerance: float = 0.05, max_dt: Optional[float] = None
    ) -> "SteppingPolicy":
        """Adaptive time advance with quiescence skipping."""
        return cls(mode=SteppingMode.ADAPTIVE, tolerance=tolerance, max_dt=max_dt)

    # ------------------------------------------------------------------ #
    # Transport (runner payloads, cache fingerprints)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return {
            "mode": self.mode.value,
            "tolerance": float(self.tolerance),
            "max_dt": None if self.max_dt is None else float(self.max_dt),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SteppingPolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        max_dt = data.get("max_dt")
        return cls(
            mode=SteppingMode(str(data.get("mode", "fixed"))),
            tolerance=float(data.get("tolerance", 0.05)),
            max_dt=None if max_dt is None else float(max_dt),
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        if not self.is_adaptive:
            return "fixed"
        cap = "unbounded" if self.max_dt is None else f"max_dt={self.max_dt:g}s"
        return f"adaptive (tolerance={self.tolerance:g}, {cap})"


# --------------------------------------------------------------------------- #
# Process-wide default policy
# --------------------------------------------------------------------------- #

_DEFAULT_POLICY = SteppingPolicy.fixed()


def default_stepping_policy() -> SteppingPolicy:
    """The policy scenarios resolve to when their control block pins none."""
    return _DEFAULT_POLICY


def set_default_stepping_policy(policy: Optional[SteppingPolicy]) -> SteppingPolicy:
    """Replace the process-wide default policy; returns the previous one.

    ``None`` restores the built-in ``fixed`` default.
    """
    global _DEFAULT_POLICY
    previous = _DEFAULT_POLICY
    _DEFAULT_POLICY = policy if policy is not None else SteppingPolicy.fixed()
    return previous


@contextmanager
def stepping_policy(policy: Optional[SteppingPolicy]) -> Iterator[SteppingPolicy]:
    """Scoped override of the process-wide default policy.

    ``None`` is a no-op (the current default stays in force), which lets
    callers thread an optional policy without branching::

        with stepping_policy(maybe_policy):
            run_campaign(...)
    """
    if policy is None:
        yield _DEFAULT_POLICY
        return
    previous = set_default_stepping_policy(policy)
    try:
        yield policy
    finally:
        set_default_stepping_policy(previous)
