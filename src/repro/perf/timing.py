"""Shared measurement primitive: min-of-N wall time in nanoseconds.

A single timed round on a busy single-CPU container is dominated by scheduler
noise; the *minimum* over a few repeats converges on the undisturbed cost and
is what every benchmark in this repo reports and what the CI regression gate
compares.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional, Tuple

__all__ = ["best_of_ns"]


def best_of_ns(
    runner: Callable[..., Any],
    repeats: int = 5,
    setup: Optional[Callable[[], Any]] = None,
) -> Tuple[int, Any]:
    """Run ``runner`` ``repeats`` times; return ``(min elapsed ns, last result)``.

    ``setup`` (untimed) builds a fresh argument for each repeat — benchmarks
    whose runner mutates state pass a factory here so every repeat measures
    the same work.  When ``setup`` is given, ``runner`` is called with its
    return value; otherwise with no arguments.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best: Optional[int] = None
    result: Any = None
    for _ in range(repeats):
        if setup is not None:
            argument = setup()
            start = time.perf_counter_ns()
            result = runner(argument)
        else:
            start = time.perf_counter_ns()
            result = runner()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return best, result
