"""Baseline comparison for the perf smoke gate.

Compares a freshly measured bench document against the committed
``BENCH_stepper.json`` and reports every scenario whose throughput fell
below ``min_ratio`` of the baseline.  Only scenario keys present in *both*
documents are compared (a tiny-scale smoke run gates only the tiny
scenarios of a full committed baseline).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import PerfError
from repro.perf.schema import validate_bench_document

__all__ = ["check_regression", "check_overhead", "format_summary"]


def check_regression(
    current: Dict,
    baseline: Dict,
    min_ratio: float = 0.7,
) -> List[str]:
    """Return one failure message per regressed scenario (empty = gate green).

    ``min_ratio`` is the allowed fraction of baseline throughput; the default
    0.7 fails the gate when steps/sec regress by more than 30%.
    """
    if not 0.0 < min_ratio <= 1.0:
        raise PerfError(f"min_ratio must be in (0, 1], got {min_ratio}")
    validate_bench_document(current)
    validate_bench_document(baseline)
    failures: List[str] = []
    base_scenarios = baseline["scenarios"]
    for key, entry in current["scenarios"].items():
        base = base_scenarios.get(key)
        if base is None:
            continue
        measured = float(entry["steps_per_sec"])
        reference = float(base["steps_per_sec"])
        if measured < min_ratio * reference:
            failures.append(
                f"{key}: {measured:.0f} steps/s is below {min_ratio:.0%} of the "
                f"baseline {reference:.0f} steps/s "
                f"(ratio {measured / reference:.2f})"
            )
    return failures


def check_overhead(
    current: Dict,
    baseline: Dict,
    max_overhead: float,
) -> List[str]:
    """Return one failure per scenario slower than ``baseline`` by more than
    ``max_overhead`` (empty = gate green).

    The telemetry-overhead gate: a measurement taken with telemetry
    *disabled* must stay within ``max_overhead`` (e.g. ``0.02`` for 2%) of
    the committed baseline's throughput, proving the disabled-path cost of
    the instrumentation is negligible.  The tighter sibling of
    :func:`check_regression` — same key-intersection semantics, but the
    bound is phrased as allowed slowdown instead of allowed ratio.
    """
    if not 0.0 <= max_overhead < 1.0:
        raise PerfError(f"max_overhead must be in [0, 1), got {max_overhead}")
    validate_bench_document(current)
    validate_bench_document(baseline)
    floor = 1.0 - max_overhead
    failures: List[str] = []
    base_scenarios = baseline["scenarios"]
    for key, entry in current["scenarios"].items():
        base = base_scenarios.get(key)
        if base is None:
            continue
        measured = float(entry["steps_per_sec"])
        reference = float(base["steps_per_sec"])
        if measured < floor * reference:
            overhead = 1.0 - measured / reference
            failures.append(
                f"{key}: {measured:.0f} steps/s is {overhead:.1%} below the "
                f"baseline {reference:.0f} steps/s "
                f"(allowed overhead {max_overhead:.1%})"
            )
    return failures


def format_summary(document: Dict) -> str:
    """Human-readable one-line-per-scenario summary of a bench document."""
    lines = []
    speedup = document.get("speedup", {})
    for key in sorted(document["scenarios"]):
        entry = document["scenarios"][key]
        line = f"{key:32s} {float(entry['steps_per_sec']):10.0f} steps/s"
        if key in speedup:
            line += f"   {float(speedup[key]):.2f}x vs reference"
        lines.append(line)
    return "\n".join(lines)
