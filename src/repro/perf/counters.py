"""Per-phase timing and allocation counters for the stepping kernel.

A :class:`StepProfiler` attaches to a
:class:`~repro.model.stepper.ModelStepper` via its ``profiler`` attribute.
While attached, every phase of every step is wrapped in a timing/allocation
probe; detached (the default), the stepper's hot path pays exactly one
``is None`` check per step, so profiling is strictly opt-in and zero-cost
when off.

Allocation counting uses :func:`sys.getallocatedblocks` deltas — the number
of live CPython memory blocks, which moves whenever NumPy materializes a new
array object.  It is a relative indicator (the probe itself costs a handful
of blocks transiently), good for answering "did this phase stop allocating?"
rather than byte-exact accounting.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["StepProfiler"]


class StepProfiler:
    """Accumulates per-phase wall time, call counts and allocation deltas."""

    def __init__(self) -> None:
        self._ns: Dict[str, int] = {}
        self._calls: Dict[str, int] = {}
        self._blocks: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager wrapping one phase of one step."""
        blocks_before = sys.getallocatedblocks()
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            elapsed = time.perf_counter_ns() - start
            blocks = sys.getallocatedblocks() - blocks_before
            self._ns[name] = self._ns.get(name, 0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1
            self._blocks[name] = self._blocks.get(name, 0) + blocks

    @property
    def phases(self) -> tuple:
        """Phase names seen so far, in first-seen order."""
        return tuple(self._ns)

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals: ns, calls, ns/call, allocation-block delta."""
        out: Dict[str, Dict[str, float]] = {}
        for name, ns in self._ns.items():
            calls = self._calls[name]
            out[name] = {
                "ns": int(ns),
                "calls": int(calls),
                "ns_per_call": ns / calls if calls else 0.0,
                "alloc_blocks": int(self._blocks[name]),
            }
        return out

    def reset(self) -> None:
        """Drop all accumulated counters."""
        self._ns.clear()
        self._calls.clear()
        self._blocks.clear()
