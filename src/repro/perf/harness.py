"""The canonical stepping-kernel benchmark and its ``BENCH_stepper.json``.

The harness measures *steps per second* of :meth:`ModelStepper.step` on a
fixed scenario set:

* ``active/*`` — the kernel alone: both applications started, the model in
  its contended active phase, stepped a fixed number of base steps with no
  engine or tracing overhead in the loop.  ``active/reduced-hdd-sync-on`` is
  the canonical active-phase scenario every speedup claim refers to.
* ``e2e/*`` — a complete :func:`simulate_scenario` run (engine, tracing and
  completion handling included), normalized by its own step count.

Every number is a min-of-N wall measurement (:func:`repro.perf.timing.best_of_ns`)
so single-CPU container noise does not leak into the committed trajectory.
The emitted document embeds a fixed *reference* — the same measurements taken
on the seed kernel right before the StepWorkspace rewrite, on the same
container class — and the per-scenario speedup against it.  Cross-machine
comparisons of absolute numbers are meaningless; the regression gate
(:mod:`repro.perf.compare`) therefore compares like with like: a fresh
measurement against the committed document from the same environment, with a
generous margin.
"""

from __future__ import annotations

import platform
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import PerfError
from repro.perf.counters import StepProfiler
from repro.perf.schema import BENCH_SCHEMA_V2
from repro.perf.timing import best_of_ns

__all__ = [
    "BENCH_SCHEMA_ID",
    "BenchScenario",
    "CANONICAL_SCENARIOS",
    "DEFAULT_BATCH_SIZES",
    "REFERENCE_BASELINE",
    "run_perf",
    "scenarios_for_scale",
]

BENCH_SCHEMA_ID = BENCH_SCHEMA_V2

#: Batch widths measured when ``repro-io perf`` runs with ``--batch`` and no
#: explicit sizes: the committed batched throughput curve.
DEFAULT_BATCH_SIZES: Tuple[int, ...] = (1, 8, 32, 128)

#: Steps measured per repeat of an ``active`` scenario — comfortably below
#: the ~220 steps the reduced contended scenario needs to complete, so the
#: model stays in its active phase for the whole measurement.
ACTIVE_STEPS = 150


@dataclass(frozen=True)
class BenchScenario:
    """One entry of the canonical scenario set."""

    key: str            #: stable document key, e.g. "active/reduced-hdd-sync-on"
    scale: str          #: preset scale ("tiny" | "reduced")
    device: str
    sync_mode: str
    kind: str           #: "active" (kernel-only loop) or "e2e" (full run)


CANONICAL_SCENARIOS: Tuple[BenchScenario, ...] = (
    BenchScenario("active/tiny-hdd-sync-on", "tiny", "hdd", "sync-on", "active"),
    BenchScenario("e2e/tiny-hdd-sync-on", "tiny", "hdd", "sync-on", "e2e"),
    BenchScenario("active/reduced-hdd-sync-on", "reduced", "hdd", "sync-on", "active"),
    BenchScenario("active/reduced-ssd-sync-off", "reduced", "ssd", "sync-off", "active"),
)

#: Throughput of the seed stepping kernel (before the StepWorkspace rewrite,
#: PR 3 tree), measured with this same harness (min of 5) on the repo's
#: single-CPU dev container.  Kept as the fixed reference the committed
#: ``BENCH_stepper.json`` reports its speedup against.
REFERENCE_BASELINE: Dict[str, object] = {
    "label": "seed stepping kernel before the StepWorkspace rewrite (PR 3 tree)",
    "scenarios": {
        "active/tiny-hdd-sync-on": {"steps_per_sec": 2772.30},
        "e2e/tiny-hdd-sync-on": {"steps_per_sec": 2721.91},
        "active/reduced-hdd-sync-on": {"steps_per_sec": 996.16},
        "active/reduced-ssd-sync-off": {"steps_per_sec": 1117.41},
    },
}


def scenarios_for_scale(scale: str) -> Tuple[BenchScenario, ...]:
    """The canonical scenarios measurable at ``scale``.

    ``tiny`` keeps only the tiny entries (the CI smoke set); ``reduced``
    measures everything.
    """
    if scale == "tiny":
        return tuple(s for s in CANONICAL_SCENARIOS if s.scale == "tiny")
    if scale == "reduced":
        return CANONICAL_SCENARIOS
    raise PerfError(f"unknown perf scale {scale!r}; expected 'tiny' or 'reduced'")


def _build_started(spec: BenchScenario):
    """A simulator with every application started, ready for kernel stepping."""
    from repro.config.presets import make_scenario
    from repro.model.simulator import IOPathSimulator
    from repro.sim.engine import Simulator

    scenario = make_scenario(spec.scale, device=spec.device, sync_mode=spec.sync_mode)
    runner = IOPathSimulator(scenario)
    engine = Simulator(start_time=0.0)
    for index in range(len(runner.state.applications)):
        runner.stepper.start_application(engine, index)
    return runner, engine


def _measure_active(spec: BenchScenario, repeats: int) -> Dict[str, object]:
    def setup():
        return _build_started(spec)

    def run(pair):
        runner, engine = pair
        dt = runner.step_size
        stepper = runner.stepper
        for _ in range(ACTIVE_STEPS):
            stepper.step(engine, dt)
            engine._now += dt  # advance manually; completion events are not measured

    best_ns, _ = best_of_ns(run, repeats=repeats, setup=setup)
    return {
        "scale": spec.scale,
        "kind": spec.kind,
        "n_steps": ACTIVE_STEPS,
        "best_ns": int(best_ns),
        "steps_per_sec": ACTIVE_STEPS / (best_ns / 1e9),
    }


def _measure_e2e(spec: BenchScenario, repeats: int) -> Dict[str, object]:
    from repro.config.presets import make_scenario
    from repro.model.simulator import simulate_scenario

    def setup():
        return make_scenario(spec.scale, device=spec.device, sync_mode=spec.sync_mode)

    def run(scenario):
        return simulate_scenario(scenario)

    best_ns, result = best_of_ns(run, repeats=repeats, setup=setup)
    n_steps = int(result.n_steps)
    return {
        "scale": spec.scale,
        "kind": spec.kind,
        "n_steps": n_steps,
        "best_ns": int(best_ns),
        "steps_per_sec": n_steps / (best_ns / 1e9),
    }


def _build_started_batch(batch_size: int):
    """A :class:`~repro.model.batch.BatchSimulator` of ``batch_size`` copies
    of the canonical tiny scenario, every member's applications started."""
    from repro.config.presets import make_scenario
    from repro.model.batch import BatchSimulator

    scenarios = [
        make_scenario("tiny", device="hdd", sync_mode="sync-on")
        for _ in range(batch_size)
    ]
    batch = BatchSimulator(scenarios)
    for member in batch.members:
        for index in range(len(member.sim.state.applications)):
            member.sim.stepper.start_application(member.engine, index)
    return batch


def _measure_batched(batch_size: int, repeats: int) -> Dict[str, object]:
    """Lockstep-kernel throughput at one batch width.

    Mirrors :func:`_measure_active` — same scenario, same step count, no
    engine in the loop — but advances ``batch_size`` members per
    :meth:`~repro.model.batch.BatchedStepper.step_batch` call.
    ``steps_per_sec`` is aggregate member-steps per second
    (``ACTIVE_STEPS * batch_size / wall``), directly comparable to the
    scalar ``active/tiny-hdd-sync-on`` number.
    """

    def setup():
        return _build_started_batch(batch_size)

    def run(batch):
        dt = batch.dt
        stepper = batch.stepper
        now = 0.0
        for _ in range(ACTIVE_STEPS):
            stepper.step_batch(now, dt)
            now += dt
            for member in batch.members:
                member.engine._now = now  # manual advance, as in _measure_active

    best_ns, _ = best_of_ns(run, repeats=repeats, setup=setup)
    return {
        "scale": "tiny",
        "kind": "batched",
        "batch": int(batch_size),
        "n_steps": ACTIVE_STEPS,
        "best_ns": int(best_ns),
        "steps_per_sec": ACTIVE_STEPS * batch_size / (best_ns / 1e9),
    }


def _profile_phases(spec: BenchScenario) -> Dict[str, Dict[str, float]]:
    """One instrumented (untimed) pass collecting per-phase counters."""
    runner, engine = _build_started(spec)
    profiler = StepProfiler()
    runner.stepper.profiler = profiler
    dt = runner.step_size
    for _ in range(ACTIVE_STEPS):
        runner.stepper.step(engine, dt)
        engine._now += dt
    runner.stepper.profiler = None
    return profiler.report()


def run_perf(
    scale: str = "reduced",
    repeats: int = 5,
    profile: bool = False,
    reference: Optional[Dict[str, object]] = None,
    batch_sizes: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Measure the canonical scenario set; return the bench document.

    ``batch_sizes`` adds one ``batched/tiny-hdd-sync-on@b{B}`` entry per
    width: the lockstep kernel advancing ``B`` copies of the tiny scenario
    per step (always measured at tiny scale, whatever ``scale`` is).

    The document validates against :func:`repro.perf.schema.validate_bench_document`
    and is what ``repro-io perf`` writes to ``BENCH_stepper.json``.
    """
    if repeats < 1:
        raise PerfError("repeats must be >= 1")
    if reference is None:
        reference = REFERENCE_BASELINE
    scenarios: Dict[str, Dict[str, object]] = {}
    for spec in scenarios_for_scale(scale):
        if spec.kind == "active":
            scenarios[spec.key] = _measure_active(spec, repeats)
        else:
            scenarios[spec.key] = _measure_e2e(spec, repeats)
    for batch_size in batch_sizes or ():
        if batch_size < 1:
            raise PerfError(f"batch sizes must be >= 1, got {batch_size}")
        key = f"batched/tiny-hdd-sync-on@b{int(batch_size)}"
        scenarios[key] = _measure_batched(int(batch_size), repeats)

    speedup: Dict[str, float] = {}
    ref_scenarios = reference.get("scenarios", {}) if reference else {}
    for key, entry in scenarios.items():
        ref = ref_scenarios.get(key)
        if ref:
            speedup[key] = float(entry["steps_per_sec"]) / float(ref["steps_per_sec"])

    document: Dict[str, object] = {
        "schema": BENCH_SCHEMA_ID,
        "python": platform.python_version(),
        "scale": scale,
        "repeats": int(repeats),
        "scenarios": scenarios,
        "reference": reference,
        "speedup": speedup,
    }
    if profile:
        document["phase_profile"] = {
            "scenario": "active/%s-hdd-sync-on" % ("tiny" if scale == "tiny" else "reduced"),
            "n_steps": ACTIVE_STEPS,
            "phases": _profile_phases(
                BenchScenario(
                    "profile", "tiny" if scale == "tiny" else "reduced",
                    "hdd", "sync-on", "active",
                )
            ),
        }
    return document
