"""Performance instrumentation for the stepping kernel.

The :mod:`repro.perf` package is the repo's perf trajectory in code form:

* :mod:`repro.perf.counters` — per-phase timing/allocation counters that
  attach to :class:`~repro.model.stepper.ModelStepper` (off by default,
  zero-cost when detached);
* :mod:`repro.perf.timing` — the min-of-N ``perf_counter_ns`` measurement
  primitive every benchmark shares;
* :mod:`repro.perf.harness` — the canonical scenario set and the runner that
  emits the schema'd ``BENCH_stepper.json`` document;
* :mod:`repro.perf.schema` — validation of that document;
* :mod:`repro.perf.compare` — the baseline-regression checker the CI smoke
  gate runs.

``repro-io perf`` is the CLI entry point.
"""

from repro.perf.compare import check_overhead, check_regression
from repro.perf.counters import StepProfiler
from repro.perf.harness import BENCH_SCHEMA_ID, run_perf, scenarios_for_scale
from repro.perf.schema import validate_bench_document
from repro.perf.timing import best_of_ns

__all__ = [
    "BENCH_SCHEMA_ID",
    "StepProfiler",
    "best_of_ns",
    "check_overhead",
    "check_regression",
    "run_perf",
    "scenarios_for_scale",
    "validate_bench_document",
]
