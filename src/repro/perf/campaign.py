"""The campaign-throughput benchmark and its ``BENCH_campaign.json``.

Where :mod:`repro.perf.harness` measures the stepping kernel in isolation,
this harness measures what the paper's workflows actually pay: end-to-end
interference-matrix wall time across the jobs × batch grid, cold (every task
simulated) and warm (every task a cache hit), with the telemetry-derived
executor utilization, batched share, and padding waste per cell — plus the
batched-kernel throughput curve so the committed document gates campaign
throughput *and* kernel throughput against one baseline.

Cross-machine absolute wall times are meaningless (and on a single-CPU
container ``jobs > 1`` adds pool overhead without parallel speedup), so the
regression gate (:func:`check_campaign_regression`) compares only the
machine-comparable quantities: batched-kernel steps/s against the committed
baseline, byte-identity of every cell's matrix (``identical``), and zero
ragged fallbacks in every batched cell.  Wall times are recorded for
trend-reading, not gated.
"""

from __future__ import annotations

import hashlib
import json
import platform
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PerfError

__all__ = [
    "CAMPAIGN_SCHEMA_ID",
    "DEFAULT_CAMPAIGN_ARCHETYPES",
    "DEFAULT_JOBS_GRID",
    "PR6_BATCHED_BASELINE",
    "check_campaign_regression",
    "run_campaign_bench",
    "validate_campaign_document",
]

CAMPAIGN_SCHEMA_ID = "repro-io/bench-campaign/v1"

#: The 4-archetype tiny matrix every cell runs: 4 alone + 10 pair tasks.
DEFAULT_CAMPAIGN_ARCHETYPES: Tuple[str, ...] = (
    "checkpoint", "analytics", "smallfile", "incast",
)

DEFAULT_JOBS_GRID: Tuple[int, ...] = (1, 4)

#: Batch widths of the kernel-throughput curve carried by the campaign
#: document (a subset of the stepper harness's widths — the two that bound
#: the widths real matrix buckets reach).
DEFAULT_KERNEL_BATCHES: Tuple[int, ...] = (8, 32)

#: The batched lockstep kernel as committed by PR 6 (``BENCH_stepper.json``,
#: min of 5 on the repo's single-CPU dev container) — the fixed reference the
#: committed ``BENCH_campaign.json`` reports its kernel speedup against.
PR6_BATCHED_BASELINE: Dict[str, object] = {
    "label": "PR 6 batched lockstep kernel (committed BENCH_stepper.json)",
    "scenarios": {
        "batched/tiny-hdd-sync-on@b8": {"steps_per_sec": 15395.13},
        "batched/tiny-hdd-sync-on@b32": {"steps_per_sec": 20725.95},
    },
}


def _matrix_sha256(matrix) -> str:
    canonical = json.dumps(matrix.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _run_cell(
    archetypes: Sequence[str],
    scale: str,
    jobs: int,
    batch: bool,
    workdir: str,
) -> Dict[str, object]:
    """One grid cell: a cold run into a fresh cache, then a warm rerun."""
    from repro.obs.summary import batch_stats, cache_stats, executor_stats
    from repro.obs.telemetry import telemetry_session
    from repro.scenarios.matrix import run_interference_matrix

    cache_dir = tempfile.mkdtemp(prefix=f"jobs{jobs}-", dir=workdir)
    with telemetry_session(f"campaign-cold-j{jobs}") as telemetry:
        t0 = time.perf_counter()
        matrix = run_interference_matrix(
            list(archetypes), scale, jobs=jobs, batch=batch, cache_dir=cache_dir,
        )
        cold_wall = time.perf_counter() - t0
        cold = telemetry.snapshot()
    with telemetry_session(f"campaign-warm-j{jobs}") as telemetry:
        t0 = time.perf_counter()
        warm_matrix = run_interference_matrix(
            list(archetypes), scale, jobs=jobs, batch=batch, cache_dir=cache_dir,
        )
        warm_wall = time.perf_counter() - t0
        warm = telemetry.snapshot()
    if _matrix_sha256(matrix) != _matrix_sha256(warm_matrix):
        raise PerfError(
            f"warm rerun of jobs={jobs} batch={batch} produced a different matrix"
        )
    ex = executor_stats(cold)
    bt = batch_stats(cold)
    return {
        "jobs": int(jobs),
        "batch": bool(batch),
        "cold_wall_s": float(cold_wall),
        "warm_wall_s": float(warm_wall),
        "warm_hit_rate": float(cache_stats(warm)["hit_rate"]),
        "utilization": float(ex["utilization"]),
        "batched_share": float(bt["batched_share"]),
        "buckets": float(bt["buckets"]),
        "member_runs": float(bt["member_runs"]),
        "ragged_fallbacks": float(bt["fallbacks"]),
        "padded_slots": float(bt["padded_slots"]),
        "padded_waste": float(bt["padded_waste"]),
        "matrix_sha256": _matrix_sha256(matrix),
    }


def run_campaign_bench(
    archetypes: Sequence[str] = DEFAULT_CAMPAIGN_ARCHETYPES,
    scale: str = "tiny",
    repeats: int = 5,
    jobs_grid: Sequence[int] = DEFAULT_JOBS_GRID,
    kernel_batches: Sequence[int] = DEFAULT_KERNEL_BATCHES,
    reference: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Measure the campaign grid; return the ``BENCH_campaign.json`` document.

    Every (jobs × batch) cell runs the same matrix cold into a fresh cache
    and warm out of it, inside its own telemetry session.  The document
    records per-cell wall times and routing stats, whether all cells
    produced byte-identical matrices (``identical``), and the batched-kernel
    throughput curve (min-of-``repeats``, via the stepper harness) with its
    speedup against ``reference`` (default: the PR 6 committed baseline).
    """
    from repro.perf.harness import _measure_batched

    if repeats < 1:
        raise PerfError("repeats must be >= 1")
    if any(j < 1 for j in jobs_grid):
        raise PerfError(f"jobs grid entries must be >= 1, got {list(jobs_grid)}")
    if reference is None:
        reference = PR6_BATCHED_BASELINE

    cells: Dict[str, Dict[str, object]] = {}
    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as workdir:
        for jobs in jobs_grid:
            for batch in (True, False):
                key = f"jobs{jobs}-" + ("batched" if batch else "scalar")
                cells[key] = _run_cell(archetypes, scale, jobs, batch, workdir)

    digests = {cell["matrix_sha256"] for cell in cells.values()}
    kernel: Dict[str, Dict[str, object]] = {}
    for batch_size in kernel_batches:
        if batch_size < 1:
            raise PerfError(f"kernel batch sizes must be >= 1, got {batch_size}")
        key = f"batched/tiny-hdd-sync-on@b{int(batch_size)}"
        kernel[key] = _measure_batched(int(batch_size), repeats)

    speedup: Dict[str, float] = {}
    ref_scenarios = reference.get("scenarios", {}) if reference else {}
    for key, entry in kernel.items():
        ref = ref_scenarios.get(key)
        if ref:
            speedup[key] = float(entry["steps_per_sec"]) / float(ref["steps_per_sec"])

    n = len(archetypes)
    return {
        "schema": CAMPAIGN_SCHEMA_ID,
        "python": platform.python_version(),
        "scale": str(scale),
        "archetypes": list(archetypes),
        "n_tasks": n + n * (n + 1) // 2,
        "repeats": int(repeats),
        "jobs_grid": [int(j) for j in jobs_grid],
        "cells": cells,
        "identical": len(digests) == 1,
        "batched_kernel": kernel,
        "reference": reference,
        "speedup": speedup,
        "caveat": (
            "wall times are machine-local; on a single-CPU container "
            "jobs>1 pays pool overhead without parallel speedup — "
            "correctness is pinned by the matrix_sha256 identity gate"
        ),
    }


def validate_campaign_document(document: object) -> Dict:
    """Structural validation of a ``BENCH_campaign.json`` document."""

    def _require(condition: bool, path: str, message: str) -> None:
        if not condition:
            raise PerfError(f"invalid campaign document at {path}: {message}")

    _require(isinstance(document, dict), "$", "document must be a JSON object")
    assert isinstance(document, dict)
    _require(document.get("schema") == CAMPAIGN_SCHEMA_ID, "$.schema",
             f"must be {CAMPAIGN_SCHEMA_ID!r}, got {document.get('schema')!r}")
    _require(isinstance(document.get("python"), str), "$.python",
             "must be a string")
    archetypes = document.get("archetypes")
    _require(isinstance(archetypes, list) and len(archetypes) >= 2,
             "$.archetypes", "must be a list of at least two names")
    _require(isinstance(document.get("identical"), bool), "$.identical",
             "must be a boolean")
    cells = document.get("cells")
    _require(isinstance(cells, dict) and len(cells) > 0, "$.cells",
             "must be a non-empty object")
    assert isinstance(cells, dict)
    for key, cell in cells.items():
        path = f"$.cells[{key!r}]"
        _require(isinstance(cell, dict), path, "must be an object")
        assert isinstance(cell, dict)
        jobs = cell.get("jobs")
        _require(isinstance(jobs, int) and jobs >= 1, f"{path}.jobs",
                 "must be an integer >= 1")
        _require(isinstance(cell.get("batch"), bool), f"{path}.batch",
                 "must be a boolean")
        for field in ("cold_wall_s", "warm_wall_s", "warm_hit_rate",
                      "utilization", "batched_share", "buckets",
                      "member_runs", "ragged_fallbacks", "padded_slots",
                      "padded_waste"):
            value = cell.get(field)
            _require(isinstance(value, (int, float)) and value >= 0,
                     f"{path}.{field}", "must be a non-negative number")
        sha = cell.get("matrix_sha256")
        _require(isinstance(sha, str) and len(sha) == 64,
                 f"{path}.matrix_sha256", "must be a sha256 hex digest")
    kernel = document.get("batched_kernel")
    _require(isinstance(kernel, dict) and len(kernel) > 0, "$.batched_kernel",
             "must be a non-empty object")
    assert isinstance(kernel, dict)
    for key, entry in kernel.items():
        path = f"$.batched_kernel[{key!r}]"
        _require(isinstance(entry, dict), path, "must be an object")
        assert isinstance(entry, dict)
        sps = entry.get("steps_per_sec")
        _require(isinstance(sps, (int, float)) and sps > 0,
                 f"{path}.steps_per_sec", "must be a positive number")
        batch = entry.get("batch")
        _require(isinstance(batch, int) and batch >= 1, f"{path}.batch",
                 "must be an integer >= 1")
    return document


def check_campaign_regression(
    current: Dict,
    baseline: Dict,
    min_ratio: float = 0.7,
) -> List[str]:
    """Failure messages for the campaign gate (empty = gate green).

    Three checks: the fresh document's cells must be byte-identical
    (``identical``), every batched cell must report zero ragged fallbacks,
    and every batched-kernel throughput present in both documents must stay
    at or above ``min_ratio`` of the committed baseline.  Wall times are
    deliberately not gated (machine-local noise).
    """
    if not 0.0 < min_ratio <= 1.0:
        raise PerfError(f"min_ratio must be in (0, 1], got {min_ratio}")
    validate_campaign_document(current)
    validate_campaign_document(baseline)
    failures: List[str] = []
    if not current.get("identical"):
        failures.append(
            "cells disagree: the jobs x batch grid did not produce "
            "byte-identical matrices"
        )
    for key, cell in current["cells"].items():
        if cell.get("batch") and float(cell.get("ragged_fallbacks", 0)) != 0:
            failures.append(
                f"{key}: {cell['ragged_fallbacks']:.0f} ragged fallbacks "
                "(batched cells must report zero)"
            )
    base_kernel = baseline["batched_kernel"]
    for key, entry in current["batched_kernel"].items():
        base = base_kernel.get(key)
        if base is None:
            continue
        measured = float(entry["steps_per_sec"])
        reference = float(base["steps_per_sec"])
        if measured < min_ratio * reference:
            failures.append(
                f"{key}: {measured:.0f} steps/s is below {min_ratio:.0%} of "
                f"the baseline {reference:.0f} steps/s "
                f"(ratio {measured / reference:.2f})"
            )
    return failures


def format_campaign_summary(document: Dict) -> str:
    """Human-readable one-screen summary of a campaign document."""
    lines = [
        f"campaign bench: {'+'.join(document['archetypes'])} "
        f"@ {document['scale']} ({document['n_tasks']} tasks, "
        f"python {document['python']})",
        f"  identical across grid: {document['identical']}",
    ]
    for key in sorted(document["cells"]):
        cell = document["cells"][key]
        lines.append(
            f"  {key:14s} cold {cell['cold_wall_s']:7.2f}s  "
            f"warm {cell['warm_wall_s']:6.2f}s  "
            f"batched {cell['batched_share']:6.1%}  "
            f"util {cell['utilization']:6.1%}  "
            f"fallbacks {cell['ragged_fallbacks']:.0f}"
        )
    speedup = document.get("speedup", {})
    for key in sorted(document["batched_kernel"]):
        entry = document["batched_kernel"][key]
        note = f"  ({speedup[key]:.2f}x vs PR 6)" if key in speedup else ""
        lines.append(
            f"  {key}: {entry['steps_per_sec']:.0f} member-steps/s{note}"
        )
    return "\n".join(lines)
