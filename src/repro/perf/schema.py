"""Validation of the ``BENCH_stepper.json`` document.

Plain-Python structural validation (the container deliberately carries no
``jsonschema`` dependency): every violation raises
:class:`~repro.errors.PerfError` naming the offending path, so a malformed
committed baseline fails the CI gate loudly instead of comparing garbage.

Two schema versions exist:

* ``v1`` — scalar entries only (``active`` / ``e2e``).
* ``v2`` — adds the ``batched`` kind: lockstep-kernel measurements that
  advance ``batch`` same-shape scenarios per step.  Batched entries carry a
  mandatory ``batch`` width and their ``steps_per_sec`` is *aggregate*
  member-steps per second (``n_steps * batch / wall``), so it compares
  directly against a scalar entry's per-scenario throughput.

By default a document validates against whichever version its ``schema``
field declares; pass ``schema_id`` to require one exact version.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import PerfError

__all__ = ["BENCH_SCHEMA_V1", "BENCH_SCHEMA_V2", "validate_bench_document"]

BENCH_SCHEMA_V1 = "repro-io/bench-stepper/v1"
BENCH_SCHEMA_V2 = "repro-io/bench-stepper/v2"

#: Scenario kinds allowed per schema version.
_KINDS_BY_SCHEMA = {
    BENCH_SCHEMA_V1: ("active", "e2e"),
    BENCH_SCHEMA_V2: ("active", "e2e", "batched"),
}

_KINDS = _KINDS_BY_SCHEMA[BENCH_SCHEMA_V2]


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise PerfError(f"invalid bench document at {path}: {message}")


def _validate_scenario(path: str, entry: object, kinds: tuple) -> None:
    _require(isinstance(entry, dict), path, "scenario entry must be an object")
    assert isinstance(entry, dict)
    _require(isinstance(entry.get("scale"), str), f"{path}.scale", "must be a string")
    _require(entry.get("kind") in kinds, f"{path}.kind", f"must be one of {kinds}")
    n_steps = entry.get("n_steps")
    _require(isinstance(n_steps, int) and n_steps > 0, f"{path}.n_steps",
             "must be a positive integer")
    best_ns = entry.get("best_ns")
    _require(isinstance(best_ns, int) and best_ns > 0, f"{path}.best_ns",
             "must be a positive integer")
    sps = entry.get("steps_per_sec")
    _require(isinstance(sps, (int, float)) and sps > 0, f"{path}.steps_per_sec",
             "must be a positive number")
    if entry.get("kind") == "batched":
        batch = entry.get("batch")
        _require(isinstance(batch, int) and batch >= 1, f"{path}.batch",
                 "must be an integer >= 1 on a batched entry")


def validate_bench_document(
    document: object, schema_id: Optional[str] = None
) -> Dict:
    """Validate ``document``; return it (typed as a dict) when well-formed.

    ``schema_id=None`` (the default) accepts any known schema version,
    validating against the version the document itself declares; an explicit
    ``schema_id`` requires that exact version.
    """
    _require(isinstance(document, dict), "$", "document must be a JSON object")
    assert isinstance(document, dict)
    declared = document.get("schema")
    if schema_id is None:
        _require(declared in _KINDS_BY_SCHEMA, "$.schema",
                 f"must be one of {sorted(_KINDS_BY_SCHEMA)}, got {declared!r}")
    else:
        _require(schema_id in _KINDS_BY_SCHEMA, "$.schema",
                 f"unknown schema id {schema_id!r}")
        _require(declared == schema_id, "$.schema",
                 f"must be {schema_id!r}, got {declared!r}")
    kinds = _KINDS_BY_SCHEMA[declared]
    _require(isinstance(document.get("python"), str), "$.python", "must be a string")
    repeats = document.get("repeats")
    _require(isinstance(repeats, int) and repeats >= 1, "$.repeats",
             "must be an integer >= 1")
    scenarios = document.get("scenarios")
    _require(isinstance(scenarios, dict) and len(scenarios) > 0, "$.scenarios",
             "must be a non-empty object")
    assert isinstance(scenarios, dict)
    for key, entry in scenarios.items():
        _validate_scenario(f"$.scenarios[{key!r}]", entry, kinds)

    reference = document.get("reference")
    if reference is not None:
        _require(isinstance(reference, dict), "$.reference", "must be an object")
        assert isinstance(reference, dict)
        _require(isinstance(reference.get("label"), str), "$.reference.label",
                 "must be a string")
        ref_scenarios = reference.get("scenarios")
        _require(isinstance(ref_scenarios, dict), "$.reference.scenarios",
                 "must be an object")
        assert isinstance(ref_scenarios, dict)
        for key, entry in ref_scenarios.items():
            path = f"$.reference.scenarios[{key!r}]"
            _require(isinstance(entry, dict), path, "must be an object")
            assert isinstance(entry, dict)
            sps = entry.get("steps_per_sec")
            _require(isinstance(sps, (int, float)) and sps > 0,
                     f"{path}.steps_per_sec", "must be a positive number")

    speedup = document.get("speedup")
    if speedup is not None:
        _require(isinstance(speedup, dict), "$.speedup", "must be an object")
        assert isinstance(speedup, dict)
        for key, value in speedup.items():
            _require(isinstance(value, (int, float)) and value > 0,
                     f"$.speedup[{key!r}]", "must be a positive number")
            _require(key in scenarios, f"$.speedup[{key!r}]",
                     "names a scenario missing from $.scenarios")
    return document
