"""The interference-matrix campaign: all pairs of workload archetypes.

For N specs the campaign runs N *alone* simulations plus N·(N+1)/2
*pair* simulations (unordered pairs including the self-pair), fanned across
worker processes by :class:`repro.runner.executor.ParallelExecutor` and
served from the content-addressed result cache on repeats.  From those runs
it fills the full NxN ordered matrix: cell ``(a, b)`` is the slowdown of
``a`` co-running with ``b``, read from the unordered pair run (the mirror
cell reads the other side of the same run).

Everything the campaign produces is deterministic — per-task seeds derive
from the spec identities, reports carry no timestamps, and the stored
``matrix.json`` manifest is pinned — so a warm-cache re-run is a 100% cache
hit with byte-identical outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro._version import __version__
from repro.analysis.interference import (
    attribute_pair,
    dilation,
    pair_asymmetry,
    slowdown,
)
from repro.config.control import SteppingPolicy
from repro.core.delta import jsonify
from repro.errors import AnalysisError, ConfigurationError, ExperimentError
from repro.obs.telemetry import get_telemetry
from repro.runner.cache import ResultCache, fingerprint_payload
from repro.runner.executor import TaskSpec, execute_cached
from repro.scenarios.spec import BuiltScenario, ScenarioSpec, build_scenario

__all__ = [
    "PairCell",
    "InterferenceMatrix",
    "explain_matrix_buckets",
    "matrix_artifacts",
    "rerun_matrix_document",
    "run_interference_matrix",
    "run_matrix_alone_task",
    "run_matrix_pair_task",
    "run_matrix_tasks_batched",
    "matrix_fingerprint",
    "matrix_run_id",
    "store_matrix",
]

#: Deployment knobs a matrix run shares across every simulation; everything
#: here is part of each task's cache fingerprint.
_OPTION_DEFAULTS: Dict[str, Any] = {
    "device": "hdd",
    "sync_mode": "sync-on",
    "network": "10g",
    "stripe_kib": 64.0,
    "delay": 0.0,
    "seed": None,
}


def _normalize_options(options: Dict[str, Any]) -> Dict[str, Any]:
    unknown = sorted(set(options) - set(_OPTION_DEFAULTS))
    if unknown:
        raise ConfigurationError(
            f"unknown matrix options {unknown}; available: "
            f"{sorted(_OPTION_DEFAULTS)}"
        )
    merged = dict(_OPTION_DEFAULTS)
    merged.update(options)
    merged["stripe_kib"] = float(merged["stripe_kib"])
    merged["delay"] = float(merged["delay"])
    if merged["seed"] is not None:
        merged["seed"] = int(merged["seed"])
    return merged


# --------------------------------------------------------------------------- #
# Result types
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PairCell:
    """Outcome of one unordered pair run (``a`` starts first)."""

    a: str
    b: str
    alone_a: float
    alone_b: float
    pair_a: float
    pair_b: float
    makespan: float
    window_collapses: int
    root_cause: str
    root_cause_scores: Dict[str, float] = field(default_factory=dict)

    @property
    def slowdown_a(self) -> float:
        """Slowdown of workload ``a`` in this pairing."""
        return slowdown(self.pair_a, self.alone_a)

    @property
    def slowdown_b(self) -> float:
        """Slowdown of workload ``b`` in this pairing."""
        return slowdown(self.pair_b, self.alone_b)

    @property
    def dilation(self) -> float:
        """Makespan of the pair over the longer alone phase."""
        return dilation(self.makespan, self.alone_a, self.alone_b)

    @property
    def asymmetry(self) -> float:
        """Positive when ``a`` suffers more than ``b``."""
        return pair_asymmetry(self.slowdown_a, self.slowdown_b)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return {
            "a": self.a,
            "b": self.b,
            "alone_a": float(self.alone_a),
            "alone_b": float(self.alone_b),
            "pair_a": float(self.pair_a),
            "pair_b": float(self.pair_b),
            "makespan": float(self.makespan),
            "window_collapses": int(self.window_collapses),
            "root_cause": self.root_cause,
            "root_cause_scores": {
                k: float(v) for k, v in sorted(self.root_cause_scores.items())
            },
            # Derived, stored for human readers of matrix.json only:
            "slowdown_a": float(self.slowdown_a),
            "slowdown_b": float(self.slowdown_b),
            "dilation": float(self.dilation),
            "asymmetry": float(self.asymmetry),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PairCell":
        """Rebuild a cell from :meth:`to_dict` output (derived fields recompute)."""
        return cls(
            a=str(data["a"]),
            b=str(data["b"]),
            alone_a=float(data["alone_a"]),
            alone_b=float(data["alone_b"]),
            pair_a=float(data["pair_a"]),
            pair_b=float(data["pair_b"]),
            makespan=float(data["makespan"]),
            window_collapses=int(data["window_collapses"]),
            root_cause=str(data["root_cause"]),
            root_cause_scores={
                str(k): float(v)
                for k, v in dict(data.get("root_cause_scores", {})).items()
            },
        )


def _pair_key(a: str, b: str) -> str:
    return f"{a}|{b}"


@dataclass
class InterferenceMatrix:
    """The full all-pairs result: N alone baselines + N·(N+1)/2 pair cells."""

    scale: str
    names: List[str]
    alone: Dict[str, float]
    cells: Dict[str, PairCell]
    options: Dict[str, Any] = field(default_factory=dict)
    stepping: Optional[Dict[str, object]] = None
    specs: List[Dict[str, object]] = field(default_factory=list)
    #: Quarantined tasks (``TaskFailure.to_dict()`` records) from a
    #: supervised campaign that completed despite failures.  Empty on a
    #: clean run — and then omitted from :meth:`to_dict`, so fault-tolerant
    #: execution cannot perturb the bytes of a healthy ``matrix.json``.
    failed_tasks: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-task provenance (origin/wall time) gathered when telemetry is
    #: enabled.  Deliberately outside to_dict()/from_dict() and excluded
    #: from comparisons: it describes *this* execution, not the matrix, so
    #: fingerprints and warm-cache byte-identity are unaffected.
    task_records: Dict[str, Dict[str, Any]] = field(
        default_factory=dict, compare=False, repr=False
    )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def alone_time(self, name: str) -> float:
        """Interference-free phase time of one workload."""
        try:
            return self.alone[name]
        except KeyError as exc:
            raise AnalysisError(
                f"no alone baseline for {name!r}; have {sorted(self.alone)}"
            ) from exc

    def cell(self, a: str, b: str) -> PairCell:
        """The unordered pair cell covering ``a`` and ``b``."""
        found = self.cell_or_none(a, b)
        if found is None:
            raise AnalysisError(f"matrix has no cell for pair ({a!r}, {b!r})")
        return found

    def cell_or_none(self, a: str, b: str) -> Optional[PairCell]:
        """Like :meth:`cell` but ``None`` for a missing (quarantined) pair."""
        key = _pair_key(a, b)
        if key in self.cells:
            return self.cells[key]
        return self.cells.get(_pair_key(b, a))

    def slowdown_of(self, victim: str, aggressor: str) -> float:
        """Ordered lookup: slowdown of ``victim`` co-running with ``aggressor``."""
        cell = self.cell(victim, aggressor)
        return cell.slowdown_a if cell.a == victim else cell.slowdown_b

    def cells_in_order(self) -> List[PairCell]:
        """Cells in deterministic row-major (upper-triangle) order.

        Pairs lost to quarantine are skipped — a degraded matrix still
        renders and summarizes from whatever completed.
        """
        ordered = []
        for i, a in enumerate(self.names):
            for b in self.names[i:]:
                found = self.cell_or_none(a, b)
                if found is not None:
                    ordered.append(found)
        return ordered

    def worst_pair(self) -> PairCell:
        """The cell with the largest single-workload slowdown."""
        cells = self.cells_in_order()
        if not cells:
            raise AnalysisError("the matrix has no cells")
        return max(cells, key=lambda c: max(c.slowdown_a, c.slowdown_b))

    def to_rows(self) -> List[Dict[str, Any]]:
        """Flat ordered rows (CSV export): victim, aggressor, metrics."""
        rows = []
        for victim in self.names:
            for aggressor in self.names:
                cell = self.cell_or_none(victim, aggressor)
                if cell is None:
                    continue
                rows.append({
                    "victim": victim,
                    "aggressor": aggressor,
                    "slowdown": round(self.slowdown_of(victim, aggressor), 4),
                    "dilation": round(cell.dilation, 4),
                    "root_cause": cell.root_cause,
                })
        return rows

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        document = {
            "version": __version__,
            "scale": self.scale,
            "names": list(self.names),
            "alone": {k: float(v) for k, v in sorted(self.alone.items())},
            "cells": {k: self.cells[k].to_dict() for k in sorted(self.cells)},
            "options": jsonify(dict(self.options)),
            "stepping": self.stepping,
            "specs": list(self.specs),
        }
        if self.failed_tasks:
            document["failed_tasks"] = [dict(f) for f in self.failed_tasks]
        return document

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InterferenceMatrix":
        """Rebuild a matrix from :meth:`to_dict` output."""
        return cls(
            scale=str(data["scale"]),
            names=[str(n) for n in data["names"]],
            alone={str(k): float(v) for k, v in dict(data["alone"]).items()},
            cells={
                str(k): PairCell.from_dict(v)
                for k, v in dict(data["cells"]).items()
            },
            options=dict(data.get("options", {})),
            stepping=data.get("stepping"),
            specs=[dict(s) for s in data.get("specs", [])],
            failed_tasks=[dict(f) for f in data.get("failed_tasks", [])],
        )

    def regenerate_command(self) -> str:
        """The exact ``repro-io matrix`` invocation that reproduces this matrix.

        Includes every deployment knob that differs from the CLI defaults,
        so following the hint in a report never silently rebuilds a
        different matrix.
        """
        parts = [
            "repro-io matrix",
            f"--archetypes {','.join(self.names)}",
            f"--scale {self.scale}",
        ]
        flags = {"device": "--device", "sync_mode": "--sync",
                 "network": "--network", "delay": "--delay"}
        for option, flag in flags.items():
            value = self.options.get(option, _OPTION_DEFAULTS[option])
            if value != _OPTION_DEFAULTS[option]:
                parts.append(f"{flag} {value}")
        if self.stepping is not None:
            parts.append(f"--stepping {self.stepping.get('mode', 'adaptive')}")
            tolerance = self.stepping.get("tolerance")
            if tolerance is not None:
                parts.append(f"--step-tolerance {tolerance:g}")
        return " ".join(parts)

    def describe(self) -> str:
        """One-line summary for logs."""
        prefix = (
            f"interference matrix at scale {self.scale!r}: "
            f"{len(self.names)} archetypes, {len(self.cells)} pair runs"
        )
        if self.failed_tasks:
            prefix += f", {len(self.failed_tasks)} quarantined"
        if not self.cells:
            return prefix + ", no completed cells"
        worst = self.worst_pair()
        return (
            f"{prefix}, worst pair {worst.a}+{worst.b} "
            f"(slowdown {max(worst.slowdown_a, worst.slowdown_b):.2f}, "
            f"{worst.root_cause})"
        )


# --------------------------------------------------------------------------- #
# Worker tasks (module-level; referenced lazily from the executor registry)
# --------------------------------------------------------------------------- #


def _phase_time(result, names: Sequence[str]) -> float:
    """Phase time of one spec's group: first start to last completion."""
    apps = [result.applications[name] for name in names]
    return max(a.end_time for a in apps) - min(a.start_time for a in apps)


def _build_from_payload(payload: Dict[str, Any]) -> BuiltScenario:
    specs = [ScenarioSpec.from_dict(s) for s in payload["specs"]]
    options = payload["options"]
    stepping = payload.get("stepping")
    policy = None if stepping is None else SteppingPolicy.from_dict(stepping)
    from repro import units

    return build_scenario(
        specs,
        payload["scale"],
        device=options["device"],
        sync_mode=options["sync_mode"],
        network=options["network"],
        stripe_size=float(options["stripe_kib"]) * units.KiB,
        delay=float(options["delay"]),
        seed=options.get("seed"),
        stepping=policy,
    )


def _alone_payload_from_result(built: BuiltScenario, result) -> Dict[str, Any]:
    """The transported payload of one alone run (shared by both kernels)."""
    return {
        "phase_time": float(_phase_time(result, built.groups[0])),
        "simulated_time": float(result.simulated_time),
        "n_steps": int(result.n_steps),
        "window_collapses": int(result.total_window_collapses()),
    }


def _pair_payload_from_result(built: BuiltScenario, result) -> Dict[str, Any]:
    """The transported payload of one pair run (shared by both kernels)."""
    apps = list(result.applications.values())
    makespan = max(a.end_time for a in apps) - min(a.start_time for a in apps)
    root_cause, scores = attribute_pair(result)
    return {
        "phase_times": [
            float(_phase_time(result, group)) for group in built.groups
        ],
        "makespan": float(makespan),
        "simulated_time": float(result.simulated_time),
        "window_collapses": int(result.total_window_collapses()),
        "root_cause": root_cause,
        "root_cause_scores": {k: float(v) for k, v in sorted(scores.items())},
    }


#: Task kind -> payload extraction from the finished RunResult.  Shared by
#: the scalar workers below and the batched route, so the two paths cannot
#: drift apart in what they transport.
_PAYLOAD_EXTRACTORS: Dict[str, Callable[[BuiltScenario, Any], Dict[str, Any]]] = {
    "matrix-alone": _alone_payload_from_result,
    "matrix-pair": _pair_payload_from_result,
}


def run_matrix_alone_task(payload: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
    """Simulate one spec alone; returns its baseline phase time.

    Payload keys: ``specs`` (a one-element list of serialized
    :class:`~repro.scenarios.spec.ScenarioSpec`), ``scale``, ``options``,
    ``stepping``.  ``seed`` is unused — matrix runs keep the scenario's
    deterministic seed so alone and pair runs share random streams (the
    common-random-numbers convention of the Δ-graph).
    """
    from repro.model.simulator import simulate_scenario

    built = _build_from_payload(payload)
    result = simulate_scenario(built.scenario)
    return _alone_payload_from_result(built, result)


def run_matrix_pair_task(payload: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
    """Simulate one unordered pair on a shared deployment.

    Payload is the two-spec analogue of :func:`run_matrix_alone_task`.
    Returns per-slot phase times plus the root-cause attribution of the run.
    """
    from repro.model.simulator import simulate_scenario

    built = _build_from_payload(payload)
    result = simulate_scenario(built.scenario)
    return _pair_payload_from_result(built, result)


def run_matrix_bucket_task(
    payload: Dict[str, Any], seed: Optional[int]
) -> Dict[str, Any]:
    """Pool work unit advancing one whole bucket through the batched kernel.

    Payload keys: ``tasks`` — a list of ``{"task_id", "kind", "payload"}``
    member descriptors (the member payloads are exactly what the scalar
    ``matrix-alone``/``matrix-pair`` workers receive).  Returns
    ``{"results": {task_id: member payload}, "wall_s": ...}``; the parent
    feeds each member payload through the same cache-store/provenance path a
    scalar completion takes.  ``seed`` is unused — matrix members keep their
    scenarios' deterministic seeds.
    """
    import time

    from repro.model.batch import run_bucket
    from repro.runner.chaos import get_fault_plan

    t0 = time.perf_counter()
    items = payload["tasks"]
    plan = get_fault_plan()
    if plan is not None:
        # Chaos targets member task ids; a fault on any member fails (or
        # kills) the whole bucket, which the supervisor then demotes to
        # scalar per-task execution.
        for item in items:
            plan.maybe_inject(item["task_id"], 0, in_worker=True)
    built = [_build_from_payload(item["payload"]) for item in items]
    results = run_bucket([b.scenario for b in built])
    out: Dict[str, Dict[str, Any]] = {}
    for item, b, result in zip(items, built, results):
        out[item["task_id"]] = _PAYLOAD_EXTRACTORS[item["kind"]](b, result)
    return {"results": out, "wall_s": time.perf_counter() - t0}


def run_matrix_tasks_batched(
    pending: Sequence[TaskSpec],
    task_records: Optional[Dict[str, Dict[str, Any]]] = None,
    *,
    jobs: int = 1,
    fault_policy=None,
) -> Dict[str, Dict[str, Any]]:
    """Bulk route for matrix cache misses: same-cadence tasks step in lockstep.

    Builds every pending task's scenario, groups compatible ones with
    :func:`repro.model.batch.plan_buckets` (``min_batch=1``: mixed widths
    pad together and leftovers run as width-1 buckets, so only adaptive
    stepping falls back), and advances each group through one batched kernel
    via :func:`repro.model.batch.run_bucket`.  With ``jobs > 1`` each bucket
    becomes a single ``matrix-bucket`` pool work unit, so the process pool
    runs ``jobs`` batched kernels concurrently; buckets are submitted and
    reassembled in plan order, so the parallel route is byte-identical to
    the serial one.  Returns payloads for the bucketed tasks only — adaptive
    tasks are *not* claimed and fall through to the executor's scalar path
    unchanged.  The batched kernel is bitwise-equivalent to the scalar one
    and payload extraction is shared, so both routes transport identical
    payloads (and therefore identical cache entries).

    Per handled task this emits the same ``task``-category span the scalar
    route would, tagged ``batched`` with the bucket width, and stamps
    ``task_records`` with the bucket's wall time.

    A bucket whose kernel raises (or whose worker dies) is *demoted*: its
    members are simply not claimed here, so they fall through to the
    executor's scalar per-task path — a batching bug degrades throughput,
    never correctness.  Each demoted member counts toward the
    ``batch.demotions`` telemetry counter.  ``fault_policy`` (the campaign's
    :class:`~repro.runner.executor.FaultPolicy`, if any) scales the bucket
    deadline to the widest bucket; bucket work units themselves never retry
    — one failure means immediate demotion.
    """
    import time

    from repro.model.batch import count_fallback, plan_buckets, run_bucket
    from repro.runner.chaos import get_fault_plan
    from repro.runner.executor import FaultPolicy, ParallelExecutor

    supported = [t for t in pending if t.kind in _PAYLOAD_EXTRACTORS]
    if len(supported) < 2:
        return {}
    built = [_build_from_payload(t.payload) for t in supported]
    buckets, fallback = plan_buckets(
        [b.scenario for b in built], min_batch=1
    )
    telemetry = get_telemetry()
    handled: Dict[str, Dict[str, Any]] = {}

    def stamp(bucket, results, started: float, wall: float) -> None:
        for i, result in zip(bucket.indices, results):
            task = supported[i]
            extract = _PAYLOAD_EXTRACTORS[task.kind]
            handled[task.task_id] = (
                result if isinstance(result, dict) else extract(built[i], result)
            )
            if telemetry.enabled:
                telemetry.add_span(
                    task.task_id,
                    "task",
                    (started - telemetry.epoch) * 1e6,
                    wall * 1e6,
                    track="tasks",
                    args={
                        "kind": task.kind,
                        "batched": True,
                        "batch": len(bucket.indices),
                    },
                )
            if task_records is not None:
                task_records[task.task_id] = {
                    "wall_time_s": wall,
                    "queue_wait_s": 0.0,
                    "batched": True,
                }

    demoted = 0

    def demote(bucket) -> None:
        nonlocal demoted
        demoted += len(bucket.indices)

    if jobs > 1 and len(buckets) > 1:
        bucket_specs = [
            TaskSpec(
                task_id=f"bucket[{k}]:b{len(bucket.indices)}",
                kind="matrix-bucket",
                payload={
                    "tasks": [
                        {
                            "task_id": supported[i].task_id,
                            "kind": supported[i].kind,
                            "payload": supported[i].payload,
                        }
                        for i in bucket.indices
                    ]
                },
                span_category="bucket",
            )
            for k, bucket in enumerate(buckets)
        ]
        # Buckets always run supervised with zero retries: a failing bucket
        # is immediately demoted (its members rerun scalar) rather than
        # retried as a bucket, and a worker crash cannot abort the campaign.
        widest = max(len(bucket.indices) for bucket in buckets)
        base_timeout = None if fault_policy is None else fault_policy.timeout_for(
            "matrix-bucket"
        )
        bucket_policy = FaultPolicy(
            task_timeout_s=(
                None if base_timeout is None else base_timeout * widest
            ),
            max_retries=0,
            grace_s=5.0 if fault_policy is None else fault_policy.grace_s,
        )
        bucket_failures: Dict[str, Dict[str, Any]] = {}
        submitted = time.time()
        outs = ParallelExecutor(jobs=jobs, fault_policy=bucket_policy).map(
            bucket_specs, failures=bucket_failures
        )
        for bucket, out in zip(buckets, outs):
            if out is None:
                demote(bucket)
                continue
            results = [out["results"][supported[i].task_id] for i in bucket.indices]
            stamp(bucket, results, submitted, float(out["wall_s"]))
    else:
        plan = get_fault_plan()
        for bucket in buckets:
            started = time.time()
            t0 = time.perf_counter()
            try:
                if plan is not None:
                    for i in bucket.indices:
                        plan.maybe_inject(
                            supported[i].task_id, 0, in_worker=False
                        )
                results = run_bucket(
                    [built[i].scenario for i in bucket.indices], bucket.shape
                )
            except Exception:
                demote(bucket)
                continue
            stamp(bucket, results, started, time.perf_counter() - t0)
    if demoted and telemetry.enabled:
        telemetry.count("batch.demotions", demoted)
    for _, reason in fallback:
        count_fallback(reason)
    return handled


# --------------------------------------------------------------------------- #
# The campaign
# --------------------------------------------------------------------------- #


def matrix_fingerprint(
    specs: Sequence[ScenarioSpec],
    scale: str,
    options: Dict[str, Any],
    stepping: Optional[Dict[str, object]],
) -> str:
    """Identity of a whole matrix run (names its stored run directory)."""
    return fingerprint_payload("interference-matrix", {
        "specs": [s.to_dict() for s in specs],
        "scale": str(scale),
        "options": jsonify(options),
        "stepping": stepping,
    })


def matrix_run_id(
    archetypes: Sequence[Union[str, ScenarioSpec]],
    scale: str = "tiny",
    *,
    stepping: Optional[SteppingPolicy] = None,
    **options: Any,
) -> str:
    """The run-directory id a matrix campaign will store under.

    Computable *before* the campaign runs (it hashes only inputs), which is
    what lets the CLI place the progress journal inside the eventual run
    directory and find it again for ``--resume``.  Matches
    :func:`store_matrix` exactly — both derive from
    :func:`matrix_fingerprint`.
    """
    specs = [ScenarioSpec.coerce(a) for a in archetypes]
    opts = _normalize_options(options)
    if stepping is not None and not stepping.is_adaptive:
        stepping = None
    stepping_dict = None if stepping is None else stepping.to_dict()
    fp = matrix_fingerprint(specs, scale, opts, stepping_dict)
    return f"matrix_{fp[:12]}"


def _matrix_task_list(
    specs: Sequence[ScenarioSpec],
    scale: str,
    opts: Dict[str, Any],
    stepping_dict: Optional[Dict[str, object]],
) -> Tuple[List[str], List[TaskSpec], List[Tuple[str, str]]]:
    """The campaign's task list: N alone runs plus N·(N+1)/2 unordered pairs.

    Shared by :func:`run_interference_matrix` and
    :func:`explain_matrix_buckets`, so the bucket-plan diagnostic always
    describes exactly the tasks the campaign would run.
    """
    names = [s.resolved_name for s in specs]
    if len(set(names)) != len(names):
        raise ExperimentError(
            f"duplicate workload names in matrix: {names}; give duplicate "
            "archetypes distinct ScenarioSpec names"
        )
    spec_by_name = dict(zip(names, specs))

    def make_task(task_id: str, kind: str, task_specs: List[ScenarioSpec]) -> TaskSpec:
        task_opts = dict(opts)
        if kind == "matrix-alone":
            # The pair delay cannot affect a single-workload run; normalizing
            # it keeps alone baselines cache-shared across delay sweeps.
            task_opts["delay"] = 0.0
        return TaskSpec(
            task_id=task_id,
            kind=kind,
            payload={
                "specs": [s.to_dict() for s in task_specs],
                "scale": str(scale),
                "options": task_opts,
                "stepping": stepping_dict,
            },
        )

    tasks: List[TaskSpec] = []
    for name in names:
        tasks.append(make_task(f"alone:{name}", "matrix-alone", [spec_by_name[name]]))
    pair_ids: List[Tuple[str, str]] = []
    for i, a in enumerate(names):
        for b in names[i:]:
            pair_ids.append((a, b))
            tasks.append(
                make_task(
                    f"pair:{a}+{b}", "matrix-pair",
                    [spec_by_name[a], spec_by_name[b]],
                )
            )
    return names, tasks, pair_ids


def _scenario_group_widths(scenario) -> List[int]:
    """Per-server connection-group widths (zero-width servers dropped).

    Mirrors the connection layout :class:`repro.model.state.SimulationState`
    builds (every process of an application opens one connection to each of
    its target servers) without paying for state construction.
    """
    widths = [0] * scenario.filesystem.n_servers
    for app in scenario.applications:
        procs = app.n_nodes * app.procs_per_node
        for server in scenario.app_servers(app):
            widths[server] += procs
    return [w for w in widths if w > 0]


def explain_matrix_buckets(
    archetypes: Sequence[Union[str, ScenarioSpec]],
    scale: str = "tiny",
    *,
    stepping: Optional[SteppingPolicy] = None,
    **options: Any,
) -> str:
    """Render the bucket plan ``repro-io perf --explain-buckets`` prints.

    Builds exactly the task list :func:`run_interference_matrix` would run,
    plans buckets the way the batched route does (``min_batch=1``), and
    reports per bucket its width (members), cadence, server count and the
    set of admission-group widths that pad together — plus every task that
    falls back to the scalar path and why.
    """
    from repro.model.batch import plan_buckets

    specs = [ScenarioSpec.coerce(a) for a in archetypes]
    if len(specs) < 2:
        raise ExperimentError(
            "an interference matrix needs at least two archetypes"
        )
    opts = _normalize_options(options)
    if stepping is not None and not stepping.is_adaptive:
        stepping = None
    stepping_dict = None if stepping is None else stepping.to_dict()
    names, tasks, _ = _matrix_task_list(specs, scale, opts, stepping_dict)
    built = [_build_from_payload(t.payload) for t in tasks]
    buckets, fallback = plan_buckets([b.scenario for b in built], min_batch=1)

    lines = [
        f"bucket plan: {len(tasks)} tasks over {'+'.join(names)} @ {scale} "
        f"-> {len(buckets)} buckets, {len(fallback)} scalar fallbacks"
    ]
    for k, bucket in enumerate(buckets):
        shape = bucket.shape
        widths = sorted({
            w for i in bucket.indices
            for w in _scenario_group_widths(built[i].scenario)
        })
        padded = "padded" if len(widths) > 1 else "uniform"
        lines.append(
            f"  bucket[{k}]  B={len(bucket.indices)}  "
            f"dt={shape.dt:.6g}s  n_servers={shape.n_servers}  "
            f"group_widths={{{','.join(str(w) for w in widths)}}} ({padded})"
        )
        lines.append(
            "    members: "
            + ", ".join(tasks[i].task_id for i in bucket.indices)
        )
    if fallback:
        lines.append("fallbacks (scalar path):")
        for i, reason in fallback:
            lines.append(f"  {tasks[i].task_id}: {reason}")
    return "\n".join(lines)


def run_interference_matrix(
    archetypes: Sequence[Union[str, ScenarioSpec]],
    scale: str = "tiny",
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    stepping: Optional[SteppingPolicy] = None,
    progress: Optional[Callable[[str, bool], None]] = None,
    batch: bool = True,
    fault_policy=None,
    journal=None,
    **options: Any,
) -> InterferenceMatrix:
    """Run the all-pairs interference campaign over the given archetypes.

    Parameters
    ----------
    archetypes:
        At least two archetype names (or ready specs).  Duplicate instance
        names are rejected — name specs explicitly to pair an archetype with
        a differently-tuned copy of itself.
    scale:
        Scale preset for every run (default ``tiny``: the matrix multiplies
        run counts, so the conservative scale is the default).
    jobs:
        Worker processes for the executor (alone and pair runs are
        independent tasks).
    batch:
        Route same-cadence cache misses through the batched lockstep kernel
        (:mod:`repro.model.batch`) instead of one simulation per task.
        With ``jobs > 1`` each planned bucket becomes one pool work unit,
        so ``N`` workers advance ``N`` batched kernels concurrently — the
        two multipliers compose.  Results are bitwise identical either way;
        disable to A/B against the scalar path.
    cache_dir:
        When given, every task is served from / stored into the
        content-addressed cache — a repeated matrix is a 100% cache hit.
    stepping:
        Optional stepping policy for every simulation; non-default policies
        join each task's cache fingerprint.
    progress:
        Optional callback ``progress(task_id, from_cache)`` per finished task.
    fault_policy:
        Optional :class:`~repro.runner.executor.FaultPolicy`.  With one the
        campaign runs *supervised*: failing tasks retry with backoff,
        deadline overruns are interrupted, broken pools are rebuilt, and
        tasks that exhaust their retries are quarantined — the campaign
        completes and the returned matrix carries their
        :attr:`~InterferenceMatrix.failed_tasks` records (pair cells that
        lost a run, or either alone baseline, are simply absent).
    journal:
        Optional :class:`~repro.runner.journal.ProgressJournal`; every task
        completion and quarantined failure appends one line, making an
        interrupted campaign resumable.
    **options:
        Deployment knobs shared by every run: ``device``, ``sync_mode``,
        ``network``, ``stripe_kib``, ``delay`` (start offset of the second
        workload of each pair), ``seed``.
    """
    specs = [ScenarioSpec.coerce(a) for a in archetypes]
    if len(specs) < 2:
        raise ExperimentError(
            "an interference matrix needs at least two archetypes"
        )
    opts = _normalize_options(options)

    # Normalize an explicit fixed policy to None so it shares the default
    # cache fingerprint (mirrors run_campaign).
    if stepping is not None and not stepping.is_adaptive:
        stepping = None
    stepping_dict = None if stepping is None else stepping.to_dict()

    cache = ResultCache(cache_dir) if cache_dir else None
    names, tasks, pair_ids = _matrix_task_list(specs, scale, opts, stepping_dict)

    def fingerprint_for(task: TaskSpec) -> str:
        return fingerprint_payload(task.kind, {
            "specs": task.payload["specs"],
            "scale": task.payload["scale"],
            "options": jsonify(task.payload["options"]),
            "stepping": task.payload["stepping"],
        })

    def key_material_for(task: TaskSpec) -> Dict[str, Any]:
        # The task's own (normalized) options — not the campaign-level ones —
        # so the recorded key always matches what the fingerprint hashed.
        return {"task_id": task.task_id, "kind": task.kind,
                "scale": task.payload["scale"],
                "options": jsonify(task.payload["options"]),
                "stepping": task.payload["stepping"],
                "specs": task.payload["specs"]}

    def on_result(task: TaskSpec, payload: Dict[str, Any], from_cache: bool) -> None:
        if progress is not None:
            progress(task.task_id, from_cache)

    telemetry = get_telemetry()
    task_records: Optional[Dict[str, Dict[str, Any]]] = (
        {} if telemetry.enabled else None
    )

    batch_runner = None
    if batch:
        def batch_runner(pending):
            return run_matrix_tasks_batched(
                pending, task_records, jobs=jobs, fault_policy=fault_policy
            )

    failures: Optional[Dict[str, Dict[str, Any]]] = (
        {} if fault_policy is not None else None
    )
    with telemetry.span(
        f"matrix:{scale}",
        category="campaign",
        archetypes=",".join(names),
        n_tasks=len(tasks),
        jobs=jobs,
    ):
        results = execute_cached(
            tasks,
            jobs=jobs,
            cache=cache,
            fingerprint_for=fingerprint_for,
            key_material_for=key_material_for,
            progress=on_result,
            task_records=task_records,
            batch_runner=batch_runner,
            fault_policy=fault_policy,
            failures=failures,
            journal=journal,
        )

    # Assemble from whatever completed: a quarantined alone run drops its
    # baseline (and every cell that needs it); a quarantined pair run drops
    # just that cell.  A clean run takes the exact same path with nothing
    # missing, so tolerance costs no bytes in the output.
    alone = {
        name: float(results[f"alone:{name}"]["phase_time"])
        for name in names
        if f"alone:{name}" in results
    }
    cells: Dict[str, PairCell] = {}
    for a, b in pair_ids:
        payload = results.get(f"pair:{a}+{b}")
        if payload is None or a not in alone or b not in alone:
            continue
        phase_a, phase_b = payload["phase_times"]
        cells[_pair_key(a, b)] = PairCell(
            a=a,
            b=b,
            alone_a=alone[a],
            alone_b=alone[b],
            pair_a=float(phase_a),
            pair_b=float(phase_b),
            makespan=float(payload["makespan"]),
            window_collapses=int(payload["window_collapses"]),
            root_cause=str(payload["root_cause"]),
            root_cause_scores={
                str(k): float(v)
                for k, v in dict(payload.get("root_cause_scores", {})).items()
            },
        )

    failed_tasks = (
        [failures[task_id] for task_id in sorted(failures)] if failures else []
    )
    return InterferenceMatrix(
        scale=str(scale),
        names=names,
        alone=alone,
        cells=cells,
        options=opts,
        stepping=stepping_dict,
        specs=[s.to_dict() for s in specs],
        task_records=task_records or {},
        failed_tasks=failed_tasks,
    )


def matrix_artifacts(matrix: InterferenceMatrix) -> Dict[str, str]:
    """The byte-exact deterministic artifact texts of one matrix run.

    ``matrix.json`` is the machine-readable document; ``EXPERIMENTS.md`` is
    the marker-delimited report section exactly as
    :func:`repro.analysis.interference.update_experiments_section` would
    splice it into a report file.  :func:`store_matrix` persists these and
    ``repro-io reproduce`` regenerates them from a re-executed matrix —
    sharing this one function is what makes the byte-for-byte comparison
    meaningful rather than a test of two renderers.
    """
    import json

    from repro.analysis.interference import (
        MATRIX_SECTION_BEGIN,
        MATRIX_SECTION_END,
        matrix_report_markdown,
    )

    section = matrix_report_markdown(matrix)
    return {
        "matrix.json": json.dumps(matrix.to_dict(), indent=2, sort_keys=True)
        + "\n",
        "EXPERIMENTS.md": f"{MATRIX_SECTION_BEGIN}\n{section}\n"
                          f"{MATRIX_SECTION_END}\n",
    }


def rerun_matrix_document(
    document: Dict[str, object],
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    batch: bool = True,
    progress: Optional[Callable[[str, bool], None]] = None,
) -> InterferenceMatrix:
    """Re-derive and re-execute the task list of a stored ``matrix.json``.

    The stored document carries everything that determined the original
    campaign — serialized specs, scale, deployment options, stepping policy
    — so the reconstructed task list is fingerprint-identical to the
    original's and a warm cache serves every task.  This is the execution
    half of ``repro-io reproduce``: the returned matrix feeds
    :func:`matrix_artifacts` for the byte-for-byte comparison.
    """
    stored = InterferenceMatrix.from_dict(document)
    specs = [ScenarioSpec.from_dict(s) for s in stored.specs]
    if not specs:
        raise AnalysisError(
            "stored matrix document carries no specs; it predates spec "
            "serialization and cannot be re-executed"
        )
    policy = (
        None if stored.stepping is None
        else SteppingPolicy.from_dict(stored.stepping)
    )
    return run_interference_matrix(
        specs,
        stored.scale,
        jobs=jobs,
        cache_dir=cache_dir,
        stepping=policy,
        progress=progress,
        batch=batch,
        **stored.options,
    )


def store_matrix(
    matrix: InterferenceMatrix,
    store_dir: str,
    telemetry=None,
) -> str:
    """Persist ``matrix.json`` + ``EXPERIMENTS.md`` as a verifiable run dir.

    The run id derives from the matrix fingerprint and the manifest
    timestamp is pinned to zero, so re-running an identical matrix rewrites
    the directory byte-identically (the warm-cache acceptance property).
    Returns the run directory path.

    With a live ``telemetry`` registry (the one the campaign ran under), the
    run directory additionally carries the schema-validated
    ``telemetry.json`` document and ``telemetry_events.jsonl`` log, and the
    manifest records per-task provenance — those describe one concrete
    execution, so a telemetry-carrying run dir is *not* expected to be
    byte-stable across reruns (the default path is unchanged).
    """
    import json

    from repro.runner.store import (
        TELEMETRY_DOCUMENT_ARTIFACT,
        TELEMETRY_EVENTS_ARTIFACT,
        RunStore,
    )

    specs = [ScenarioSpec.from_dict(s) for s in matrix.specs]
    fp = matrix_fingerprint(specs, matrix.scale, matrix.options, matrix.stepping)
    run_id = f"matrix_{fp[:12]}"
    seed = matrix.options.get("seed")
    artifacts = dict(matrix_artifacts(matrix))
    tasks = None
    if telemetry is not None and telemetry.enabled:
        from repro.obs.schema import validate_telemetry_document

        document = telemetry.to_document(run_id=run_id)
        validate_telemetry_document(document)
        artifacts[TELEMETRY_DOCUMENT_ARTIFACT] = (
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        artifacts[TELEMETRY_EVENTS_ARTIFACT] = telemetry.events_jsonl()
        tasks = {
            task_id: {
                **record,
                "wall_time_s": round(float(record.get("wall_time_s", 0.0)), 6),
                "queue_wait_s": round(float(record.get("queue_wait_s", 0.0)), 6),
            }
            for task_id, record in matrix.task_records.items()
        }
    run_path = RunStore(store_dir).write_run(
        run_id,
        seed=0 if seed is None else int(seed),
        config=jsonify({
            "scale": matrix.scale,
            "archetypes": list(matrix.names),
            "options": dict(matrix.options),
            "stepping": matrix.stepping,
        }),
        artifacts=artifacts,
        timestamp=0.0,
        tasks=tasks,
    )
    return str(run_path)
