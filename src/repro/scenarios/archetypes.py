"""Workload archetypes: the vocabulary of the scenario fleet.

The paper studies one workload — two identical checkpoint-style writers — but
its motivating question ("which applications hurt each other, and why?") is
about a *population* of workloads.  An :class:`Archetype` is a named,
declarative description of one member of that population, expressed through
the knobs the fluid model supports: access kind, request size, per-process
volume, writer layout, collectivity, and internal staggering.

Every archetype maps a real HPC I/O behaviour onto those knobs.  The model
simulates one I/O phase through the shared client/transport/server/device
path; read-flavoured archetypes (analytics scans, random reads) are
approximated by the same request stream — the contention mechanics the paper
studies (NIC sharing, server queueing, buffer pressure, Incast) act on
request traffic regardless of direction, so pairwise *interference structure*
is preserved even though device-level read/write asymmetry is not.

The built-in registry:

========== ==================================================================
name       models
========== ==================================================================
checkpoint bulk-synchronous checkpoint burst (the paper's workload): one
           large collective contiguous write per process
analytics  read-heavy analytics scan: fewer processes streaming large
           (1 MiB) requests with little synchronization, 1.5x the volume
smallfile  metadata-heavy small-file workload: many independent 8 KiB
           operations — fragment-op-cost dominated
streaming  steady streaming writer: non-collective 512 KiB chunks at a
           sustained rate (no barrier between operations)
randomread random-read worker: independent 64 KiB requests over a small
           volume — latency-bound, never saturates a component alone
mixed      mixed read/write job: collective 256 KiB strided accesses at
           3/4 volume (the paper's strided pattern at moderate pressure)
staggered  staggered multi-app bundle: two half-size checkpoint groups whose
           starts are offset by half a phase (a workflow of dependent jobs)
incast     incast-heavy fan-out: all cores issuing 16 KiB collective
           requests striped over every server — the flow-control stressor
========== ==================================================================

Use :func:`register_archetype` to extend the registry (tests do).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import units
from repro.config.presets import ScalePreset
from repro.config.workload import AccessKind, ApplicationSpec, PatternSpec
from repro.errors import ConfigurationError

__all__ = [
    "Archetype",
    "register_archetype",
    "get_archetype",
    "archetype_names",
    "list_archetypes",
]


@dataclass(frozen=True)
class Archetype:
    """A declarative workload archetype.

    Scale-free by construction: every sizing field is a *fraction* of the
    active :class:`~repro.config.presets.ScalePreset`, so one archetype
    definition builds consistent workloads at ``tiny``, ``reduced`` and
    ``paper`` scale.

    Attributes
    ----------
    name:
        Registry key (also the default application-group label).
    title / description:
        Human-readable identity, used by ``repro-io matrix`` listings and
        the DESIGN.md registry table.
    kind:
        Spatial access pattern (contiguous or strided).
    request_size:
        Request size in bytes, or ``None`` for the pattern default (whole
        phase for contiguous, 256 KiB for strided).
    volume_scale:
        Per-process volume as a fraction of the preset's
        ``bytes_per_process``.
    nodes_scale / procs_scale:
        Writer layout as fractions of the preset's ``nodes_per_app`` /
        ``procs_per_node`` (floored at 1).
    collective:
        Whether operations synchronize between requests (MPI-IO collective
        style).
    overhead_scale:
        Collective/coordination overhead as a fraction of the preset's
        ``collective_overhead``.
    n_groups:
        Number of application sub-groups the archetype expands into
        (``staggered`` uses 2; everything else 1).  The node budget is
        split across groups.
    stagger_frac:
        Start offset between consecutive sub-groups, as a fraction of the
        archetype's naive phase-time estimate (volume over aggregate server
        ingest bandwidth).
    """

    name: str
    title: str
    description: str
    kind: AccessKind = AccessKind.CONTIGUOUS
    request_size: Optional[float] = None
    volume_scale: float = 1.0
    nodes_scale: float = 1.0
    procs_scale: float = 1.0
    collective: bool = True
    overhead_scale: float = 1.0
    n_groups: int = 1
    stagger_frac: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("archetype name must not be empty")
        if self.volume_scale <= 0:
            raise ConfigurationError("volume_scale must be positive")
        if self.nodes_scale <= 0 or self.procs_scale <= 0:
            raise ConfigurationError("nodes_scale and procs_scale must be positive")
        if self.request_size is not None and self.request_size <= 0:
            raise ConfigurationError("request_size must be positive when given")
        if self.overhead_scale < 0:
            raise ConfigurationError("overhead_scale must be non-negative")
        if self.n_groups < 1:
            raise ConfigurationError("n_groups must be >= 1")
        if self.stagger_frac < 0:
            raise ConfigurationError("stagger_frac must be non-negative")

    # ------------------------------------------------------------------ #
    # Sizing
    # ------------------------------------------------------------------ #

    def group_nodes(self, preset: ScalePreset, override: Optional[int] = None) -> int:
        """Nodes per sub-group under ``preset`` (override = total nodes)."""
        total = override if override is not None else max(
            1, round(self.nodes_scale * preset.nodes_per_app)
        )
        return max(1, total // self.n_groups)

    def procs_per_node(self, preset: ScalePreset, override: Optional[int] = None) -> int:
        """Processes per node under ``preset``."""
        if override is not None:
            return max(1, int(override))
        return max(1, round(self.procs_scale * preset.procs_per_node))

    def bytes_per_process(
        self, preset: ScalePreset, override: Optional[float] = None
    ) -> float:
        """Per-process volume (bytes) under ``preset``."""
        if override is not None:
            return float(override)
        return self.volume_scale * preset.bytes_per_process

    def phase_estimate(self, preset: ScalePreset) -> float:
        """Naive single-group transfer-time estimate (for staggering)."""
        volume = (
            self.group_nodes(preset)
            * self.procs_per_node(preset)
            * self.bytes_per_process(preset)
        )
        aggregate = max(preset.server_ingest_bw * preset.n_servers, 1.0)
        return volume / aggregate

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #

    def pattern(
        self,
        preset: ScalePreset,
        *,
        bytes_per_process: Optional[float] = None,
        request_size: Optional[float] = None,
    ) -> PatternSpec:
        """The archetype's access pattern under ``preset``."""
        volume = self.bytes_per_process(preset, bytes_per_process)
        request = request_size if request_size is not None else self.request_size
        if request is not None:
            # A request can never exceed the phase volume (validated by
            # PatternSpec); tiny overridden volumes shrink the request.
            request = min(float(request), volume)
        spec = PatternSpec(
            kind=self.kind,
            bytes_per_process=volume,
            request_size=request,
            collective=self.collective,
            collective_overhead=self.overhead_scale * preset.collective_overhead,
        )
        return spec

    def applications(
        self,
        preset: ScalePreset,
        *,
        name: Optional[str] = None,
        start_time: float = 0.0,
        nodes: Optional[int] = None,
        procs_per_node: Optional[int] = None,
        bytes_per_process: Optional[float] = None,
        request_size: Optional[float] = None,
    ) -> Tuple[ApplicationSpec, ...]:
        """Expand the archetype into its application group(s).

        A single-group archetype yields one :class:`ApplicationSpec` named
        ``name`` (default: the archetype name); an ``n_groups``-archetype
        yields ``name.1``, ``name.2``, ... with staggered start times.
        """
        label = name or self.name
        pattern = self.pattern(
            preset, bytes_per_process=bytes_per_process, request_size=request_size
        )
        group_nodes = self.group_nodes(preset, nodes)
        procs = self.procs_per_node(preset, procs_per_node)
        stagger = self.stagger_frac * self.phase_estimate(preset)
        apps: List[ApplicationSpec] = []
        for index in range(self.n_groups):
            group_name = label if self.n_groups == 1 else f"{label}.{index + 1}"
            apps.append(
                ApplicationSpec(
                    name=group_name,
                    n_nodes=group_nodes,
                    procs_per_node=procs,
                    pattern=pattern,
                    start_time=float(start_time) + index * stagger,
                )
            )
        return tuple(apps)

    def describe(self) -> str:
        """One-line human-readable description."""
        shape = self.kind.value
        if self.request_size is not None:
            shape += f"/{units.bytes_to_human(self.request_size)}"
        groups = "" if self.n_groups == 1 else f", {self.n_groups} staggered groups"
        return f"{self.name}: {self.title} ({shape}{groups})"


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

_REGISTRY: Dict[str, Archetype] = {}


def register_archetype(archetype: Archetype, replace_existing: bool = False) -> Archetype:
    """Add an archetype to the registry (tests register synthetic ones).

    The registry is per-process: a campaign run with ``jobs > 1`` under a
    *spawn*/*forkserver* start method re-imports this module in each worker,
    which only restores the built-ins.  Register custom archetypes at import
    time of a module the workers also import (or run with ``jobs=1`` / the
    default *fork* start method on Linux) before fanning them out.
    """
    if archetype.name in _REGISTRY and not replace_existing:
        raise ConfigurationError(
            f"archetype {archetype.name!r} is already registered"
        )
    _REGISTRY[archetype.name] = archetype
    return archetype


def get_archetype(name: str) -> Archetype:
    """Look an archetype up by name."""
    key = str(name).strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown archetype {name!r}; available: {archetype_names()}"
        ) from None


def archetype_names() -> List[str]:
    """Registered archetype names, sorted."""
    return sorted(_REGISTRY)


def list_archetypes() -> List[Archetype]:
    """Registered archetypes in name order."""
    return [_REGISTRY[name] for name in archetype_names()]


# --------------------------------------------------------------------------- #
# Built-in archetypes
# --------------------------------------------------------------------------- #

register_archetype(Archetype(
    name="checkpoint",
    title="bulk-synchronous checkpoint burst",
    description=(
        "The paper's workload: every process writes one large contiguous "
        "block collectively — the heaviest sustained offered load."
    ),
    kind=AccessKind.CONTIGUOUS,
))

register_archetype(Archetype(
    name="analytics",
    title="read-heavy analytics scan",
    description=(
        "Half the cores streaming 1 MiB requests over 1.5x the volume with "
        "little synchronization; approximates a post-hoc analysis job "
        "scanning checkpoint output."
    ),
    kind=AccessKind.CONTIGUOUS,
    request_size=1 * units.MiB,
    volume_scale=1.5,
    procs_scale=0.5,
    overhead_scale=0.5,
))

register_archetype(Archetype(
    name="smallfile",
    title="metadata-heavy small-file workload",
    description=(
        "Many independent 8 KiB operations over 1/8th the volume — the "
        "per-fragment server CPU cost dominates, not bytes."
    ),
    kind=AccessKind.STRIDED,
    request_size=8 * units.KiB,
    volume_scale=0.125,
    collective=False,
    overhead_scale=0.0,
))

register_archetype(Archetype(
    name="streaming",
    title="steady streaming writer",
    description=(
        "Non-collective 512 KiB chunks at full volume: a telemetry/log "
        "stream that occupies the path continuously without barriers."
    ),
    kind=AccessKind.CONTIGUOUS,
    request_size=512 * units.KiB,
    collective=False,
    overhead_scale=0.0,
))

register_archetype(Archetype(
    name="randomread",
    title="random-read worker",
    description=(
        "Independent 64 KiB requests over a quarter of the volume — "
        "latency-bound traffic that rarely saturates anything alone."
    ),
    kind=AccessKind.STRIDED,
    request_size=64 * units.KiB,
    volume_scale=0.25,
    collective=False,
    overhead_scale=0.0,
))

register_archetype(Archetype(
    name="mixed",
    title="mixed read/write job",
    description=(
        "Collective 256 KiB strided accesses at 3/4 volume — the paper's "
        "strided pattern at moderate pressure, standing in for interleaved "
        "read-modify-write phases."
    ),
    kind=AccessKind.STRIDED,
    request_size=256 * units.KiB,
    volume_scale=0.75,
    overhead_scale=0.5,
))

register_archetype(Archetype(
    name="staggered",
    title="staggered multi-app bundle",
    description=(
        "Two half-size checkpoint groups offset by half a phase: a "
        "workflow of dependent jobs whose bursts partially overlap."
    ),
    kind=AccessKind.CONTIGUOUS,
    volume_scale=0.5,
    n_groups=2,
    stagger_frac=0.5,
))

register_archetype(Archetype(
    name="incast",
    title="incast-heavy fan-out",
    description=(
        "All cores issuing 16 KiB collective requests striped over every "
        "server — maximum concurrent flows per server buffer, the "
        "flow-control (Incast) stressor."
    ),
    kind=AccessKind.STRIDED,
    request_size=16 * units.KiB,
    volume_scale=0.25,
    overhead_scale=0.25,
))


def _self_check() -> None:
    """Fail fast at import if a built-in archetype cannot size itself."""
    from repro.config.presets import tiny_scale

    preset = tiny_scale()
    for archetype in list_archetypes():
        apps = archetype.applications(preset)
        assert apps, archetype.name
        assert all(math.isfinite(a.total_bytes) and a.total_bytes > 0 for a in apps)


_self_check()
