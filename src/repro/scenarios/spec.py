"""Declarative, serializable scenario specifications.

A :class:`ScenarioSpec` names an archetype plus a handful of optional
overrides.  It is *pure data*: losslessly round-trippable through
``to_dict``/``from_dict``, canonically hashable for the result cache, and
cheap to ship across process boundaries.  :func:`build_scenario` turns one or
more specs into a validated :class:`~repro.config.scenario.ScenarioConfig`
on a shared deployment — the assembly step of the interference matrix
(:mod:`repro.scenarios.matrix`), which pairs every spec with every other.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import units
from repro.config.control import SteppingPolicy
from repro.config.presets import (
    ScalePreset,
    get_scale,
    grid5000_platform,
    make_filesystem,
)
from repro.config.scenario import ScenarioConfig, SimulationControl
from repro.config.workload import ApplicationSpec
from repro.errors import ConfigurationError
from repro.scenarios.archetypes import Archetype, get_archetype
from repro.sim.tracing import TraceConfig

__all__ = ["ScenarioSpec", "BuiltScenario", "SLOT_NAMES", "build_scenario"]

#: Slot prefixes for multi-spec scenarios ("A:checkpoint", "B:analytics", ...).
SLOT_NAMES = tuple("ABCDEFGH")


@dataclass(frozen=True)
class ScenarioSpec:
    """One workload instance of a fleet scenario.

    Attributes
    ----------
    archetype:
        Name of a registered :class:`~repro.scenarios.archetypes.Archetype`.
    name:
        Optional instance label (defaults to the archetype name); instances
        of the same archetype in one scenario are disambiguated by slot.
    start_time:
        When the workload's I/O phase begins (seconds; pair campaigns add
        their configured delay on top for the second slot).
    nodes / procs_per_node / bytes_per_process / request_kib:
        Optional absolute overrides of the archetype's preset-derived sizing
        (``request_kib`` in KiB, matching the CLI flag convention).
    """

    archetype: str
    name: str = ""
    start_time: float = 0.0
    nodes: Optional[int] = None
    procs_per_node: Optional[int] = None
    bytes_per_process: Optional[float] = None
    request_kib: Optional[float] = None

    def __post_init__(self) -> None:
        get_archetype(self.archetype)  # validate eagerly
        if self.nodes is not None and self.nodes < 1:
            raise ConfigurationError("nodes override must be >= 1")
        if self.procs_per_node is not None and self.procs_per_node < 1:
            raise ConfigurationError("procs_per_node override must be >= 1")
        if self.bytes_per_process is not None and self.bytes_per_process <= 0:
            raise ConfigurationError("bytes_per_process override must be positive")
        if self.request_kib is not None and self.request_kib <= 0:
            raise ConfigurationError("request_kib override must be positive")

    # ------------------------------------------------------------------ #

    @property
    def resolved_name(self) -> str:
        """The instance label (explicit name, else the archetype name)."""
        return self.name or self.archetype

    @property
    def archetype_spec(self) -> Archetype:
        """The registered archetype this spec instantiates."""
        return get_archetype(self.archetype)

    def applications(
        self,
        preset: ScalePreset,
        *,
        prefix: str = "",
        extra_delay: float = 0.0,
    ) -> Tuple[ApplicationSpec, ...]:
        """Expand into application group(s) under ``preset``.

        ``prefix`` (e.g. ``"A:"``) namespaces the group names so two
        instances of the same archetype can share one scenario.
        """
        return self.archetype_spec.applications(
            preset,
            name=f"{prefix}{self.resolved_name}",
            start_time=self.start_time + extra_delay,
            nodes=self.nodes,
            procs_per_node=self.procs_per_node,
            bytes_per_process=self.bytes_per_process,
            request_size=(
                None if self.request_kib is None else self.request_kib * units.KiB
            ),
        )

    def with_start_time(self, start_time: float) -> "ScenarioSpec":
        """Return a copy starting at ``start_time``."""
        return replace(self, start_time=float(start_time))

    # ------------------------------------------------------------------ #
    # Transport (cache fingerprints, task payloads)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return {
            "archetype": self.archetype,
            "name": self.name,
            "start_time": float(self.start_time),
            "nodes": self.nodes,
            "procs_per_node": self.procs_per_node,
            "bytes_per_process": (
                None if self.bytes_per_process is None else float(self.bytes_per_process)
            ),
            "request_kib": (
                None if self.request_kib is None else float(self.request_kib)
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        nodes = data.get("nodes")
        procs = data.get("procs_per_node")
        volume = data.get("bytes_per_process")
        request = data.get("request_kib")
        return cls(
            archetype=str(data["archetype"]),
            name=str(data.get("name", "")),
            start_time=float(data.get("start_time", 0.0)),
            nodes=None if nodes is None else int(nodes),
            procs_per_node=None if procs is None else int(procs),
            bytes_per_process=None if volume is None else float(volume),
            request_kib=None if request is None else float(request),
        )

    @classmethod
    def coerce(cls, value: Union[str, "ScenarioSpec"]) -> "ScenarioSpec":
        """Accept an archetype name or a ready spec."""
        if isinstance(value, ScenarioSpec):
            return value
        return cls(archetype=str(value).strip().lower())

    def describe(self) -> str:
        """One-line human-readable description."""
        text = self.archetype_spec.describe()
        if self.name and self.name != self.archetype:
            text = f"{self.name} <- {text}"
        return text


@dataclass(frozen=True)
class BuiltScenario:
    """A scenario assembled from specs, plus the spec -> app-name mapping.

    ``groups[i]`` lists the application names contributed by ``specs[i]`` —
    what pair metrics aggregate over when a spec expands into several
    staggered sub-groups.
    """

    scenario: ScenarioConfig
    specs: Tuple[ScenarioSpec, ...]
    groups: Tuple[Tuple[str, ...], ...] = field(default_factory=tuple)

    def group_for(self, index: int) -> Tuple[str, ...]:
        """Application names of the ``index``-th spec."""
        return self.groups[index]


def build_scenario(
    specs: Sequence[Union[str, ScenarioSpec]],
    scale: Union[str, ScalePreset] = "tiny",
    *,
    device: str = "hdd",
    sync_mode: str = "sync-on",
    network: str = "10g",
    stripe_size: float = 64 * units.KiB,
    n_servers: Optional[int] = None,
    delay: float = 0.0,
    seed: Optional[int] = None,
    stepping: Optional[SteppingPolicy] = None,
    trace: Optional[TraceConfig] = None,
    label: str = "",
) -> BuiltScenario:
    """Assemble one or more specs into a scenario on a shared deployment.

    Parameters
    ----------
    specs:
        Archetype names or :class:`ScenarioSpec` objects.  With more than
        one spec, application groups are namespaced by slot (``A:``, ``B:``,
        ...), so two instances of the same archetype coexist.
    scale:
        Scale preset (``"tiny"``, ``"reduced"``, ``"paper"``, or a preset).
    device / sync_mode / network / stripe_size / n_servers:
        Deployment knobs, shared by every workload (interference requires a
        shared file system — per-spec deployments would be separate runs).
    delay:
        Extra start offset (seconds) applied to the *second and later* specs
        — the matrix campaign's ordering knob (cf. the Δ-graph's dt).
    seed / stepping / trace:
        Simulation control overrides (defaults: preset seed, process-default
        stepping policy, default tracing).
    """
    resolved = tuple(ScenarioSpec.coerce(s) for s in specs)
    if not resolved:
        raise ConfigurationError("build_scenario needs at least one spec")
    if len(resolved) > len(SLOT_NAMES):
        raise ConfigurationError(
            f"at most {len(SLOT_NAMES)} workloads per scenario, got {len(resolved)}"
        )
    preset = get_scale(scale)
    platform = grid5000_platform(preset, network=network)
    fs = make_filesystem(
        preset,
        device=device,
        sync_mode=sync_mode,
        stripe_size=stripe_size,
        n_servers=n_servers,
    )

    multi = len(resolved) > 1
    apps: List[ApplicationSpec] = []
    groups: List[Tuple[str, ...]] = []
    for index, spec in enumerate(resolved):
        prefix = f"{SLOT_NAMES[index]}:" if multi else ""
        extra_delay = float(delay) if (multi and index > 0) else 0.0
        group = spec.applications(preset, prefix=prefix, extra_delay=extra_delay)
        groups.append(tuple(app.name for app in group))
        apps.extend(group)

    total_nodes = sum(app.n_nodes for app in apps)
    max_procs = max(app.procs_per_node for app in apps)
    if platform.n_client_nodes < total_nodes:
        platform = platform.with_nodes(total_nodes)
    if platform.cores_per_node < max_procs:
        platform = replace(platform, cores_per_node=max_procs)

    control = SimulationControl(
        seed=seed if seed is not None else preset.seed,
        trace=trace or TraceConfig(),
        stepping=stepping,
    )
    scenario = ScenarioConfig(
        platform=platform,
        filesystem=fs,
        applications=tuple(apps),
        control=control,
        label=label or "+".join(s.resolved_name for s in resolved),
    )
    return BuiltScenario(scenario=scenario, specs=resolved, groups=tuple(groups))
