"""The scenario fleet: declarative workload archetypes and pair campaigns.

Three pieces (see the *Scenario registry and pair campaigns* section of
``DESIGN.md``):

* :mod:`repro.scenarios.archetypes` — the registry of named workload
  archetypes (checkpoint, analytics, smallfile, streaming, randomread,
  mixed, staggered, incast), each a scale-free description of one member of
  the workload population;
* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, the serializable
  archetype-instance record, and :func:`build_scenario`, which assembles one
  or more specs onto a shared deployment;
* :mod:`repro.scenarios.matrix` — the all-pairs interference campaign
  (``repro-io matrix``): N alone runs + N·(N+1)/2 pair runs through the
  parallel executor and result cache, rendered as a slowdown heatmap.
"""

from repro.scenarios.archetypes import (
    Archetype,
    archetype_names,
    get_archetype,
    list_archetypes,
    register_archetype,
)
from repro.scenarios.matrix import (
    InterferenceMatrix,
    PairCell,
    run_interference_matrix,
    store_matrix,
)
from repro.scenarios.spec import BuiltScenario, ScenarioSpec, build_scenario

__all__ = [
    "Archetype",
    "archetype_names",
    "get_archetype",
    "list_archetypes",
    "register_archetype",
    "ScenarioSpec",
    "BuiltScenario",
    "build_scenario",
    "InterferenceMatrix",
    "PairCell",
    "run_interference_matrix",
    "store_matrix",
]
