"""Human-readable reports over persisted telemetry documents.

:func:`load_run_telemetry` reads the ``telemetry.json`` a run directory
persisted (and that its manifest references); :func:`summarize_document`
renders the utilization / cache-efficiency report behind
``repro-io obs summary``; :func:`diff_documents` compares two run
directories' documents side by side (``repro-io obs diff``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import TelemetryError
from repro.obs.schema import validate_telemetry_document

__all__ = [
    "TELEMETRY_DOCUMENT_NAME",
    "TELEMETRY_EVENTS_NAME",
    "batch_stats",
    "lake_stats",
    "resilience_stats",
    "load_run_telemetry",
    "summarize_document",
    "diff_documents",
]

TELEMETRY_DOCUMENT_NAME = "telemetry.json"
TELEMETRY_EVENTS_NAME = "telemetry_events.jsonl"


def load_run_telemetry(run_dir: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate the telemetry document of one run directory."""
    path = Path(run_dir) / TELEMETRY_DOCUMENT_NAME
    if not path.is_file():
        raise TelemetryError(
            f"no {TELEMETRY_DOCUMENT_NAME} in {Path(run_dir)}; was the run "
            "produced with telemetry enabled (e.g. repro-io matrix "
            "--telemetry)?"
        )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except ValueError as exc:
        raise TelemetryError(f"unreadable {path}: {exc}") from None
    return validate_telemetry_document(document)


# --------------------------------------------------------------------------- #
# Derived metrics
# --------------------------------------------------------------------------- #


def _campaign_wall_us(document: Dict[str, Any]) -> float:
    """Wall time covered by the campaign span (fallback: whole document)."""
    for span in document.get("spans", []):
        if span["category"] == "campaign":
            return float(span["dur_us"])
    return float(document.get("duration_us", 0.0))


def _task_spans(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [s for s in document.get("spans", []) if s["category"] == "task"]


def executor_stats(document: Dict[str, Any]) -> Dict[str, float]:
    """Worker-utilization figures derived from task spans and counters."""
    counters = document.get("counters", {})
    tasks = _task_spans(document)
    busy_us = sum(s["dur_us"] for s in tasks)
    wall_us = _campaign_wall_us(document)
    jobs = float(document.get("gauges", {}).get("executor.jobs", 1.0))
    utilization = (
        busy_us / (wall_us * jobs) if wall_us > 0 and jobs > 0 else 0.0
    )
    queue_waits = [
        float(s["args"]["queue_wait_s"])
        for s in tasks
        if "queue_wait_s" in s.get("args", {})
    ]
    return {
        "n_tasks": float(len(tasks)),
        "executed": float(counters.get("executor.tasks.completed", 0)),
        "cached": float(counters.get("executor.tasks.cached", 0)),
        "jobs": jobs,
        "busy_s": busy_us / 1e6,
        "wall_s": wall_us / 1e6,
        "utilization": utilization,
        "max_queue_wait_s": max(queue_waits) if queue_waits else 0.0,
    }


def phase_timing(document: Dict[str, Any]) -> List[Tuple[str, float, float]]:
    """Per-step-phase timing: ``(phase, total_ms, calls)`` sorted by cost."""
    counters = document.get("counters", {})
    rows = []
    for name, value in counters.items():
        if name.startswith("step.phase.") and name.endswith(".ns"):
            phase = name[len("step.phase."):-len(".ns")]
            calls = float(counters.get(f"step.phase.{phase}.calls", 0))
            rows.append((phase, float(value) / 1e6, calls))
    rows.sort(key=lambda r: -r[1])
    return rows


def batch_stats(document: Dict[str, Any]) -> Dict[str, float]:
    """Batched-kernel routing figures: how much of the campaign ran batched.

    ``batched_share`` is the fraction of executed (non-cached) simulations
    that advanced inside a lockstep bucket rather than scalar; ``occupancy``
    figures describe the bucket widths (from the ``batch.occupancy``
    histogram).
    """
    counters = document.get("counters", {})
    histogram = document.get("histograms", {}).get("batch.occupancy", {})
    buckets = float(counters.get("batch.buckets", 0))
    member_runs = float(counters.get("batch.member_runs", 0))
    fallbacks = float(counters.get("batch.ragged_fallbacks", 0))
    executed = float(counters.get("executor.tasks.completed", 0))
    padded = float(counters.get("batch.padded_slots", 0))
    slots = float(counters.get("batch.group_slots", 0))
    routed = member_runs + fallbacks
    return {
        "buckets": buckets,
        "member_runs": member_runs,
        "fallbacks": fallbacks,
        "padded_slots": padded,
        "group_slots": slots,
        "padded_waste": padded / slots if slots > 0 else 0.0,
        "batched_share": member_runs / executed if executed > 0 else (
            member_runs / routed if routed > 0 else 0.0
        ),
        "mean_occupancy": (
            float(histogram.get("sum", 0)) / float(histogram["count"])
            if histogram.get("count") else 0.0
        ),
        "max_occupancy": float(histogram.get("max", 0.0)),
    }


def cache_stats(document: Dict[str, Any]) -> Dict[str, float]:
    """Cache probe/hit/miss/store counters plus the derived hit rate."""
    counters = document.get("counters", {})
    probes = float(counters.get("cache.probe", 0))
    hits = float(counters.get("cache.hit", 0))
    return {
        "probes": probes,
        "hits": hits,
        "misses": float(counters.get("cache.miss", 0)),
        "stores": float(counters.get("cache.store", 0)),
        "bytes_written": float(counters.get("cache.bytes_written", 0)),
        "hit_rate": hits / probes if probes > 0 else 0.0,
    }


def lake_stats(document: Dict[str, Any]) -> Dict[str, float]:
    """Result-lake query/reconciliation counters (zero when no lake ran)."""
    counters = document.get("counters", {})
    return {
        "queries": float(counters.get("lake.query", 0)),
        "entries": float(counters.get("lake.entries", 0)),
        "ghosts": float(counters.get("lake.reconcile.ghosts", 0)),
        "backfilled": float(counters.get("lake.reconcile.backfilled", 0)),
        "duplicates": float(counters.get("lake.reconcile.duplicates", 0)),
        "corrupt_lines": float(counters.get("lake.reconcile.corrupt_lines", 0)),
        "compact_entries": float(counters.get("lake.compact.entries", 0)),
        "compact_dropped": float(counters.get("lake.compact.dropped", 0)),
    }


def resilience_stats(document: Dict[str, Any]) -> Dict[str, float]:
    """Fault-tolerance counters from a supervised campaign.

    All zero on an unsupervised or fault-free run — the section only
    renders when something actually exercised a recovery path.
    """
    counters = document.get("counters", {})
    return {
        "retries": float(counters.get("executor.retries", 0)),
        "timeouts": float(counters.get("executor.timeouts", 0)),
        "quarantined": float(counters.get("executor.quarantined", 0)),
        "pool_rebuilds": float(counters.get("executor.pool_rebuilds", 0)),
        "demotions": float(counters.get("batch.demotions", 0)),
    }


# --------------------------------------------------------------------------- #
# Reports
# --------------------------------------------------------------------------- #


def summarize_document(
    document: Dict[str, Any], run_dir: Optional[str] = None
) -> str:
    """The ``repro-io obs summary`` report for one telemetry document."""
    lines: List[str] = []
    label = document.get("label") or "run"
    header = f"telemetry summary: {label}"
    if run_dir:
        header += f" ({run_dir})"
    lines.append(header)
    lines.append(f"  duration: {float(document['duration_us']) / 1e6:.3f}s "
                 f"spans={len(document.get('spans', []))} "
                 f"events={document.get('n_events', 0)}")

    ex = executor_stats(document)
    lines.append("executor")
    lines.append(
        f"  tasks: {ex['n_tasks']:.0f} spans "
        f"({ex['executed']:.0f} executed, {ex['cached']:.0f} cached) "
        f"jobs={ex['jobs']:.0f}"
    )
    lines.append(
        f"  worker busy {ex['busy_s']:.3f}s over {ex['wall_s']:.3f}s wall "
        f"-> utilization {ex['utilization']:.1%} "
        f"(max queue wait {ex['max_queue_wait_s']:.3f}s)"
    )

    batch = batch_stats(document)
    lines.append("batching")
    if batch["buckets"] > 0:
        lines.append(
            f"  {batch['member_runs']:.0f} simulations in "
            f"{batch['buckets']:.0f} lockstep buckets "
            f"({batch['batched_share']:.1%} of executed tasks batched), "
            f"{batch['fallbacks']:.0f} scalar fallbacks"
        )
        lines.append(
            f"  occupancy mean {batch['mean_occupancy']:.1f} "
            f"max {batch['max_occupancy']:.0f} scenarios/bucket"
        )
        lines.append(
            f"  padding {batch['padded_slots']:.0f}/{batch['group_slots']:.0f} "
            f"admission slots masked ({batch['padded_waste']:.1%} waste)"
        )
    else:
        lines.append("  no batched simulation recorded")

    cache = cache_stats(document)
    lines.append("cache")
    if cache["probes"] > 0:
        lines.append(
            f"  {cache['hits']:.0f}/{cache['probes']:.0f} hits "
            f"({cache['hit_rate']:.1%}), {cache['misses']:.0f} misses, "
            f"{cache['stores']:.0f} stores, "
            f"{cache['bytes_written']:.0f} bytes written"
        )
    else:
        lines.append("  no cache activity recorded")

    phases = phase_timing(document)
    lines.append("step phases")
    if phases:
        total_ms = sum(ms for _, ms, _ in phases)
        for phase, ms, calls in phases:
            share = ms / total_ms if total_ms > 0 else 0.0
            per_call = (ms * 1e6 / calls) if calls > 0 else 0.0
            lines.append(
                f"  {phase:16s} {ms:10.2f} ms  {share:6.1%}  "
                f"{calls:10.0f} calls  {per_call:8.0f} ns/call"
            )
    else:
        lines.append("  no step-phase timing recorded")

    resilience = resilience_stats(document)
    if any(resilience.values()):
        lines.append("resilience")
        lines.append(
            f"  {resilience['retries']:.0f} retries, "
            f"{resilience['timeouts']:.0f} timeouts, "
            f"{resilience['quarantined']:.0f} quarantined, "
            f"{resilience['pool_rebuilds']:.0f} pool rebuilds"
        )
        if resilience["demotions"]:
            lines.append(
                f"  {resilience['demotions']:.0f} bucket members demoted "
                "to scalar execution"
            )

    lake = lake_stats(document)
    if any(lake.values()):
        lines.append("lake")
        lines.append(
            f"  {lake['queries']:.0f} queries over {lake['entries']:.0f} "
            f"entries; reconciliation dropped {lake['ghosts']:.0f} ghosts, "
            f"backfilled {lake['backfilled']:.0f}, shadowed "
            f"{lake['duplicates']:.0f} duplicates"
        )
        if lake["corrupt_lines"]:
            lines.append(
                f"  skipped {lake['corrupt_lines']:.0f} corrupt index "
                "lines (compact heals them)"
            )
        if lake["compact_entries"] or lake["compact_dropped"]:
            lines.append(
                f"  compaction kept {lake['compact_entries']:.0f} lines, "
                f"dropped {lake['compact_dropped']:.0f}"
            )

    counters = document.get("counters", {})
    engine_counters = {
        k: v for k, v in sorted(counters.items()) if k.startswith("engine.")
    }
    if engine_counters:
        lines.append("engine")
        for name, value in engine_counters.items():
            lines.append(f"  {name:32s} {value:.0f}")
    return "\n".join(lines)


def diff_documents(
    doc_a: Dict[str, Any],
    doc_b: Dict[str, Any],
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """The ``repro-io obs diff`` report comparing two telemetry documents."""
    lines = [f"telemetry diff: {label_a} vs {label_b}"]

    ex_a, ex_b = executor_stats(doc_a), executor_stats(doc_b)
    lines.append(
        f"  wall        {ex_a['wall_s']:12.3f}s {ex_b['wall_s']:12.3f}s"
    )
    lines.append(
        f"  utilization {ex_a['utilization']:12.1%} {ex_b['utilization']:12.1%}"
    )
    cache_a, cache_b = cache_stats(doc_a), cache_stats(doc_b)
    lines.append(
        f"  cache hits  {cache_a['hits']:12.0f} {cache_b['hits']:12.0f}"
    )
    lines.append(
        f"  hit rate    {cache_a['hit_rate']:12.1%} {cache_b['hit_rate']:12.1%}"
    )

    counters_a = doc_a.get("counters", {})
    counters_b = doc_b.get("counters", {})
    changed = []
    for name in sorted(set(counters_a) | set(counters_b)):
        a = float(counters_a.get(name, 0))
        b = float(counters_b.get(name, 0))
        if a != b:
            changed.append((name, a, b))
    lines.append(f"counters ({len(changed)} differ)")
    for name, a, b in changed:
        delta = b - a
        lines.append(f"  {name:32s} {a:14.0f} {b:14.0f}  ({delta:+.0f})")
    if not changed:
        lines.append("  all counters equal")
    return "\n".join(lines)
