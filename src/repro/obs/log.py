"""Structured diagnostics for the CLI and runner.

One small logger replaces the scattered ad-hoc ``print(..., file=sys.stderr)``
diagnostics: every line is machine-parseable ``level=... event=...`` followed
by ``key=value`` fields, values quoted only when they contain whitespace or
``=``.  Data outputs (reports, CSV, JSON documents) are *not* log lines and
keep going to stdout untouched — the logger owns stderr diagnostics only.

Verbosity is a process-wide threshold configured once by the CLI entry point
from ``--verbose``/``--quiet``: ``--quiet`` suppresses ``info`` (progress)
lines, ``--verbose`` additionally emits ``debug`` lines.  ``warn`` and
``error`` always print.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Optional, TextIO

__all__ = ["StructLogger", "get_logger", "configure_logging", "LEVELS"]

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        text = f"{value:.6g}"
    elif isinstance(value, bool):
        text = "true" if value else "false"
    else:
        text = str(value)
    if text == "" or any(c.isspace() for c in text) or "=" in text or '"' in text:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


class StructLogger:
    """Writes ``level=... event=... key=value`` lines above a threshold."""

    def __init__(self, stream: Optional[TextIO] = None, level: str = "info") -> None:
        self._stream = stream
        self.set_level(level)

    @property
    def stream(self) -> TextIO:
        # Resolved lazily so pytest's capsys (which swaps sys.stderr per
        # test) sees every line without re-configuring the logger.
        return self._stream if self._stream is not None else sys.stderr

    def set_level(self, level: str) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; known: {sorted(LEVELS)}")
        self.level = level
        self._threshold = LEVELS[level]

    def is_enabled(self, level: str) -> bool:
        """True when lines at ``level`` currently print."""
        return LEVELS[level] >= self._threshold

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit one structured line (no-op below the threshold)."""
        if LEVELS[level] < self._threshold:
            return
        parts = [f"level={level}", f"event={_format_value(event)}"]
        parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
        print(" ".join(parts), file=self.stream)

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warn(self, event: str, **fields: Any) -> None:
        self.log("warn", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


_logger = StructLogger()


def get_logger() -> StructLogger:
    """The process-wide logger (configured by the CLI entry point)."""
    return _logger


def configure_logging(
    *,
    verbose: bool = False,
    quiet: bool = False,
    stream: Optional[TextIO] = None,
) -> StructLogger:
    """Set the process-wide threshold from the CLI flags; returns the logger.

    ``quiet`` wins over ``verbose`` when both are given (suppressing output
    is the safer interpretation of a contradictory command line).
    """
    if quiet:
        _logger.set_level("warn")
    elif verbose:
        _logger.set_level("debug")
    else:
        _logger.set_level("info")
    if stream is not None:
        _logger._stream = stream
    return _logger
