"""Chrome ``trace_event`` export of a telemetry document.

:func:`to_chrome_trace` converts a validated ``telemetry.json`` document into
the JSON object format consumed by Perfetto (https://ui.perfetto.dev) and
chrome://tracing: a ``traceEvents`` array of complete (``"X"``) duration
events plus process/thread metadata.  Span tracks become trace threads;
overlapping spans on the same track (parallel workers interleaving) are
split into numbered lanes so the timeline renders without false nesting.

:func:`validate_chrome_trace` is the structural validator the tests and the
CI telemetry smoke run against an exported file — it checks exactly the
invariants the viewers rely on (event array, phase codes, microsecond
timestamps), not the full Trace Event spec.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import TelemetryError
from repro.obs.schema import validate_telemetry_document

__all__ = ["to_chrome_trace", "validate_chrome_trace"]

_PID = 1

#: Phase codes the validator accepts (the subset this exporter emits).
_KNOWN_PHASES = ("X", "M", "i", "C")


def _assign_lanes(spans: List[Dict[str, Any]]) -> Dict[int, int]:
    """Greedy lane assignment: span id -> lane index within its track.

    Spans sorted by start time go to the first lane whose previous span has
    ended; overlapping spans therefore never share a lane, which is what
    keeps sibling task spans from rendering as a false call stack.
    """
    lanes_end: List[float] = []
    assignment: Dict[int, int] = {}
    for span in sorted(spans, key=lambda s: (s["start_us"], s["id"])):
        start, end = span["start_us"], span["start_us"] + span["dur_us"]
        for lane, lane_end in enumerate(lanes_end):
            if lane_end <= start:
                assignment[span["id"]] = lane
                lanes_end[lane] = end
                break
        else:
            assignment[span["id"]] = len(lanes_end)
            lanes_end.append(end)
    return assignment


def to_chrome_trace(document: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a telemetry document into a Chrome trace_event JSON object.

    The input is validated first, so a malformed document fails here rather
    than producing a trace the viewer silently refuses to load.
    """
    validate_telemetry_document(document)
    spans = document.get("spans", [])

    by_track: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        by_track.setdefault(span["track"], []).append(span)

    events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": _PID,
        "tid": 0,
        "args": {"name": f"repro-io {document.get('label') or 'run'}"},
    }]

    tid = 0
    for track in sorted(by_track):
        track_spans = by_track[track]
        lanes = _assign_lanes(track_spans)
        n_lanes = max(lanes.values()) + 1 if lanes else 1
        base_tid = tid
        for lane in range(n_lanes):
            name = track if n_lanes == 1 else f"{track}/{lane}"
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": base_tid + lane,
                "args": {"name": name},
            })
        for span in track_spans:
            args = dict(span.get("args", {}))
            args["span_id"] = span["id"]
            if span.get("parent") is not None:
                args["parent_span_id"] = span["parent"]
            events.append({
                "name": span["name"],
                "cat": span["category"],
                "ph": "X",
                "ts": float(span["start_us"]),
                "dur": float(span["dur_us"]),
                "pid": _PID,
                "tid": base_tid + lanes[span["id"]],
                "args": args,
            })
        tid = base_tid + n_lanes

    # Final counter values as one counter sample at the end of the run, so
    # the trace carries the cache/engine totals without a time series.
    counters = document.get("counters", {})
    if counters:
        events.append({
            "name": "counters",
            "ph": "C",
            "ts": float(document.get("duration_us", 0.0)),
            "pid": _PID,
            "tid": 0,
            "args": {k: float(v) for k, v in sorted(counters.items())},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": document["schema"],
            "label": document.get("label", ""),
            "run_id": document.get("run_id"),
        },
    }


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise TelemetryError(f"invalid chrome trace at {path}: {message}")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_chrome_trace(trace: object) -> Dict:
    """Structurally validate a Chrome trace_event JSON object.

    Checks the invariants Perfetto/chrome://tracing rely on to load the
    file: a ``traceEvents`` array whose entries carry a name, a known phase
    code, and integer pid/tid; duration (``"X"``) events additionally carry
    non-negative microsecond ``ts``/``dur``.
    """
    _require(isinstance(trace, dict), "$", "trace must be a JSON object")
    assert isinstance(trace, dict)
    events = trace.get("traceEvents")
    _require(isinstance(events, list) and len(events) > 0, "$.traceEvents",
             "must be a non-empty array")
    assert isinstance(events, list)
    for index, event in enumerate(events):
        path = f"$.traceEvents[{index}]"
        _require(isinstance(event, dict), path, "event must be an object")
        assert isinstance(event, dict)
        _require(isinstance(event.get("name"), str) and event["name"],
                 f"{path}.name", "must be a non-empty string")
        phase = event.get("ph")
        _require(phase in _KNOWN_PHASES, f"{path}.ph",
                 f"must be one of {_KNOWN_PHASES}")
        _require(isinstance(event.get("pid"), int), f"{path}.pid",
                 "must be an integer")
        _require(isinstance(event.get("tid"), int), f"{path}.tid",
                 "must be an integer")
        if phase in ("X", "i", "C"):
            _require(_is_number(event.get("ts")), f"{path}.ts",
                     "must be a number (microseconds)")
        if phase == "X":
            dur = event.get("dur")
            _require(_is_number(dur) and dur >= 0, f"{path}.dur",
                     "must be a non-negative number (microseconds)")
        if "args" in event:
            _require(isinstance(event["args"], dict), f"{path}.args",
                     "must be an object")
    return trace
