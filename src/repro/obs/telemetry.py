"""The telemetry registry: counters, gauges, histograms, and spans.

One :class:`Telemetry` instance collects everything a run produces:

* **counters** — monotonically accumulated numbers (``cache.hit``,
  ``engine.events.scheduled``);
* **gauges** — last-write-wins values (``executor.jobs``);
* **histograms** — ``count/sum/min/max`` aggregates of repeated observations
  (``step.phase.drain.ns`` across the simulations of a campaign);
* **spans** — hierarchical timed intervals (campaign → task → simulation →
  step-phase) that render as a Perfetto/chrome://tracing timeline through
  :mod:`repro.obs.export`;
* **events** — an append-only log of point-in-time marks, persisted as one
  JSON object per line (``telemetry_events.jsonl``).

Zero overhead when disabled
---------------------------
The module-level *current telemetry* defaults to :data:`NULL`, a no-op
singleton whose ``enabled`` attribute is ``False`` and whose every method
does nothing.  Instrumentation points therefore cost one
``get_telemetry().enabled`` check on the disabled path — and the simulation
hot paths (the stepping kernel, the event heap) carry **no** telemetry calls
at all: they maintain plain integer counters that are *published* into the
registry once, after the run (see
:meth:`repro.sim.engine.Simulator.counter_stats` and
:class:`repro.perf.counters.StepProfiler`).  Telemetry must never perturb
simulation state: it touches no RNG stream and no model array, so results
are byte-identical with telemetry on and off (pinned by the golden tests).

Naming convention
-----------------
Dotted ``subsystem.noun[.verb]`` lower-case names: ``engine.events.scheduled``,
``cache.hit``, ``cache.bytes_written``, ``executor.tasks.completed``,
``sim.steps``, ``step.phase.<phase>.ns``.  Span categories are one of
``campaign``, ``task``, ``bucket``, ``simulation``, ``phase`` (``bucket``
spans are the pool work units of batched parallel dispatch; they carry
member ``task`` spans without being tasks themselves).

Worker processes
----------------
A worker process collects into its own local :class:`Telemetry` and ships a
:meth:`snapshot` back with its result; the parent folds it in with
:meth:`merge_snapshot`, re-anchoring the worker's span times onto the parent
timeline via the wall-clock epoch both sides record (same host, same clock).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "TELEMETRY_SCHEMA_ID",
    "Telemetry",
    "NULL",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
]

TELEMETRY_SCHEMA_ID = "repro-io/telemetry/v1"

#: Span categories, outermost first (the canonical hierarchy).  ``bucket``
#: sits beside ``task``: it is the pool work unit that carries a batch of
#: member tasks under parallel dispatch, and is excluded from task counts.
SPAN_CATEGORIES = ("campaign", "task", "bucket", "simulation", "phase")


class Telemetry:
    """A live telemetry registry (``enabled`` is always ``True``).

    Parameters
    ----------
    label:
        Human-readable name of the run this registry covers (e.g.
        ``"matrix"``); recorded in the exported document.
    """

    enabled = True

    def __init__(self, label: str = "") -> None:
        self.label = str(label)
        #: Wall-clock anchor: ``epoch + t_us/1e6`` is the absolute instant of
        #: any relative microsecond timestamp in this registry.
        self.epoch = time.time()
        self._t0_ns = time.perf_counter_ns()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}
        self._spans: List[Dict[str, Any]] = []
        self._events: List[Dict[str, Any]] = []
        self._next_span_id = 1
        self._span_stack: List[int] = []

    # ------------------------------------------------------------------ #
    # Clock
    # ------------------------------------------------------------------ #

    def now_us(self) -> float:
        """Microseconds since this registry was created (monotonic)."""
        return (time.perf_counter_ns() - self._t0_ns) / 1000.0

    # ------------------------------------------------------------------ #
    # Counters / gauges / histograms
    # ------------------------------------------------------------------ #

    def count(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one observation into histogram ``name``."""
        value = float(value)
        hist = self._histograms.get(name)
        if hist is None:
            self._histograms[name] = {
                "count": 1, "sum": value, "min": value, "max": value,
            }
            return
        hist["count"] += 1
        hist["sum"] += value
        if value < hist["min"]:
            hist["min"] = value
        if value > hist["max"]:
            hist["max"] = value

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (zero when never written)."""
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------ #
    # Spans
    # ------------------------------------------------------------------ #

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open context-manager span, or ``None``."""
        return self._span_stack[-1] if self._span_stack else None

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "task",
        track: str = "main",
        **args: Any,
    ) -> Iterator[int]:
        """Open a span covering the ``with`` body; yields the span id.

        Nested ``span()`` blocks parent automatically; spans created with
        :meth:`add_span` while the block is open can parent onto
        :meth:`current_span_id`.
        """
        record = {
            "id": self._next_span_id,
            "parent": self.current_span_id(),
            "name": str(name),
            "category": str(category),
            "track": str(track),
            "start_us": self.now_us(),
            "dur_us": 0.0,
            "args": dict(args),
        }
        self._next_span_id += 1
        self._spans.append(record)
        self._span_stack.append(record["id"])
        try:
            yield record["id"]
        finally:
            self._span_stack.pop()
            record["dur_us"] = self.now_us() - record["start_us"]

    def add_span(
        self,
        name: str,
        category: str,
        start_us: float,
        dur_us: float,
        *,
        parent: Optional[int] = None,
        track: str = "main",
        args: Optional[Mapping[str, Any]] = None,
    ) -> int:
        """Record an already-measured span; returns its id.

        ``start_us`` is relative to this registry's creation (see
        :meth:`now_us`); ``parent`` defaults to the innermost open
        context-manager span.
        """
        record = {
            "id": self._next_span_id,
            "parent": self.current_span_id() if parent is None else int(parent),
            "name": str(name),
            "category": str(category),
            "track": str(track),
            "start_us": float(start_us),
            "dur_us": max(float(dur_us), 0.0),
            "args": dict(args) if args else {},
        }
        self._next_span_id += 1
        self._spans.append(record)
        return record["id"]

    # ------------------------------------------------------------------ #
    # Events
    # ------------------------------------------------------------------ #

    def event(self, name: str, **fields: Any) -> None:
        """Append one point-in-time mark to the event log."""
        record: Dict[str, Any] = {"ts_us": self.now_us(), "event": str(name)}
        record.update(fields)
        self._events.append(record)

    # ------------------------------------------------------------------ #
    # Worker transport
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable snapshot for shipping across a process boundary.

        Carries the scalar aggregates plus the spans (with this registry's
        epoch so the receiver can re-anchor them); the event log stays local.
        """
        return {
            "epoch": self.epoch,
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {k: dict(v) for k, v in self._histograms.items()},
            "spans": [dict(s) for s in self._spans],
        }

    def merge_snapshot(
        self,
        snap: Mapping[str, Any],
        *,
        parent: Optional[int] = None,
        track: Optional[str] = None,
    ) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters add, gauges last-write-win, histograms merge, and spans are
        re-anchored onto this registry's timeline through the wall-clock
        epoch both registries recorded (both processes share the host
        clock).  Root spans of the snapshot attach under ``parent``; every
        merged span lands on ``track`` when given.
        """
        for name, value in snap.get("counters", {}).items():
            self.count(name, value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name, value)
        for name, hist in snap.get("histograms", {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = dict(hist)
                continue
            mine["count"] += hist["count"]
            mine["sum"] += hist["sum"]
            mine["min"] = min(mine["min"], hist["min"])
            mine["max"] = max(mine["max"], hist["max"])
        offset_us = (float(snap.get("epoch", self.epoch)) - self.epoch) * 1e6
        id_map: Dict[int, int] = {}
        for span in snap.get("spans", []):
            old_parent = span.get("parent")
            new_parent = id_map.get(old_parent, parent)
            id_map[span["id"]] = self.add_span(
                span["name"],
                span["category"],
                span["start_us"] + offset_us,
                span["dur_us"],
                parent=new_parent,
                track=track if track is not None else span.get("track", "main"),
                args=span.get("args"),
            )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def to_document(
        self,
        run_id: Optional[str] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The ``telemetry.json`` document (validates against the schema)."""
        duration = max(
            [self.now_us()] + [s["start_us"] + s["dur_us"] for s in self._spans]
        )
        document: Dict[str, Any] = {
            "schema": TELEMETRY_SCHEMA_ID,
            "label": self.label,
            "run_id": run_id,
            "created": float(self.epoch),
            "duration_us": float(duration),
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: dict(self._histograms[k]) for k in sorted(self._histograms)
            },
            "spans": [dict(s) for s in self._spans],
            "n_events": len(self._events),
        }
        if meta:
            document["meta"] = dict(meta)
        return document

    def events_jsonl(self) -> str:
        """The event log as JSON Lines (one object per line, trailing NL)."""
        if not self._events:
            return ""
        return "\n".join(
            json.dumps(e, sort_keys=True, separators=(",", ":"))
            for e in self._events
        ) + "\n"


class _NullContext:
    """Reusable no-op context manager (allocation-free on reuse)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


class _NullTelemetry:
    """The disabled singleton: every operation is a no-op.

    ``enabled`` is ``False`` so instrumentation points can guard heavier
    collection (building args dicts, snapshotting) behind one check.
    """

    enabled = False
    label = ""
    _CTX = _NullContext()

    def now_us(self) -> float:
        return 0.0

    def count(self, name: str, delta: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> float:
        return 0

    def current_span_id(self) -> Optional[int]:
        return None

    def span(self, name: str, category: str = "task", track: str = "main",
             **args: Any) -> _NullContext:
        return self._CTX

    def add_span(self, *a: Any, **kw: Any) -> int:
        return 0

    def event(self, name: str, **fields: Any) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def merge_snapshot(self, snap: Mapping[str, Any], **kw: Any) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullTelemetry>"


#: The process-wide disabled singleton.
NULL = _NullTelemetry()

_current = NULL


def get_telemetry():
    """The current telemetry registry (:data:`NULL` unless a session is open)."""
    return _current


def set_telemetry(telemetry) -> None:
    """Install ``telemetry`` as the current registry (``None`` -> :data:`NULL`)."""
    global _current
    _current = NULL if telemetry is None else telemetry


@contextmanager
def telemetry_session(label: str = "") -> Iterator[Telemetry]:
    """Open a fresh :class:`Telemetry` as the current registry.

    Restores the previous registry on exit, so sessions nest safely (the
    inner session simply shadows the outer one for its duration).
    """
    previous = get_telemetry()
    session = Telemetry(label=label)
    set_telemetry(session)
    try:
        yield session
    finally:
        set_telemetry(previous)
