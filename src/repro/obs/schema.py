"""Validation of the ``telemetry.json`` document.

Plain-Python structural validation in the style of
:mod:`repro.perf.schema` (the container deliberately carries no
``jsonschema`` dependency): every violation raises
:class:`~repro.errors.TelemetryError` naming the offending path, so a
malformed persisted document fails the CI telemetry smoke loudly instead of
summarizing garbage.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import TelemetryError
from repro.obs.telemetry import TELEMETRY_SCHEMA_ID

__all__ = [
    "validate_telemetry_document",
    "validate_events_jsonl",
]

_SPAN_CATEGORIES = ("campaign", "task", "bucket", "simulation", "phase")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise TelemetryError(f"invalid telemetry document at {path}: {message}")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_scalar_map(document: Dict, key: str) -> None:
    mapping = document.get(key)
    _require(isinstance(mapping, dict), f"$.{key}", "must be an object")
    for name, value in mapping.items():
        _require(isinstance(name, str) and name, f"$.{key}[{name!r}]",
                 "metric names must be non-empty strings")
        _require(_is_number(value), f"$.{key}[{name!r}]", "must be a number")


def _validate_histogram(path: str, entry: object) -> None:
    _require(isinstance(entry, dict), path, "histogram entry must be an object")
    assert isinstance(entry, dict)
    count = entry.get("count")
    _require(isinstance(count, int) and count >= 1, f"{path}.count",
             "must be an integer >= 1")
    for field in ("sum", "min", "max"):
        _require(_is_number(entry.get(field)), f"{path}.{field}",
                 "must be a number")
    _require(entry["min"] <= entry["max"], path, "min must be <= max")


def _validate_span(path: str, span: object, seen_ids: set) -> None:
    _require(isinstance(span, dict), path, "span must be an object")
    assert isinstance(span, dict)
    span_id = span.get("id")
    _require(isinstance(span_id, int) and span_id >= 1, f"{path}.id",
             "must be an integer >= 1")
    _require(span_id not in seen_ids, f"{path}.id", "span ids must be unique")
    seen_ids.add(span_id)
    parent = span.get("parent")
    _require(parent is None or (isinstance(parent, int) and parent in seen_ids),
             f"{path}.parent",
             "must be null or the id of an earlier span")
    _require(isinstance(span.get("name"), str) and span["name"],
             f"{path}.name", "must be a non-empty string")
    _require(span.get("category") in _SPAN_CATEGORIES, f"{path}.category",
             f"must be one of {_SPAN_CATEGORIES}")
    _require(isinstance(span.get("track"), str), f"{path}.track",
             "must be a string")
    _require(_is_number(span.get("start_us")), f"{path}.start_us",
             "must be a number")
    dur = span.get("dur_us")
    _require(_is_number(dur) and dur >= 0, f"{path}.dur_us",
             "must be a non-negative number")
    _require(isinstance(span.get("args"), dict), f"{path}.args",
             "must be an object")


def validate_telemetry_document(document: object) -> Dict:
    """Validate ``document``; return it (typed as a dict) when well-formed."""
    _require(isinstance(document, dict), "$", "document must be a JSON object")
    assert isinstance(document, dict)
    _require(document.get("schema") == TELEMETRY_SCHEMA_ID, "$.schema",
             f"must be {TELEMETRY_SCHEMA_ID!r}, got {document.get('schema')!r}")
    _require(isinstance(document.get("label"), str), "$.label",
             "must be a string")
    run_id = document.get("run_id")
    _require(run_id is None or isinstance(run_id, str), "$.run_id",
             "must be null or a string")
    _require(_is_number(document.get("created")), "$.created",
             "must be a number (unix epoch)")
    duration = document.get("duration_us")
    _require(_is_number(duration) and duration >= 0, "$.duration_us",
             "must be a non-negative number")
    _validate_scalar_map(document, "counters")
    _validate_scalar_map(document, "gauges")
    histograms = document.get("histograms")
    _require(isinstance(histograms, dict), "$.histograms", "must be an object")
    assert isinstance(histograms, dict)
    for name, entry in histograms.items():
        _validate_histogram(f"$.histograms[{name!r}]", entry)
    spans = document.get("spans")
    _require(isinstance(spans, list), "$.spans", "must be an array")
    assert isinstance(spans, list)
    seen: set = set()
    for index, span in enumerate(spans):
        _validate_span(f"$.spans[{index}]", span, seen)
    n_events = document.get("n_events")
    _require(isinstance(n_events, int) and n_events >= 0, "$.n_events",
             "must be a non-negative integer")
    meta = document.get("meta")
    _require(meta is None or isinstance(meta, dict), "$.meta",
             "must be an object when present")
    return document


def validate_events_jsonl(text: str) -> List[Dict[str, Any]]:
    """Validate an events JSONL payload; return the parsed event records.

    Every non-empty line must be a JSON object carrying a numeric ``ts_us``
    and a non-empty string ``event``.
    """
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TelemetryError(
                f"invalid events log line {lineno}: not JSON ({exc})"
            ) from None
        if not isinstance(record, dict):
            raise TelemetryError(
                f"invalid events log line {lineno}: must be a JSON object"
            )
        if not _is_number(record.get("ts_us")):
            raise TelemetryError(
                f"invalid events log line {lineno}: ts_us must be a number"
            )
        if not (isinstance(record.get("event"), str) and record["event"]):
            raise TelemetryError(
                f"invalid events log line {lineno}: event must be a "
                "non-empty string"
            )
        events.append(record)
    return events
