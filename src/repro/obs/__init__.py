"""Unified telemetry: counters, spans, structured logs, and trace export.

The package is built around one invariant: **zero overhead when disabled**.
:func:`get_telemetry` returns a no-op singleton until a CLI entry point (or a
test) installs a live :class:`Telemetry` via :func:`telemetry_session`, so
instrumented call sites cost one attribute check in the common case and the
simulation hot paths carry no telemetry calls at all (the engine publishes
plain counters post-run).

Layout:

- :mod:`repro.obs.telemetry` — the registry (counters/gauges/histograms),
  hierarchical spans, worker snapshot/merge, and the document builder.
- :mod:`repro.obs.schema` — plain-Python validators for ``telemetry.json``
  and the events JSONL.
- :mod:`repro.obs.export` — Chrome ``trace_event`` (Perfetto) exporter and
  its structural validator.
- :mod:`repro.obs.summary` — the ``repro-io obs summary``/``diff`` reports.
- :mod:`repro.obs.log` — structured ``level=... event=...`` stderr logging.
"""

from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.log import StructLogger, configure_logging, get_logger
from repro.obs.schema import validate_events_jsonl, validate_telemetry_document
from repro.obs.summary import (
    TELEMETRY_DOCUMENT_NAME,
    TELEMETRY_EVENTS_NAME,
    diff_documents,
    load_run_telemetry,
    summarize_document,
)
from repro.obs.telemetry import (
    NULL,
    SPAN_CATEGORIES,
    TELEMETRY_SCHEMA_ID,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)

__all__ = [
    "NULL",
    "SPAN_CATEGORIES",
    "TELEMETRY_DOCUMENT_NAME",
    "TELEMETRY_EVENTS_NAME",
    "TELEMETRY_SCHEMA_ID",
    "StructLogger",
    "Telemetry",
    "configure_logging",
    "diff_documents",
    "get_logger",
    "get_telemetry",
    "load_run_telemetry",
    "set_telemetry",
    "summarize_document",
    "telemetry_session",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_events_jsonl",
    "validate_telemetry_document",
]
