"""repro — a reproduction of *On the Root Causes of Cross-Application I/O
Interference in HPC Storage Systems* (Yildiz, Dorier, Ibrahim, Ross, Antoniu,
IPDPS 2016).

The package provides:

* an event-driven / fluid simulator of the HPC write path (compute-node NICs,
  a TCP-like transport, PVFS-like servers with bounded buffers, write-back
  caches and backend devices) — the simulator the paper names as its intended
  follow-up work,
* the paper's characterization methodology as a library: two-application
  Δ-graph experiments, interference-factor and unfairness metrics, root-cause
  attribution and Incast detection,
* ready-made reproductions of every table and figure of the paper's
  evaluation, plus the mitigation baselines the related work proposes.

Quick start::

    from repro import make_scenario, simulate_scenario

    scenario = make_scenario("reduced", device="hdd", sync_mode="sync-on", delay=5.0)
    result = simulate_scenario(scenario)
    print(result.describe())

See ``examples/quickstart.py`` for a complete walk-through and
``DESIGN.md`` / ``EXPERIMENTS.md`` for the reproduction methodology.
"""

from repro._version import __version__
from repro.config import (
    AccessKind,
    ApplicationSpec,
    FileSystemConfig,
    NetworkConfig,
    PatternSpec,
    PlatformConfig,
    ScenarioConfig,
    ServerConfig,
    SimulationControl,
    SyncMode,
    TransportConfig,
    grid5000_platform,
    make_scenario,
    paper_scale,
    reduced_scale,
    tiny_scale,
)
from repro.config.presets import make_multi_app_scenario, make_single_app_scenario
from repro.model import (
    IOPathSimulator,
    RunResult,
    simulate_local_writes,
    simulate_scenario,
)
from repro.storage import device_by_name

__all__ = [
    "__version__",
    # configuration
    "AccessKind",
    "ApplicationSpec",
    "FileSystemConfig",
    "NetworkConfig",
    "PatternSpec",
    "PlatformConfig",
    "ScenarioConfig",
    "ServerConfig",
    "SimulationControl",
    "SyncMode",
    "TransportConfig",
    "grid5000_platform",
    "make_scenario",
    "make_single_app_scenario",
    "make_multi_app_scenario",
    "paper_scale",
    "reduced_scale",
    "tiny_scale",
    # simulation
    "IOPathSimulator",
    "RunResult",
    "simulate_scenario",
    "simulate_local_writes",
    # storage
    "device_by_name",
]
