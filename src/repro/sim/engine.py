"""The discrete-event simulation engine.

The engine is a classic event-heap kernel:

* :meth:`Simulator.schedule` inserts a callback at an absolute simulated time,
* :meth:`Simulator.schedule_after` inserts relative to the current time,
* :meth:`Simulator.run` pops events in ``(time, priority, insertion)`` order
  and invokes their callbacks until the queue is empty, a horizon is reached,
  or a stop condition is met.

Determinism
-----------
Two runs with the same configuration and seeds execute exactly the same event
sequence: ties are broken by an insertion counter, and callbacks are never
compared or hashed for ordering.

The I/O-path model (:mod:`repro.model`) uses the engine for application phase
starts, periodic model steps, and trace sampling; unit tests exercise it as a
general-purpose DES kernel.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import Event, EventPriority

__all__ = ["Simulator"]

#: Heaps smaller than this are never compacted (a rebuild would cost more
#: than the dead entries it removes).
_COMPACTION_MIN_SIZE = 64


class Simulator:
    """Discrete-event simulator with a monotonic clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).  Negative values are
        allowed; the paper's Δ-graphs place the second application at
        ``t = dt`` which may be negative relative to the first.
    horizon:
        Optional hard limit on simulated time.  Scheduling an event beyond the
        horizon raises :class:`~repro.errors.SchedulingError`; reaching it
        during :meth:`run` raises :class:`~repro.errors.SimulationError`
        unless ``run`` was called with ``until`` at or before the horizon.
    """

    def __init__(self, start_time: float = 0.0, horizon: Optional[float] = None) -> None:
        self._now = float(start_time)
        self._start_time = float(start_time)
        self._horizon = None if horizon is None else float(horizon)
        self._heap: list[tuple[tuple[float, int, int], Event]] = []
        self._seq = 0
        self._n_cancelled = 0
        self._n_stale = 0
        self._events_processed = 0
        # Monotonic lifetime totals, unlike _n_cancelled/_n_stale which are
        # live heap-bookkeeping and get decremented as corpses are dropped.
        # Plain int increments so the hot path carries no telemetry calls;
        # stats() publishes them into the telemetry registry post-run.
        self._stat_scheduled = 0
        self._stat_cancelled = 0
        self._stat_rescheduled = 0
        self._stat_compactions = 0
        self._running = False
        self._stopped = False
        self._stop_reason: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Clock and introspection
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def start_time(self) -> float:
        """Simulated time at which the simulator was created."""
        return self._start_time

    @property
    def horizon(self) -> Optional[float]:
        """Hard limit on simulated time, or ``None`` if unbounded."""
        return self._horizon

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return len(self._heap) - self._n_cancelled - self._n_stale

    @property
    def heap_size(self) -> int:
        """Number of heap entries, including cancelled-but-not-popped ones
        and stale duplicates left behind by in-place reschedules."""
        return len(self._heap)

    @property
    def is_running(self) -> bool:
        """True while :meth:`run` is executing callbacks."""
        return self._running

    @property
    def stop_reason(self) -> Optional[str]:
        """Reason given to :meth:`stop`, if the run was stopped early."""
        return self._stop_reason

    def peek_next_time(self) -> Optional[float]:
        """Return the time of the next live event, or ``None`` if empty."""
        self._settle_head()
        if not self._heap:
            return None
        return self._heap[0][1].time

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self,
        time: float,
        callback: Callable[["Simulator"], None],
        *,
        priority: EventPriority = EventPriority.NORMAL,
        label: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Returns the :class:`~repro.sim.events.Event`, which can be cancelled.

        Raises
        ------
        SchedulingError
            If ``time`` is in the past or beyond the horizon.
        """
        time = float(time)
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event {label!r} at t={time:.6f}: "
                f"clock is already at t={self._now:.6f}"
            )
        if self._horizon is not None and time > self._horizon:
            raise SchedulingError(
                f"cannot schedule event {label!r} at t={time:.6f}: "
                f"beyond horizon t={self._horizon:.6f}"
            )
        event = Event(
            time=time,
            priority=priority,
            seq=self._seq,
            callback=callback,
            label=label,
            payload=payload,
            on_cancel=self._note_cancelled,
            heap_time=time,
        )
        self._seq += 1
        self._stat_scheduled += 1
        heapq.heappush(self._heap, (event.sort_key(), event))
        return event

    def reschedule(self, event: Event, time: float) -> Event:
        """Move a pending ``event`` to a new absolute ``time`` in place.

        Unlike ``event.cancel()`` plus a fresh :meth:`schedule`, rescheduling
        leaves no cancelled corpse behind, so drivers that re-anchor the same
        event on every control change (the adaptive stepping driver) no
        longer grow the heap or trigger compactions:

        * moving *later* (the common case) is O(1) now — the heap entry is
          re-keyed lazily when it surfaces at the heap head;
        * moving *earlier* pushes one new entry and leaves a stale duplicate
          that is dropped, uncounted, when it surfaces.

        The event keeps its insertion sequence number, so ties at the same
        (time, priority) resolve deterministically across runs.

        Raises
        ------
        SchedulingError
            If ``time`` is in the past or beyond the horizon, or the event
            has already fired or been cancelled.
        """
        time = float(time)
        if event.cancelled or event.heap_time is None:
            raise SchedulingError(
                f"cannot reschedule event {event.label!r}: already fired or cancelled"
            )
        if time < self._now:
            raise SchedulingError(
                f"cannot reschedule event {event.label!r} to t={time:.6f}: "
                f"clock is already at t={self._now:.6f}"
            )
        if self._horizon is not None and time > self._horizon:
            raise SchedulingError(
                f"cannot reschedule event {event.label!r} to t={time:.6f}: "
                f"beyond horizon t={self._horizon:.6f}"
            )
        self._stat_rescheduled += 1
        if time >= event.heap_time:
            # Lazy re-key: fix up when the old entry reaches the heap head.
            event.time = time
        else:
            event.time = time
            event.heap_time = time
            self._n_stale += 1  # the old entry becomes a stale duplicate
            heapq.heappush(self._heap, (event.sort_key(), event))
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[["Simulator"], None],
        *,
        priority: EventPriority = EventPriority.NORMAL,
        label: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r} for event {label!r}")
        return self.schedule(
            self._now + float(delay),
            callback,
            priority=priority,
            label=label,
            payload=payload,
        )

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[["Simulator"], None],
        *,
        start: Optional[float] = None,
        priority: EventPriority = EventPriority.NORMAL,
        label: str = "",
        stop_when: Optional[Callable[["Simulator"], bool]] = None,
    ) -> Event:
        """Schedule ``callback`` every ``period`` seconds.

        The callback fires first at ``start`` (default: now + period) and is
        rescheduled after each invocation until ``stop_when(sim)`` returns
        True (checked before each firing) or the simulation ends.

        Returns the first scheduled event.
        """
        if period <= 0:
            raise SchedulingError(f"periodic event {label!r} needs a positive period")

        def _fire(sim: "Simulator") -> None:
            if stop_when is not None and stop_when(sim):
                return
            callback(sim)
            if stop_when is not None and stop_when(sim):
                return
            next_time = sim.now + period
            if sim.horizon is not None and next_time > sim.horizon:
                return
            sim.schedule(next_time, _fire, priority=priority, label=label)

        first = self._now + period if start is None else float(start)
        return self.schedule(first, _fire, priority=priority, label=label)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def stop(self, reason: str = "stopped") -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stopped = True
        self._stop_reason = reason

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event was executed, ``False`` if the queue was
        empty.
        """
        self._settle_head()
        if not self._heap:
            return False
        _, event = heapq.heappop(self._heap)
        # The event is out of the heap; a late cancel() must not count
        # toward the cancelled-but-heaped total, and a reschedule() of the
        # fired event must fall back to a fresh schedule().
        event.on_cancel = None
        event.heap_time = None
        if event.time < self._now:  # pragma: no cover - heap invariant guard
            raise SimulationError(
                f"event {event!r} would move the clock backwards from {self._now}"
            )
        self._now = event.time
        self._events_processed += 1
        event.callback(self)
        return True

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue is empty, ``until`` is reached, or stopped.

        Parameters
        ----------
        until:
            If given, stop once the next event would be strictly after
            ``until`` and advance the clock to ``until``.
        max_events:
            Safety valve; raise :class:`~repro.errors.SimulationError` if more
            than this many events execute (guards against run-away periodic
            events in misconfigured models).

        Returns
        -------
        float
            The simulation clock at the end of the run.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until:.6f}: clock already at t={self._now:.6f}"
            )
        self._running = True
        self._stopped = False
        self._stop_reason = None
        executed = 0
        try:
            while True:
                if self._stopped:
                    break
                self._settle_head()
                if not self._heap:
                    break
                next_time = self._heap[0][1].time
                if until is not None and next_time > until:
                    self._now = float(until)
                    break
                if self._horizon is not None and next_time > self._horizon:
                    raise SimulationError(
                        f"simulation reached horizon t={self._horizon:.6f} with "
                        f"{self.pending_events} pending events"
                    )
                self.step()
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"executed more than max_events={max_events} events; "
                        "likely a run-away periodic event"
                    )
            else:  # pragma: no cover - unreachable
                pass
            if until is not None and not self._stopped and self._now < until:
                # Queue drained before reaching `until`.
                self._now = float(until)
        finally:
            self._running = False
        return self._now

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _note_cancelled(self, _event: Event) -> None:
        """Account for one cancellation; compact when dead entries dominate.

        Cancelled events stay in the heap until popped, so a workload that
        keeps rescheduling (e.g. the adaptive stepping driver re-anchoring
        its step event on every control change) would otherwise grow the
        heap with corpses.  Rebuilding once more than half the entries are
        dead keeps the amortized cost per cancellation O(log n).
        """
        self._n_cancelled += 1
        self._stat_cancelled += 1
        if (
            len(self._heap) >= _COMPACTION_MIN_SIZE
            and self._n_cancelled * 2 > len(self._heap)
        ):
            self.drain_cancelled()

    def _settle_head(self) -> None:
        """Bring a live, correctly-keyed event to the heap head.

        Drops stale duplicates (from earlier-reschedules) and cancelled
        entries, and lazily re-keys events that were rescheduled to a later
        time than their heap entry.
        """
        heap = self._heap
        while heap:
            key, event = heap[0]
            entry_time = key[0]
            if event.heap_time != entry_time:
                # Stale duplicate left behind by an in-place reschedule
                # (includes entries of already-fired events, heap_time None).
                heapq.heappop(heap)
                self._n_stale -= 1
                continue
            if event.cancelled:
                heapq.heappop(heap)
                self._n_cancelled -= 1
                continue
            if event.time > entry_time:
                # Lazily retimed to a later instant: re-key in place.
                heapq.heappop(heap)
                event.heap_time = event.time
                heapq.heappush(heap, (event.sort_key(), event))
                continue
            return

    def drain_cancelled(self) -> int:
        """Remove all cancelled and stale entries from the heap; return how
        many entries were removed."""
        self._stat_compactions += 1
        before = len(self._heap)
        live = [
            (key, ev)
            for key, ev in self._heap
            if not ev.cancelled and ev.heap_time == key[0]
        ]
        heapq.heapify(live)
        self._heap = live
        self._n_cancelled = 0
        self._n_stale = 0
        return before - len(self._heap)

    def stats(self) -> dict:
        """Lifetime event-kernel totals for the telemetry registry.

        Monotonic over the simulator's life (never decremented by heap
        cleanup), keyed with the ``engine.*`` telemetry naming convention so
        callers can feed the dict straight into ``Telemetry.count``.
        """
        return {
            "engine.events.scheduled": self._stat_scheduled,
            "engine.events.processed": self._events_processed,
            "engine.events.cancelled": self._stat_cancelled,
            "engine.events.rescheduled": self._stat_rescheduled,
            "engine.heap.compactions": self._stat_compactions,
        }

    def iter_pending(self) -> Iterable[Event]:
        """Yield pending (non-cancelled) events in no particular order."""
        for key, event in self._heap:
            if not event.cancelled and event.heap_time == key[0]:
                yield event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:.6f} pending={self.pending_events} "
            f"processed={self._events_processed}>"
        )
