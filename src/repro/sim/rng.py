"""Reproducible named random streams.

Every stochastic element of the simulator (arrival jitter, service-order
noise, seek-distance variation) draws from its own named stream so that

* two runs with the same master seed are bit-identical,
* changing how many numbers one component consumes does not perturb any other
  component (streams are independent),
* Δ-graph sweeps can use "common random numbers" across the ``dt`` axis to
  reduce variance, simply by reusing the same master seed.

Streams are created lazily from a :class:`numpy.random.SeedSequence` spawned
deterministically from ``(master_seed, name)``.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, named :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        if not isinstance(master_seed, (int, np.integer)):
            raise TypeError(f"master_seed must be an int, got {type(master_seed).__name__}")
        self._master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The master seed all streams are derived from."""
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The same ``(master_seed, name)`` pair always yields a generator that
        produces the same sequence, regardless of creation order.
        """
        if name not in self._streams:
            # Derive a stable 32-bit key from the name; combine with the seed
            # through SeedSequence so streams are statistically independent.
            name_key = zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF
            seq = np.random.SeedSequence(entropy=self._master_seed, spawn_key=(name_key,))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def known_streams(self) -> Iterable[str]:
        """Names of streams created so far (useful in tests)."""
        return tuple(self._streams)

    def reset(self) -> None:
        """Drop all streams; subsequent accesses recreate them from scratch."""
        self._streams.clear()

    def fork(self, salt: int) -> "RandomStreams":
        """Return a new :class:`RandomStreams` with a seed derived from ``salt``.

        Used by sweeps that want per-point independence while keeping overall
        reproducibility: ``streams.fork(i)`` for the ``i``-th repetition.
        """
        derived = (self._master_seed * 1_000_003 + int(salt)) % (2**63)
        return RandomStreams(derived)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self._master_seed} streams={len(self._streams)}>"
